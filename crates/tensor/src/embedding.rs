//! Embedding tables with row-sparse updates.
//!
//! Every random-walk model (DeepWalk, Node2Vec, GATNE, ...) keeps one or
//! more `n x d` embedding tables and touches only a handful of rows per
//! training pair — so updates are applied per row, optionally through a
//! per-row AdaGrad accumulator.

use crate::init::embedding_uniform;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A dense `n x d` embedding table.
#[derive(Debug, Clone)]
pub struct EmbeddingTable {
    /// Embedding dimension `d`.
    pub dim: usize,
    n: usize,
    weights: Vec<f32>,
    /// Per-element AdaGrad accumulators (allocated lazily on first adaptive
    /// update).
    accum: Option<Vec<f32>>,
}

impl EmbeddingTable {
    /// Word2vec-style initialization `U(-0.5/d, 0.5/d)`.
    pub fn new(n: usize, dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = embedding_uniform(n, dim, &mut rng);
        EmbeddingTable { dim, n, weights: m.as_slice().to_vec(), accum: None }
    }

    /// All-zero table (standard for output/context embeddings in word2vec).
    pub fn zeros(n: usize, dim: usize) -> Self {
        EmbeddingTable { dim, n, weights: vec![0.0; n * dim], accum: None }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Borrowed row.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.weights[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutable row.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.weights[i * self.dim..(i + 1) * self.dim]
    }

    /// SGD row update: `row -= lr * grad`.
    #[inline]
    pub fn sgd_update(&mut self, i: usize, grad: &[f32], lr: f32) {
        debug_assert_eq!(grad.len(), self.dim);
        for (w, &g) in self.row_mut(i).iter_mut().zip(grad) {
            *w -= lr * g;
        }
    }

    /// AdaGrad row update with per-element accumulators.
    pub fn adagrad_update(&mut self, i: usize, grad: &[f32], lr: f32) {
        debug_assert_eq!(grad.len(), self.dim);
        if self.accum.is_none() {
            self.accum = Some(vec![0.0; self.n * self.dim]);
        }
        // invariant: accum was initialized to Some two lines above when None
        let accum = self.accum.as_mut().expect("just initialized");
        let base = i * self.dim;
        for (j, &g) in grad.iter().enumerate() {
            let a = &mut accum[base + j];
            *a += g * g;
            self.weights[base + j] -= lr * g / (a.sqrt() + 1e-8);
        }
    }

    /// Dot product between two rows.
    #[inline]
    pub fn dot_rows(&self, i: usize, j: usize) -> f32 {
        crate::dot(self.row(i), self.row(j))
    }

    /// Dot product between a row here and a row of `other` (input vs. output
    /// embeddings).
    #[inline]
    pub fn dot_with(&self, i: usize, other: &EmbeddingTable, j: usize) -> f32 {
        crate::dot(self.row(i), other.row(j))
    }

    /// L2-normalizes every row in place.
    pub fn l2_normalize_rows(&mut self) {
        for i in 0..self.n {
            crate::l2_normalize(self.row_mut(i));
        }
    }

    /// The `k` nearest rows to row `i` by cosine similarity (excluding `i`).
    pub fn nearest(&self, i: usize, k: usize) -> Vec<(usize, f32)> {
        let mut scored: Vec<(usize, f32)> = (0..self.n)
            .filter(|&j| j != i)
            .map(|j| (j, crate::cosine(self.row(i), self.row(j))))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
    }

    /// Raw weights (read-only), row-major.
    pub fn as_slice(&self) -> &[f32] {
        &self.weights
    }

    /// Builds a table from an explicit row-major weight buffer — how a
    /// parameter-server shard materializes just its owned rows.
    pub fn from_flat(n: usize, dim: usize, weights: Vec<f32>) -> Result<Self, String> {
        if weights.len() != n * dim {
            return Err(format!("weight buffer {} != {n} x {dim}", weights.len()));
        }
        Ok(EmbeddingTable { dim, n, weights, accum: None })
    }

    /// Applies a batch of row-sparse gradient deltas through the per-row
    /// AdaGrad rule — the sparse push operation of a parameter server.
    pub fn apply_sparse<'a, I>(&mut self, deltas: I, lr: f32)
    where
        I: IntoIterator<Item = (usize, &'a [f32])>,
    {
        for (i, grad) in deltas {
            self.adagrad_update(i, grad, lr);
        }
    }

    /// AdaGrad accumulators, `None` until the first adaptive update.
    pub fn accum_slice(&self) -> Option<&[f32]> {
        self.accum.as_deref()
    }

    /// Restores weights (and optionally accumulators) captured from another
    /// table of identical shape — the checkpoint-restore path.
    pub fn load_state(&mut self, weights: &[f32], accum: Option<&[f32]>) -> Result<(), String> {
        if weights.len() != self.n * self.dim {
            return Err(format!(
                "weight buffer {} != table {} x {}",
                weights.len(),
                self.n,
                self.dim
            ));
        }
        self.weights.copy_from_slice(weights);
        match accum {
            None => self.accum = None,
            Some(a) => {
                if a.len() != self.n * self.dim {
                    return Err(format!(
                        "accumulator buffer {} != table {} x {}",
                        a.len(),
                        self.n,
                        self.dim
                    ));
                }
                self.accum = Some(a.to_vec());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_and_shapes() {
        let t = EmbeddingTable::new(10, 4, 1);
        assert_eq!(t.len(), 10);
        assert_eq!(t.row(3).len(), 4);
        assert!(t.as_slice().iter().any(|&x| x != 0.0));
        let z = EmbeddingTable::zeros(5, 4);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn deterministic_init() {
        let a = EmbeddingTable::new(10, 8, 42);
        let b = EmbeddingTable::new(10, 8, 42);
        assert_eq!(a.as_slice(), b.as_slice());
        let c = EmbeddingTable::new(10, 8, 43);
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn sgd_update_math() {
        let mut t = EmbeddingTable::zeros(2, 2);
        t.sgd_update(1, &[1.0, -2.0], 0.5);
        assert_eq!(t.row(1), &[-0.5, 1.0]);
        assert_eq!(t.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn adagrad_update_shrinks_effective_lr() {
        let mut t = EmbeddingTable::zeros(1, 1);
        t.adagrad_update(0, &[1.0], 1.0);
        let first = -t.row(0)[0];
        let before = t.row(0)[0];
        t.adagrad_update(0, &[1.0], 1.0);
        let second = before - t.row(0)[0];
        assert!(second < first, "adagrad steps must shrink: {first} then {second}");
    }

    #[test]
    fn apply_sparse_matches_adagrad_updates() {
        let mut a = EmbeddingTable::new(4, 3, 7);
        let mut b = a.clone();
        a.adagrad_update(1, &[0.5, -0.5, 0.1], 0.1);
        a.adagrad_update(3, &[1.0, 0.0, -1.0], 0.1);
        b.apply_sparse([(1usize, &[0.5, -0.5, 0.1][..]), (3, &[1.0, 0.0, -1.0][..])], 0.1);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(a.accum_slice(), b.accum_slice());
    }

    #[test]
    fn state_roundtrip_and_shape_errors() {
        let mut a = EmbeddingTable::new(3, 2, 1);
        a.adagrad_update(0, &[1.0, 1.0], 0.5);
        let weights = a.as_slice().to_vec();
        let accum = a.accum_slice().map(<[f32]>::to_vec);
        let mut b = EmbeddingTable::zeros(3, 2);
        b.load_state(&weights, accum.as_deref()).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(a.accum_slice(), b.accum_slice());
        assert!(b.load_state(&weights[..3], None).is_err());
        assert!(b.load_state(&weights, Some(&weights[..3])).is_err());
        assert!(EmbeddingTable::from_flat(2, 2, vec![0.0; 5]).is_err());
        let t = EmbeddingTable::from_flat(2, 2, vec![1.0; 4]).unwrap();
        assert_eq!(t.row(1), &[1.0, 1.0]);
    }

    #[test]
    fn dots_and_nearest() {
        let mut t = EmbeddingTable::zeros(3, 2);
        t.row_mut(0).copy_from_slice(&[1.0, 0.0]);
        t.row_mut(1).copy_from_slice(&[0.9, 0.1]);
        t.row_mut(2).copy_from_slice(&[0.0, 1.0]);
        assert!(t.dot_rows(0, 1) > t.dot_rows(0, 2));
        let nn = t.nearest(0, 1);
        assert_eq!(nn[0].0, 1);
        let other = t.clone();
        assert!((t.dot_with(0, &other, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_rows() {
        let mut t = EmbeddingTable::zeros(1, 2);
        t.row_mut(0).copy_from_slice(&[3.0, 4.0]);
        t.l2_normalize_rows();
        assert!((t.row(0)[0] - 0.6).abs() < 1e-6);
    }
}
