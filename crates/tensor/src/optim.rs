//! First-order optimizers. Each optimizer instance owns the state for one
//! parameter tensor (the models hold one optimizer per weight matrix).

/// A gradient-descent style optimizer over one flat parameter vector.
pub trait Optimizer {
    /// Applies one update step: mutates `params` using `grads`.
    fn step(&mut self, params: &mut [f32], grads: &[f32]);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (for decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, momentum: 0.0, velocity: Vec::new() }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        debug_assert_eq!(params.len(), grads.len());
        if self.momentum == 0.0 {
            for (p, &g) in params.iter_mut().zip(grads) {
                *p -= self.lr * g;
            }
            return;
        }
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        for ((p, &g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            *v = self.momentum * *v + g;
            *p -= self.lr * *v;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Adam with the standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Flat optimizer state for checkpointing: the step counter (bit-exact,
    /// as two `f32`-encoded `u32` halves) followed by the first and second
    /// moments. The moments are empty before the first `step`.
    pub fn state_vec(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(2 + self.m.len() * 2);
        out.push(f32::from_bits(self.t as u32));
        out.push(f32::from_bits((self.t >> 32) as u32));
        out.extend_from_slice(&self.m);
        out.extend_from_slice(&self.v);
        out
    }

    /// Restores state captured by [`state_vec`](Self::state_vec).
    pub fn load_state_vec(&mut self, data: &[f32]) -> Result<(), String> {
        if data.len() < 2 || !(data.len() - 2).is_multiple_of(2) {
            return Err(format!("adam state length {} is not 2 + 2k", data.len()));
        }
        self.t = data[0].to_bits() as u64 | ((data[1].to_bits() as u64) << 32);
        let k = (data.len() - 2) / 2;
        self.m = data[2..2 + k].to_vec();
        self.v = data[2 + k..].to_vec();
        Ok(())
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        debug_assert_eq!(params.len(), grads.len());
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// AdaGrad — the classic choice for sparse embedding updates.
#[derive(Debug, Clone)]
pub struct AdaGrad {
    lr: f32,
    eps: f32,
    accum: Vec<f32>,
}

impl AdaGrad {
    /// AdaGrad with accumulator epsilon `1e-8`.
    pub fn new(lr: f32) -> Self {
        AdaGrad { lr, eps: 1e-8, accum: Vec::new() }
    }
}

impl Optimizer for AdaGrad {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        debug_assert_eq!(params.len(), grads.len());
        if self.accum.len() != params.len() {
            self.accum = vec![0.0; params.len()];
        }
        for i in 0..params.len() {
            let g = grads[i];
            self.accum[i] += g * g;
            params[i] -= self.lr * g / (self.accum[i].sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)^2; gradient 2(x-3).
    fn optimize(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut x = [0.0f32];
        for _ in 0..steps {
            let g = [2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        assert!((optimize(&mut opt, 100) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn momentum_converges() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        assert!((optimize(&mut opt, 200) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn adam_converges() {
        let mut opt = Adam::new(0.1);
        assert!((optimize(&mut opt, 300) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn adagrad_converges() {
        let mut opt = AdaGrad::new(1.0);
        assert!((optimize(&mut opt, 300) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn adam_state_roundtrip_is_bit_exact() {
        let mut a = Adam::new(0.05);
        let mut x = [0.4f32, -1.2];
        for _ in 0..7 {
            a.step(&mut x, &[0.3, -0.1]);
        }
        let mut b = Adam::new(0.05);
        b.load_state_vec(&a.state_vec()).unwrap();
        let mut y = x;
        a.step(&mut x, &[0.2, 0.2]);
        b.step(&mut y, &[0.2, 0.2]);
        assert_eq!(x[0].to_bits(), y[0].to_bits());
        assert_eq!(x[1].to_bits(), y[1].to_bits());
        assert!(Adam::new(0.1).load_state_vec(&[0.0]).is_err());
        assert!(Adam::new(0.1).load_state_vec(&[0.0; 5]).is_err());
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
    }

    #[test]
    fn sgd_single_step_math() {
        let mut opt = Sgd::new(0.5);
        let mut p = [1.0f32];
        opt.step(&mut p, &[2.0]);
        assert!((p[0] - 0.0).abs() < 1e-6);
    }
}
