//! # aligraph-tensor
//!
//! The neural-network substrate of the AliGraph reproduction. The original
//! system delegates training math to TensorFlow; this crate supplies the
//! equivalent primitives from scratch so the GNN models (paper §4) can run
//! end-to-end in pure Rust:
//!
//! * [`matrix::Matrix`] — row-major dense `f32` matrices with GEMM and the
//!   elementwise/rowwise operations GNN layers need,
//! * [`activations`] — `relu` / `sigmoid` / `tanh` / row `softmax` with
//!   derivatives,
//! * [`init`] — seeded Xavier/He initializers,
//! * [`optim`] — SGD (momentum), Adam, AdaGrad,
//! * [`embedding::EmbeddingTable`] — dense embedding rows with sparse
//!   (row-wise) gradient updates, as used by every random-walk model,
//! * [`loss`] — logistic pair losses and negative-sampling skip-gram
//!   gradients shared by DeepWalk-family trainers.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod activations;
pub mod embedding;
pub mod init;
pub mod loss;
pub mod matrix;
pub mod optim;

pub use embedding::EmbeddingTable;
pub use matrix::Matrix;
pub use optim::{AdaGrad, Adam, Optimizer, Sgd};

/// Numerically safe sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Cosine similarity (0 when either vector is ~zero).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na < 1e-12 || nb < 1e-12 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

/// In-place L2 normalization (no-op on ~zero vectors).
pub fn l2_normalize(v: &mut [f32]) {
    let n = dot(v, v).sqrt();
    if n > 1e-12 {
        for x in v {
            *x /= n;
        }
    }
}

/// `a += scale * b`.
#[inline]
pub fn axpy(a: &mut [f32], scale: f32, b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b) {
        *x += scale * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_bounds_and_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn vector_ops() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        let mut v = vec![3.0, 4.0];
        l2_normalize(&mut v);
        assert!((v[0] - 0.6).abs() < 1e-6 && (v[1] - 0.8).abs() < 1e-6);
        let mut a = vec![1.0, 1.0];
        axpy(&mut a, 2.0, &[1.0, 3.0]);
        assert_eq!(a, vec![3.0, 7.0]);
    }
}
