//! Seeded weight initializers.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Xavier/Glorot uniform: `U(-sqrt(6/(fan_in+fan_out)), +...)` — the default
/// for tanh/sigmoid layers.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let bound = (6.0 / (rows + cols) as f32).sqrt();
    Matrix::uniform(rows, cols, bound, rng)
}

/// He-style uniform (`sqrt(6/fan_in)`) for ReLU layers.
pub fn he_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let bound = (6.0 / rows as f32).sqrt();
    Matrix::uniform(rows, cols, bound, rng)
}

/// A seeded RNG for reproducible model initialization.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Small uniform init `U(-0.5/cols, 0.5/cols)` — the word2vec-style
/// embedding initialization used by the random-walk models.
pub fn embedding_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let bound = 0.5 / cols as f32;
    let data = (0..rows * cols).map(|_| rng.gen_range(-bound..bound)).collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_within_bound_and_seeded() {
        let mut rng = seeded_rng(4);
        let m = xavier_uniform(10, 20, &mut rng);
        let bound = (6.0f32 / 30.0).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= bound + 1e-6));
        let mut rng2 = seeded_rng(4);
        let m2 = xavier_uniform(10, 20, &mut rng2);
        assert_eq!(m.as_slice(), m2.as_slice());
    }

    #[test]
    fn he_bound() {
        let mut rng = seeded_rng(5);
        let m = he_uniform(24, 8, &mut rng);
        let bound = (6.0f32 / 24.0).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= bound + 1e-6));
    }

    #[test]
    fn embedding_init_small_and_nonzero() {
        let mut rng = seeded_rng(6);
        let m = embedding_uniform(100, 50, &mut rng);
        assert!(m.as_slice().iter().all(|&x| x.abs() <= 0.01 + 1e-6));
        assert!(m.as_slice().iter().any(|&x| x != 0.0));
    }
}
