//! Pairwise logistic losses and the negative-sampling skip-gram update
//! shared by the random-walk embedding trainers (paper Eq. 4–6 all reduce to
//! this primitive).

use crate::embedding::EmbeddingTable;
use crate::sigmoid;

/// Binary logistic loss for a scored pair: `-log σ(score)` for positives,
/// `-log σ(-score)` for negatives.
pub fn logistic_loss(score: f32, positive: bool) -> f32 {
    let p = if positive { sigmoid(score) } else { sigmoid(-score) };
    -(p.max(1e-12)).ln()
}

/// Gradient of the logistic loss w.r.t. the score: `σ(score) - label`.
#[inline]
pub fn logistic_grad(score: f32, positive: bool) -> f32 {
    sigmoid(score) - if positive { 1.0 } else { 0.0 }
}

/// One skip-gram update with negative sampling (SGNS):
///
/// center row `c` of `input`, positive context `pos` and negatives `negs`
/// as rows of `output`; applies SGD row updates at learning rate `lr` and
/// returns the summed loss. This is the word2vec update that DeepWalk,
/// Node2Vec, LINE, Metapath2Vec, GATNE, and Mixture GNN all instantiate.
pub fn sgns_update(
    input: &mut EmbeddingTable,
    output: &mut EmbeddingTable,
    c: usize,
    pos: usize,
    negs: &[usize],
    lr: f32,
) -> f32 {
    debug_assert_eq!(input.dim, output.dim);
    let dim = input.dim;
    let mut input_grad = vec![0.0f32; dim];
    let mut loss = 0.0f32;

    // Positive pair.
    let score = input.dot_with(c, output, pos);
    loss += logistic_loss(score, true);
    let g = logistic_grad(score, true);
    for (ig, &o) in input_grad.iter_mut().zip(output.row(pos)).take(dim) {
        *ig += g * o;
    }
    let mut out_grad: Vec<f32> = input.row(c).iter().take(dim).map(|&x| g * x).collect();
    output.sgd_update(pos, &out_grad, lr);

    // Negatives.
    for &neg in negs {
        let score = input.dot_with(c, output, neg);
        loss += logistic_loss(score, false);
        let g = logistic_grad(score, false);
        let ctr = input.row(c);
        let nbr = output.row(neg);
        for j in 0..dim {
            input_grad[j] += g * nbr[j];
            out_grad[j] = g * ctr[j];
        }
        output.sgd_update(neg, &out_grad, lr);
    }

    input.sgd_update(c, &input_grad, lr);
    loss
}

/// Mean binary cross-entropy over scored pairs `(score, label)`.
pub fn mean_bce(pairs: &[(f32, bool)]) -> f32 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs.iter().map(|&(s, l)| logistic_loss(s, l)).sum::<f32>() / pairs.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_is_low_when_confidently_correct() {
        assert!(logistic_loss(10.0, true) < 0.01);
        assert!(logistic_loss(-10.0, false) < 0.01);
        assert!(logistic_loss(-10.0, true) > 5.0);
        assert!((logistic_loss(0.0, true) - std::f32::consts::LN_2).abs() < 1e-5);
    }

    #[test]
    fn grad_signs() {
        assert!(logistic_grad(0.0, true) < 0.0); // push score up
        assert!(logistic_grad(0.0, false) > 0.0); // push score down
    }

    #[test]
    fn sgns_separates_positive_from_negative() {
        let mut input = EmbeddingTable::new(3, 8, 1);
        let mut output = EmbeddingTable::zeros(3, 8);
        // Train: vertex 0's context is 1, vertex 2 is a negative.
        let mut last_loss = f32::MAX;
        for _ in 0..200 {
            last_loss = sgns_update(&mut input, &mut output, 0, 1, &[2], 0.1);
        }
        assert!(last_loss < 0.2, "loss {last_loss}");
        assert!(input.dot_with(0, &output, 1) > 1.0);
        assert!(input.dot_with(0, &output, 2) < -1.0);
    }

    #[test]
    fn sgns_loss_decreases() {
        let mut input = EmbeddingTable::new(4, 6, 2);
        let mut output = EmbeddingTable::zeros(4, 6);
        let first = sgns_update(&mut input, &mut output, 0, 1, &[2, 3], 0.2);
        let mut last = first;
        for _ in 0..50 {
            last = sgns_update(&mut input, &mut output, 0, 1, &[2, 3], 0.2);
        }
        assert!(last < first);
    }

    #[test]
    fn mean_bce_basics() {
        assert_eq!(mean_bce(&[]), 0.0);
        let v = mean_bce(&[(10.0, true), (-10.0, false)]);
        assert!(v < 0.01);
    }
}
