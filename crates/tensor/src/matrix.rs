//! Row-major dense `f32` matrices.
//!
//! Sized for GNN mini-batches (hundreds of rows, embedding dims ~100–400):
//! a straightforward i-k-j GEMM with the inner loop over contiguous memory
//! is plenty, and keeps the code auditable.

use rand::rngs::StdRng;
use rand::Rng;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Matrix from a row-major vector (`data.len() == rows * cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Matrix from a per-element function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Uniform random matrix in `[-bound, bound]`.
    pub fn uniform(rows: usize, cols: usize, bound: f32, rng: &mut StdRng) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen_range(-bound..=bound)).collect();
        Matrix { rows, cols, data }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrowed row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Raw storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `self @ other` (i-k-j loop order; the inner loop is contiguous in
    /// both the output row and `other`'s row, so it vectorizes).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ other^T`.
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_transpose shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                out.set(i, j, crate::dot(a_row, other.row(j)));
            }
        }
        out
    }

    /// `self^T @ other`.
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "transpose_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += scale * other`.
    pub fn add_scaled(&mut self, scale: f32, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// `self *= scale`.
    pub fn scale(&mut self, scale: f32) {
        for a in &mut self.data {
            *a *= scale;
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Elementwise product (Hadamard), in place.
    pub fn hadamard_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// Adds a bias row vector to every row.
    pub fn add_row_vector(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols);
        for r in 0..self.rows {
            for (a, b) in self.row_mut(r).iter_mut().zip(bias) {
                *a += b;
            }
        }
    }

    /// Sum over rows (returns a `cols`-length vector) — the bias gradient.
    pub fn column_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }

    /// L2-normalizes every row (Algorithm 1 line 7).
    pub fn l2_normalize_rows(&mut self) {
        for r in 0..self.rows {
            crate::l2_normalize(self.row_mut(r));
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Clips every element to `[-limit, limit]` (gradient clipping).
    pub fn clip(&mut self, limit: f32) {
        for a in &mut self.data {
            *a = a.clamp(-limit, limit);
        }
    }

    /// Concatenates two matrices horizontally (`[self | other]`).
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hcat row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Splits a matrix produced by [`hcat`](Self::hcat) back into two parts.
    pub fn hsplit(&self, left_cols: usize) -> (Matrix, Matrix) {
        assert!(left_cols <= self.cols);
        let mut left = Matrix::zeros(self.rows, left_cols);
        let mut right = Matrix::zeros(self.rows, self.cols - left_cols);
        for r in 0..self.rows {
            left.row_mut(r).copy_from_slice(&self.row(r)[..left_cols]);
            right.row_mut(r).copy_from_slice(&self.row(r)[left_cols..]);
        }
        (left, right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::uniform(4, 4, 1.0, &mut rng);
        let c = a.matmul(&Matrix::identity(4));
        for (x, y) in a.as_slice().iter().zip(c.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_variants_agree() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::uniform(3, 5, 1.0, &mut rng);
        let b = Matrix::uniform(4, 5, 1.0, &mut rng);
        let direct = a.matmul_transpose(&b);
        let via_t = a.matmul(&b.transpose());
        for (x, y) in direct.as_slice().iter().zip(via_t.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
        let c = Matrix::uniform(3, 4, 1.0, &mut rng);
        let tm = a.transpose_matmul(&c); // (5x3)(3x4) = 5x4
        let via = a.transpose().matmul(&c);
        for (x, y) in tm.as_slice().iter().zip(via.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn elementwise_ops() {
        let mut a = Matrix::from_vec(2, 2, vec![1.0, -2.0, 3.0, -4.0]);
        a.map_inplace(|x| x.max(0.0));
        assert_eq!(a.as_slice(), &[1.0, 0.0, 3.0, 0.0]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[2.0, 0.0, 6.0, 0.0]);
        let b = Matrix::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[3.0, 1.0, 7.0, 1.0]);
        a.add_scaled(-1.0, &b);
        assert_eq!(a.as_slice(), &[2.0, 0.0, 6.0, 0.0]);
        a.clip(3.0);
        assert_eq!(a.as_slice(), &[2.0, 0.0, 3.0, 0.0]);
        let mut h = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        h.hadamard_assign(&Matrix::from_vec(2, 2, vec![2.0, 0.5, 1.0, 0.25]));
        assert_eq!(h.as_slice(), &[2.0, 1.0, 3.0, 1.0]);
    }

    #[test]
    fn bias_and_column_sums() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row_vector(&[1.0, 2.0]);
        assert_eq!(a.column_sums(), vec![3.0, 6.0]);
    }

    #[test]
    fn row_normalization() {
        let mut a = Matrix::from_vec(2, 2, vec![3.0, 4.0, 0.0, 0.0]);
        a.l2_normalize_rows();
        assert!((a.get(0, 0) - 0.6).abs() < 1e-6);
        assert_eq!(a.row(1), &[0.0, 0.0]); // zero row untouched
    }

    #[test]
    fn hcat_hsplit_roundtrip() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 1, vec![5.0, 6.0]);
        let cat = a.hcat(&b);
        assert_eq!(cat.cols, 3);
        assert_eq!(cat.row(1), &[3.0, 4.0, 6.0]);
        let (l, r) = cat.hsplit(2);
        assert_eq!(l, a);
        assert_eq!(r, b);
    }

    #[test]
    fn frobenius() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }
}
