//! Activation functions and their derivatives, operating on matrices in
//! place (forward) or producing gradient masks (backward).

use crate::matrix::Matrix;
use crate::sigmoid;

/// ReLU forward, in place.
pub fn relu(m: &mut Matrix) {
    m.map_inplace(|x| x.max(0.0));
}

/// ReLU backward: `grad *= (activated > 0)`, where `activated` is the
/// *post-activation* values.
pub fn relu_backward(grad: &mut Matrix, activated: &Matrix) {
    assert_eq!((grad.rows, grad.cols), (activated.rows, activated.cols));
    for (g, &a) in grad.as_mut_slice().iter_mut().zip(activated.as_slice()) {
        if a <= 0.0 {
            *g = 0.0;
        }
    }
}

/// Leaky ReLU forward, in place.
pub fn leaky_relu(m: &mut Matrix, slope: f32) {
    m.map_inplace(|x| if x > 0.0 { x } else { slope * x });
}

/// Elementwise sigmoid, in place.
pub fn sigmoid_inplace(m: &mut Matrix) {
    m.map_inplace(sigmoid);
}

/// Sigmoid backward from post-activation values: `grad *= s * (1 - s)`.
pub fn sigmoid_backward(grad: &mut Matrix, activated: &Matrix) {
    assert_eq!((grad.rows, grad.cols), (activated.rows, activated.cols));
    for (g, &s) in grad.as_mut_slice().iter_mut().zip(activated.as_slice()) {
        *g *= s * (1.0 - s);
    }
}

/// Elementwise tanh, in place.
pub fn tanh_inplace(m: &mut Matrix) {
    m.map_inplace(f32::tanh);
}

/// Tanh backward from post-activation values: `grad *= 1 - t^2`.
pub fn tanh_backward(grad: &mut Matrix, activated: &Matrix) {
    assert_eq!((grad.rows, grad.cols), (activated.rows, activated.cols));
    for (g, &t) in grad.as_mut_slice().iter_mut().zip(activated.as_slice()) {
        *g *= 1.0 - t * t;
    }
}

/// Row-wise softmax, in place (numerically stabilized by the row max).
pub fn softmax_rows(m: &mut Matrix) {
    for r in 0..m.rows {
        let row = m.row_mut(r);
        let max = row.iter().cloned().fold(f32::MIN, f32::max);
        let mut sum = 0.0;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        if sum > 0.0 {
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
    }
}

/// Softmax over a single slice, in place.
pub fn softmax(v: &mut [f32]) {
    let max = v.iter().cloned().fold(f32::MIN, f32::max);
    let mut sum = 0.0;
    for x in v.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in v.iter_mut() {
            *x /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut m = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        relu(&mut m);
        assert_eq!(m.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        let mut g = Matrix::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        relu_backward(&mut g, &m);
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn leaky_relu_keeps_negative_slope() {
        let mut m = Matrix::from_vec(1, 2, vec![-10.0, 10.0]);
        leaky_relu(&mut m, 0.1);
        assert_eq!(m.as_slice(), &[-1.0, 10.0]);
    }

    #[test]
    fn sigmoid_and_tanh_grads_match_finite_difference() {
        let x = 0.3f32;
        let eps = 1e-3;
        // Sigmoid.
        let fd = (crate::sigmoid(x + eps) - crate::sigmoid(x - eps)) / (2.0 * eps);
        let mut m = Matrix::from_vec(1, 1, vec![x]);
        sigmoid_inplace(&mut m);
        let mut g = Matrix::from_vec(1, 1, vec![1.0]);
        sigmoid_backward(&mut g, &m);
        assert!((g.get(0, 0) - fd).abs() < 1e-3);
        // Tanh.
        let fd = ((x + eps).tanh() - (x - eps).tanh()) / (2.0 * eps);
        let mut m = Matrix::from_vec(1, 1, vec![x]);
        tanh_inplace(&mut m);
        let mut g = Matrix::from_vec(1, 1, vec![1.0]);
        tanh_backward(&mut g, &m);
        assert!((g.get(0, 0) - fd).abs() < 1e-3);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]);
        softmax_rows(&mut m);
        for r in 0..2 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // Larger logits get larger probability.
        assert!(m.get(0, 2) > m.get(0, 0));
        // Stability: equal huge logits => uniform.
        assert!((m.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_slice() {
        let mut v = vec![0.0, 0.0];
        softmax(&mut v);
        assert!((v[0] - 0.5).abs() < 1e-6);
    }
}
