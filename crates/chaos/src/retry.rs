//! Capped exponential backoff with a retry deadline.

/// The hard ceiling on any single backoff wait, in virtual ticks. Every
/// retry loop in the workspace must reference a cap like this one — the
/// `backoff-needs-cap` lint rule enforces it.
pub const MAX_BACKOFF_TICKS: u64 = 1 << 10;

/// Modelled duration of one virtual tick, in nanoseconds: how injected
/// delays and backoff waits enter the comm-time accounting.
pub const TICK_NS: u64 = 1_000;

/// How a faulted channel's sender/receiver pair recovers. `Full` is the
/// real system; the broken variants exist so the chaos suite can prove it
/// detects divergence when recovery is absent (tests with teeth), exactly
/// like the mini-loom's known-bad workload variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryMode {
    /// Retry with capped backoff; dedup duplicates by sequence number.
    #[default]
    Full,
    /// Deliberately broken: dropped messages are silently lost (gradients
    /// vanish, replicas go permanently stale).
    NoRetry,
    /// Deliberately broken: duplicates re-apply (a lost ack double-applies
    /// its AdaGrad delta).
    NoDedup,
}

/// The send gave up: every attempt up to the deadline faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryError {
    /// Attempts performed before giving up.
    pub attempts: u32,
    /// Total virtual ticks spent backing off.
    pub backoff_ticks: u64,
}

impl std::fmt::Display for RetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "retry deadline exhausted after {} attempts ({} backoff ticks)",
            self.attempts, self.backoff_ticks
        )
    }
}

impl std::error::Error for RetryError {}

/// Exponential backoff schedule: attempt `k` waits `base << k` virtual
/// ticks, capped at [`MAX_BACKOFF_TICKS`], for at most `max_attempts`
/// sends. The schedule is monotone non-decreasing and capped — the
/// property suite pins both for arbitrary attempt counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First-retry wait in virtual ticks (0 is promoted to 1).
    pub base_ticks: u64,
    /// Retry deadline: total sends allowed per message (>= 1).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // 32 attempts at drop_rate 0.2 put the all-drops probability near
        // 1e-22: far below one expected occurrence over every seed the
        // chaos sweeps will ever run, while still being a real deadline.
        RetryPolicy { base_ticks: 2, max_attempts: 32 }
    }
}

impl RetryPolicy {
    /// Backoff before send attempt `attempt` (attempt 0 is the first try:
    /// no wait). Saturates at [`MAX_BACKOFF_TICKS`].
    pub fn backoff_ticks(&self, attempt: u32) -> u64 {
        if attempt == 0 {
            return 0;
        }
        let base = self.base_ticks.max(1);
        // Saturating doubling: `checked_shl` only guards the shift amount,
        // not value overflow, so clamp the exponent before shifting.
        let shift = (attempt - 1).min(MAX_BACKOFF_TICKS.trailing_zeros());
        base.saturating_mul(1u64 << shift).min(MAX_BACKOFF_TICKS)
    }

    /// Whether `attempt` is past the deadline (no send allowed).
    pub fn exhausted(&self, attempt: u32) -> bool {
        attempt >= self.max_attempts.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_monotone_and_capped() {
        let p = RetryPolicy { base_ticks: 2, max_attempts: 64 };
        let mut prev = 0;
        for attempt in 0..200 {
            let t = p.backoff_ticks(attempt);
            assert!(t >= prev, "attempt {attempt}: {t} < {prev}");
            assert!(t <= MAX_BACKOFF_TICKS);
            prev = t;
        }
        assert_eq!(p.backoff_ticks(0), 0);
        assert_eq!(p.backoff_ticks(1), 2);
        assert_eq!(p.backoff_ticks(2), 4);
        assert_eq!(p.backoff_ticks(200), MAX_BACKOFF_TICKS);
    }

    #[test]
    fn zero_base_still_backs_off() {
        let p = RetryPolicy { base_ticks: 0, max_attempts: 4 };
        assert_eq!(p.backoff_ticks(1), 1);
        assert_eq!(p.backoff_ticks(3), 4);
    }

    #[test]
    fn deadline_counts_sends() {
        let p = RetryPolicy { base_ticks: 1, max_attempts: 3 };
        assert!(!p.exhausted(0));
        assert!(!p.exhausted(2));
        assert!(p.exhausted(3));
        // max_attempts 0 still allows the first send.
        let degenerate = RetryPolicy { base_ticks: 1, max_attempts: 0 };
        assert!(!degenerate.exhausted(0));
        assert!(degenerate.exhausted(1));
    }

    #[test]
    fn retry_error_renders() {
        let e = RetryError { attempts: 5, backoff_ticks: 30 };
        assert!(e.to_string().contains("5 attempts"));
    }
}
