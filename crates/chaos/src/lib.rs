//! The deterministic fault-injection plane (DESIGN.md §2.14).
//!
//! Every inter-shard channel in the simulated cluster — parameter-server
//! pushes and pulls in the training runtime, shard fetches in the serving
//! layer, bucket submissions in the storage executor, and update-ingest
//! batches in the streaming service — can be wrapped by a [`FaultPlane`].
//! Channel tags in use: 0 PS pushes, 1 PS pull responses, 2 storage bucket
//! submissions, 3 serving shard fetches, 4 streaming update ingest,
//! 5 live-migration subgraph transfers (elastic rebalancing).
//! Driven by a [`FaultPlan`] and a SplitMix64 hash of
//! `(seed, channel, sequence, attempt)`, the plane decides per message
//! whether it is delivered intact, dropped, delayed a bounded number of
//! virtual ticks, delivered-but-unacknowledged, or corrupted in flight.
//! Crash points and checkpoint bit-flips ride on the same plan.
//!
//! **Determinism contract.** A decision is a pure function of the plan and
//! the `(channel, seq, attempt)` triple — never of wall-clock time, OS
//! entropy, or scheduling. Two runs with the same seed see the identical
//! fault sequence, so a failing chaos seed replays bit-for-bit from the
//! command line. Delays are *virtual*: they add modelled ticks to the comm
//! accounting, they never sleep.
//!
//! **Recovery machinery.** Faults are only half the plane; this crate also
//! owns what the faults force into existence: [`RetryPolicy`] (capped
//! exponential backoff with a retry deadline) and [`Sequencer`]
//! (sequence-numbered, idempotent delivery — duplicates and reorderings
//! collapse to exactly-once, in-order application). With both in place,
//! the headline property holds: for any fault seed with `drop_rate < 1`,
//! a training run converges to the bit-exact same final parameters as the
//! fault-free run, because the same messages apply exactly once in the
//! same order — faults only cost modelled time.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

mod plan;
mod retry;
mod seq;

pub use plan::{CrashPoint, Delivery, FaultPlan, FaultPlane, FaultSnapshot};
pub use retry::{RecoveryMode, RetryError, RetryPolicy, MAX_BACKOFF_TICKS, TICK_NS};
pub use seq::Sequencer;

/// One SplitMix64 scramble round: the core mixer behind every fault
/// decision (and the same finalizer the mini-loom scheduler uses).
pub(crate) fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a word list into one 64-bit value by folding each word through a
/// SplitMix64 round. Order-sensitive, collision-scattered, allocation-free.
pub(crate) fn mix(words: &[u64]) -> u64 {
    let mut h = 0x51_7C_C1_B7_27_22_0A_95u64;
    for &w in words {
        h = splitmix(h ^ w);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_order_sensitive() {
        assert_eq!(mix(&[1, 2, 3]), mix(&[1, 2, 3]));
        assert_ne!(mix(&[1, 2, 3]), mix(&[3, 2, 1]));
        assert_ne!(mix(&[0]), mix(&[0, 0]));
    }
}
