//! The fault plan and the per-message decision engine.

use crate::mix;
use aligraph_telemetry::{Counter, Registry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One scheduled worker crash: worker `worker` dies right before computing
/// global step `at_step` (each entry fires at most once per run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Worker to kill.
    pub worker: u32,
    /// Global step at which it dies.
    pub at_step: u64,
}

/// A seeded fault plan: everything the plane needs to reproduce the exact
/// same fault sequence on every run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Base seed of the fault stream (independent of the training seed).
    pub seed: u64,
    /// Per-message fault probability in `[0, 1)`. Applied independently to
    /// the loss draw (drop / lost ack / corruption) and the delay draw.
    pub drop_rate: f64,
    /// Upper bound on injected delays, in virtual ticks (0 disables
    /// delays). Delays are modelled time, never wall-clock sleeps.
    pub delay_ticks: u64,
    /// Re-deliver late duplicates of already-delivered messages, exercising
    /// the receiver's dedup (sequence numbers must discard them).
    pub reorder: bool,
    /// Scheduled worker crashes (each fires once per run).
    pub crash_schedule: Vec<CrashPoint>,
    /// Flip one byte in (a seeded subset of) written checkpoint files, so
    /// restore must fall back to an earlier valid checkpoint.
    pub corrupt_checkpoint: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_rate: 0.0,
            delay_ticks: 4,
            reorder: true,
            crash_schedule: Vec::new(),
            corrupt_checkpoint: false,
        }
    }
}

impl FaultPlan {
    /// The common CLI shape: a seed and a drop rate, defaults elsewhere.
    pub fn with_seed(seed: u64, drop_rate: f64) -> Self {
        FaultPlan { seed, drop_rate: drop_rate.clamp(0.0, 0.999), ..FaultPlan::default() }
    }
}

/// What the plane decided for one `(channel, seq, attempt)` message send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Arrives intact, on time.
    Deliver,
    /// Never arrives; the sender must retry or lose the message.
    Drop,
    /// Arrives after this many extra virtual ticks.
    Delay(u64),
    /// Arrives and is applied, but the acknowledgement is lost — the sender
    /// retries and the receiver sees a duplicate.
    AckLost,
    /// Arrives with a payload the receiver's checksum rejects — equivalent
    /// to a drop from the sender's point of view.
    Corrupt,
}

/// Counter totals of one plane, for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSnapshot {
    /// All injected faults (drops + delays + lost acks + corruptions +
    /// replayed duplicates + crashes + checkpoint flips).
    pub faults_injected: u64,
    /// Send retries the recovery machinery performed.
    pub retries: u64,
}

/// The fault plane: a [`FaultPlan`] plus an arm switch and telemetry.
///
/// `decide` is a pure function of `(plan, channel, seq, attempt)` while the
/// plane is armed; a disarmed plane delivers everything (so a service can
/// be warmed fault-free, then attacked). Counters are published as
/// `chaos.faults_injected{kind=...}` and `chaos.retries` when built with
/// [`registered`](FaultPlane::registered); they record, they never branch.
#[derive(Debug)]
pub struct FaultPlane {
    plan: FaultPlan,
    armed: AtomicBool,
    drops: Arc<Counter>,
    delays: Arc<Counter>,
    ack_lost: Arc<Counter>,
    corrupt: Arc<Counter>,
    reorders: Arc<Counter>,
    crashes: Arc<Counter>,
    ckpt_flips: Arc<Counter>,
    retries: Arc<Counter>,
}

impl FaultPlane {
    /// A plane with detached counters (tests, fault-free baselines).
    pub fn new(plan: FaultPlan) -> Self {
        Self::registered(plan, &Registry::disabled())
    }

    /// A plane whose counters live in `registry` under
    /// `chaos.faults_injected{kind=...}` / `chaos.retries`.
    pub fn registered(plan: FaultPlan, registry: &Registry) -> Self {
        let kind = |k: &str| registry.counter("chaos.faults_injected", &[("kind", k)]);
        FaultPlane {
            plan,
            armed: AtomicBool::new(true),
            drops: kind("drop"),
            delays: kind("delay"),
            ack_lost: kind("ack_lost"),
            corrupt: kind("corrupt"),
            reorders: kind("reorder"),
            crashes: kind("crash"),
            ckpt_flips: kind("ckpt_flip"),
            retries: registry.counter("chaos.retries", &[]),
        }
    }

    /// The plan this plane executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Starts injecting faults (planes start armed).
    pub fn arm(&self) {
        // ordering: the arm switch is test/operator control, not a
        // synchronization edge; any visible value is correct.
        self.armed.store(true, Ordering::Relaxed);
    }

    /// Stops injecting: every subsequent decision is `Deliver`.
    pub fn disarm(&self) {
        // ordering: see arm() — control flag only, no data published.
        self.armed.store(false, Ordering::Relaxed);
    }

    /// Whether the plane is currently injecting.
    pub fn is_armed(&self) -> bool {
        // ordering: control flag only; see arm().
        self.armed.load(Ordering::Relaxed)
    }

    /// Stable channel id for a directed `from → to` shard edge.
    pub fn channel(from: u64, to: u64) -> u64 {
        Self::channel_with(0, from, to)
    }

    /// Like [`channel`](Self::channel) with a `tag` separating parallel
    /// streams over the same directed pair (e.g. pushes vs pull responses):
    /// each tag gets an independent fault stream.
    pub fn channel_with(tag: u64, from: u64, to: u64) -> u64 {
        mix(&[0xC4A2, tag, from, to])
    }

    /// Uniform draw in `[0, 1)` from the top 53 bits of a hash.
    fn unit(h: u64) -> f64 {
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The fate of send `attempt` of message `seq` on `channel`. Pure in
    /// `(plan, channel, seq, attempt)`; counts what it injects.
    pub fn decide(&self, channel: u64, seq: u64, attempt: u32) -> Delivery {
        if !self.is_armed() || self.plan.drop_rate <= 0.0 {
            return Delivery::Deliver;
        }
        let loss = mix(&[self.plan.seed, 1, channel, seq, attempt as u64]);
        if Self::unit(loss) < self.plan.drop_rate {
            // Split the loss modes on independent hash bits.
            return match loss & 3 {
                0 | 1 => {
                    self.drops.inc();
                    Delivery::Drop
                }
                2 => {
                    self.ack_lost.inc();
                    Delivery::AckLost
                }
                _ => {
                    self.corrupt.inc();
                    Delivery::Corrupt
                }
            };
        }
        let lag = mix(&[self.plan.seed, 2, channel, seq, attempt as u64]);
        if self.plan.delay_ticks > 0 && Self::unit(lag) < self.plan.drop_rate {
            self.delays.inc();
            return Delivery::Delay(1 + lag % self.plan.delay_ticks);
        }
        Delivery::Deliver
    }

    /// Whether a late duplicate of already-delivered message `seq` should
    /// be re-delivered (the reorder fault: dedup must discard it).
    pub fn replays_duplicate(&self, channel: u64, seq: u64) -> bool {
        if !self.is_armed() || !self.plan.reorder || self.plan.drop_rate <= 0.0 {
            return false;
        }
        let h = mix(&[self.plan.seed, 3, channel, seq]);
        let hit = Self::unit(h) < self.plan.drop_rate;
        if hit {
            self.reorders.inc();
        }
        hit
    }

    /// Whether the crash schedule kills `worker` at `step`. The caller owns
    /// once-only latching (each schedule entry fires at most once per run)
    /// and meters the fired crash via [`note_crash`](Self::note_crash).
    pub fn crash_scheduled(&self, worker: u32, step: u64) -> Option<usize> {
        if !self.is_armed() {
            return None;
        }
        self.plan.crash_schedule.iter().position(|c| c.worker == worker && c.at_step == step)
    }

    /// Meters one fired crash (called by whoever latched it).
    pub fn note_crash(&self) {
        self.crashes.inc();
    }

    /// Whether the checkpoint written at `step` gets a byte flipped, and at
    /// which byte offset (mod file length). Seeded per step so some
    /// checkpoints in a run survive and restore can fall back to them.
    pub fn corrupts_checkpoint(&self, step: u64) -> Option<u64> {
        if !self.is_armed() || !self.plan.corrupt_checkpoint {
            return None;
        }
        let h = mix(&[self.plan.seed, 4, step]);
        if Self::unit(h) < 0.5 {
            self.ckpt_flips.inc();
            Some(mix(&[self.plan.seed, 5, step]))
        } else {
            None
        }
    }

    /// Meters one send retry performed by the recovery machinery.
    pub fn note_retry(&self) {
        self.retries.inc();
    }

    /// Counter totals for reports.
    pub fn snapshot(&self) -> FaultSnapshot {
        FaultSnapshot {
            faults_injected: self.drops.get()
                + self.delays.get()
                + self.ack_lost.get()
                + self.corrupt.get()
                + self.reorders.get()
                + self.crashes.get()
                + self.ckpt_flips.get(),
            retries: self.retries.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions_of_the_triple() {
        let a = FaultPlane::new(FaultPlan::with_seed(7, 0.3));
        let b = FaultPlane::new(FaultPlan::with_seed(7, 0.3));
        for seq in 0..200 {
            for attempt in 0..4 {
                assert_eq!(a.decide(9, seq, attempt), b.decide(9, seq, attempt));
            }
        }
        assert_ne!(
            (0..200).map(|s| a.decide(1, s, 0)).collect::<Vec<_>>(),
            (0..200)
                .map(|s| FaultPlane::new(FaultPlan::with_seed(8, 0.3)).decide(1, s, 0))
                .collect::<Vec<_>>(),
            "different seeds give different fault streams"
        );
    }

    #[test]
    fn rate_zero_and_disarmed_always_deliver() {
        let p = FaultPlane::new(FaultPlan::with_seed(3, 0.0));
        assert!((0..500).all(|s| p.decide(0, s, 0) == Delivery::Deliver));
        let p = FaultPlane::new(FaultPlan::with_seed(3, 0.9));
        p.disarm();
        assert!(!p.is_armed());
        assert!((0..500).all(|s| p.decide(0, s, 0) == Delivery::Deliver));
        assert!(!p.replays_duplicate(0, 1));
        assert!(p.corrupts_checkpoint(4).is_none());
        p.arm();
        assert!(p.is_armed());
    }

    #[test]
    fn fault_rate_roughly_tracks_drop_rate() {
        let p = FaultPlane::new(FaultPlan::with_seed(11, 0.2));
        let n = 4000;
        let faulted = (0..n)
            .filter(|&s| !matches!(p.decide(5, s, 0), Delivery::Deliver | Delivery::Delay(_)))
            .count();
        let rate = faulted as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.05, "observed loss rate {rate}");
        let snap = p.snapshot();
        assert!(snap.faults_injected >= faulted as u64);
    }

    #[test]
    fn delays_are_bounded_by_the_plan() {
        let plan = FaultPlan { delay_ticks: 6, ..FaultPlan::with_seed(13, 0.5) };
        let p = FaultPlane::new(plan);
        let mut saw_delay = false;
        for s in 0..2000 {
            if let Delivery::Delay(d) = p.decide(2, s, 0) {
                assert!((1..=6).contains(&d), "delay {d} out of bounds");
                saw_delay = true;
            }
        }
        assert!(saw_delay, "a 50% rate must inject some delays");
    }

    #[test]
    fn crash_schedule_matches_exact_points_only() {
        let plan = FaultPlan {
            crash_schedule: vec![CrashPoint { worker: 1, at_step: 10 }],
            ..FaultPlan::with_seed(1, 0.1)
        };
        let p = FaultPlane::new(plan);
        assert_eq!(p.crash_scheduled(1, 10), Some(0));
        assert_eq!(p.crash_scheduled(0, 10), None);
        assert_eq!(p.crash_scheduled(1, 11), None);
    }

    #[test]
    fn registered_plane_publishes_chaos_series() {
        let registry = Registry::new();
        let p = FaultPlane::registered(FaultPlan::with_seed(5, 0.4), &registry);
        for s in 0..300 {
            p.decide(0, s, 0);
            p.replays_duplicate(0, s);
        }
        p.note_retry();
        let snap = registry.snapshot();
        assert!(snap.counter_total("chaos.faults_injected") > 0);
        assert_eq!(snap.counter("chaos.retries", &[]), 1);
        assert_eq!(p.snapshot().retries, 1);
    }
}
