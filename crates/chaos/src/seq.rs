//! Sequence-numbered, idempotent, in-order delivery.

use std::collections::BTreeMap;

/// Receiver-side sequencer for one directed channel: payloads tagged with
/// a sender-assigned sequence number come out exactly once, in sequence
/// order, no matter how the fault plane duplicates or reorders them.
///
/// `offer(seq, payload)` buffers out-of-order arrivals and discards
/// duplicates (a `seq` below the delivery cursor, or one already
/// buffered); it returns the run of payloads that just became deliverable.
/// This is what makes retried parameter-server deltas idempotent: a lost
/// ack makes the sender re-send an already-applied delta, and the
/// sequencer drops the duplicate instead of double-applying AdaGrad.
#[derive(Debug, Clone)]
pub struct Sequencer<T> {
    next: u64,
    buffer: BTreeMap<u64, T>,
}

impl<T> Default for Sequencer<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Sequencer<T> {
    /// An empty sequencer expecting sequence number 0 first.
    pub fn new() -> Self {
        Sequencer { next: 0, buffer: BTreeMap::new() }
    }

    /// Accepts one arrival. Returns the payloads now deliverable, in
    /// sequence order (empty when `seq` is a duplicate or a gap remains).
    pub fn offer(&mut self, seq: u64, payload: T) -> Vec<T> {
        if seq < self.next || self.buffer.contains_key(&seq) {
            return Vec::new(); // duplicate: already delivered or buffered
        }
        self.buffer.insert(seq, payload);
        let mut ready = Vec::new();
        while let Some(p) = self.buffer.remove(&self.next) {
            ready.push(p);
            self.next += 1;
        }
        ready
    }

    /// Sequence numbers delivered so far (== the next expected number).
    pub fn delivered(&self) -> u64 {
        self.next
    }

    /// Out-of-order arrivals waiting for a gap to fill.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream_passes_straight_through() {
        let mut s = Sequencer::new();
        for seq in 0..10u64 {
            assert_eq!(s.offer(seq, seq * 10), vec![seq * 10]);
        }
        assert_eq!(s.delivered(), 10);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn duplicates_are_discarded_everywhere() {
        let mut s = Sequencer::new();
        assert_eq!(s.offer(0, "a"), vec!["a"]);
        assert!(s.offer(0, "a-again").is_empty(), "already delivered");
        assert!(s.offer(2, "c").is_empty(), "gap: buffered");
        assert!(s.offer(2, "c-again").is_empty(), "already buffered");
        assert_eq!(s.offer(1, "b"), vec!["b", "c"], "gap fill releases the run");
        assert_eq!(s.delivered(), 3);
    }

    #[test]
    fn arbitrary_reorder_comes_out_sorted_exactly_once() {
        let order = [7u64, 3, 3, 0, 5, 1, 0, 2, 6, 4, 7];
        let mut s = Sequencer::new();
        let mut out = Vec::new();
        for &seq in &order {
            out.extend(s.offer(seq, seq));
        }
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(s.pending(), 0);
    }
}
