//! Hand-rolled `--key value` argument parsing (the sanctioned dependency
//! set has no CLI parser, and the surface is small enough not to need one).
//!
//! Flags shared by several subcommands (`--seed`, `--workers`, `--scale`,
//! `--metrics-json`) normalize through [`CommonArgs`] so every command
//! parses, defaults, and clamps them the same way.

use std::collections::HashMap;
use std::path::PathBuf;

/// CLI errors, split so the binary can pick exit codes.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation (usage text included).
    Usage(String),
    /// Runtime failure (I/O, graph errors, ...).
    Runtime(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Runtime(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<aligraph_graph::GraphError> for CliError {
    fn from(e: aligraph_graph::GraphError) -> Self {
        CliError::Runtime(e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Runtime(format!("io error: {e}"))
    }
}

/// Parsed invocation: a command plus `--key value` options.
#[derive(Debug, Clone)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    options: HashMap<String, String>,
}

impl Args {
    /// Parses `argv` (without the program name).
    pub fn parse(argv: &[String]) -> Result<Args, CliError> {
        let mut it = argv.iter();
        let command = it.next().cloned().ok_or_else(|| CliError::Usage(crate::HELP.to_string()))?;
        let mut options = HashMap::new();
        while let Some(key) = it.next() {
            let key = key
                .strip_prefix("--")
                .ok_or_else(|| CliError::Usage(format!("expected --option, got `{key}`")))?;
            let value =
                it.next().ok_or_else(|| CliError::Usage(format!("--{key} requires a value")))?;
            options.insert(key.to_string(), value.clone());
        }
        Ok(Args { command, options })
    }

    /// A required string option.
    pub fn required(&self, key: &str) -> Result<&str, CliError> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing required option --{key}")))
    }

    /// An optional string option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(String::as_str).unwrap_or(default)
    }

    /// A parsed numeric option with a default.
    pub fn num_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| CliError::Usage(format!("--{key}: cannot parse `{v}`")))
            }
        }
    }
}

/// Per-command defaults for the shared flags.
#[derive(Debug, Clone, Copy)]
pub struct CommonDefaults {
    /// Default `--seed`.
    pub seed: u64,
    /// Default `--workers`.
    pub workers: usize,
    /// Default `--scale`.
    pub scale: f64,
}

impl Default for CommonDefaults {
    fn default() -> Self {
        CommonDefaults { seed: 42, workers: 2, scale: 0.01 }
    }
}

/// The flags every benchmark-style subcommand shares, parsed once:
/// `--seed N`, `--workers N` (clamped to >= 1), `--scale F`,
/// `--metrics-json PATH` (where to dump the run's telemetry snapshot), and
/// the chaos-plane pair `--fault-seed N` / `--drop-rate F` (a fault plane is
/// attached iff `--fault-seed` is given; the rate defaults to 0.1 and clamps
/// to `[0, 0.999]`).
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Base RNG seed.
    pub seed: u64,
    /// Worker/shard count (>= 1).
    pub workers: usize,
    /// Synthetic-graph scale factor.
    pub scale: f64,
    /// Where to write the metrics JSON (`None` = don't).
    pub metrics_json: Option<PathBuf>,
    /// Chaos-plane seed (`None` = no fault injection).
    pub fault_seed: Option<u64>,
    /// Per-message fault probability for the chaos plane.
    pub drop_rate: f64,
}

impl CommonArgs {
    /// Parses the shared flags out of `args`, falling back to `defaults`.
    pub fn from_args(args: &Args, defaults: CommonDefaults) -> Result<CommonArgs, CliError> {
        let path = args.get_or("metrics-json", "");
        let fault_seed = match args.get_or("fault-seed", "") {
            "" => None,
            _ => Some(args.num_or("fault-seed", 0u64)?),
        };
        Ok(CommonArgs {
            seed: args.num_or("seed", defaults.seed)?,
            workers: args.num_or("workers", defaults.workers)?.max(1),
            scale: args.num_or("scale", defaults.scale)?,
            metrics_json: if path.is_empty() { None } else { Some(PathBuf::from(path)) },
            fault_seed,
            drop_rate: args.num_or("drop-rate", 0.1f64)?.clamp(0.0, 0.999),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_command_and_options() {
        let a = Args::parse(&argv(&["generate", "--kind", "taobao", "--scale", "0.5"])).unwrap();
        assert_eq!(a.command, "generate");
        assert_eq!(a.required("kind").unwrap(), "taobao");
        assert_eq!(a.num_or("scale", 1.0f64).unwrap(), 0.5);
        assert_eq!(a.num_or("seed", 7u64).unwrap(), 7);
        assert_eq!(a.get_or("missing", "x"), "x");
    }

    #[test]
    fn rejects_malformed_invocations() {
        assert!(matches!(Args::parse(&[]), Err(CliError::Usage(_))));
        assert!(matches!(Args::parse(&argv(&["train", "positional"])), Err(CliError::Usage(_))));
        assert!(matches!(Args::parse(&argv(&["train", "--graph"])), Err(CliError::Usage(_))));
        let a = Args::parse(&argv(&["train", "--dim", "abc"])).unwrap();
        assert!(matches!(a.num_or("dim", 8usize), Err(CliError::Usage(_))));
        assert!(matches!(a.required("graph"), Err(CliError::Usage(_))));
    }

    #[test]
    fn common_args_normalize_shared_flags() {
        let d = CommonDefaults { seed: 7, workers: 4, scale: 0.5 };
        let a = Args::parse(&argv(&["bench"])).unwrap();
        let c = CommonArgs::from_args(&a, d).unwrap();
        assert_eq!((c.seed, c.workers, c.scale), (7, 4, 0.5));
        assert!(c.metrics_json.is_none());
        assert!(c.fault_seed.is_none(), "no fault plane unless --fault-seed given");

        let a = Args::parse(&argv(&[
            "bench",
            "--seed",
            "9",
            "--workers",
            "0",
            "--scale",
            "0.25",
            "--metrics-json",
            "/tmp/m.json",
        ]))
        .unwrap();
        let c = CommonArgs::from_args(&a, d).unwrap();
        assert_eq!((c.seed, c.workers, c.scale), (9, 1, 0.25), "workers clamp to 1");
        assert_eq!(c.metrics_json.unwrap().to_string_lossy(), "/tmp/m.json");
    }

    #[test]
    fn chaos_flags_parse_and_clamp() {
        let d = CommonDefaults::default();
        let a = Args::parse(&argv(&["bench", "--fault-seed", "42", "--drop-rate", "0.2"])).unwrap();
        let c = CommonArgs::from_args(&a, d).unwrap();
        assert_eq!(c.fault_seed, Some(42));
        assert_eq!(c.drop_rate, 0.2);

        let a = Args::parse(&argv(&["bench", "--fault-seed", "7", "--drop-rate", "1.5"])).unwrap();
        let c = CommonArgs::from_args(&a, d).unwrap();
        assert_eq!(c.drop_rate, 0.999, "rate clamps below certain loss");

        let a = Args::parse(&argv(&["bench", "--fault-seed", "x"])).unwrap();
        assert!(matches!(CommonArgs::from_args(&a, d), Err(CliError::Usage(_))));
    }
}
