//! The `aligraph` binary: parse, dispatch, print, exit.

#![forbid(unsafe_code)]

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match aligraph_cli::run(&argv) {
        Ok(report) => println!("{report}"),
        Err(aligraph_cli::CliError::Usage(msg)) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
        Err(aligraph_cli::CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
