//! # aligraph-cli
//!
//! The `aligraph` command: a thin, dependency-free front door to the
//! platform for downstream users who want graphs, partitions, embeddings
//! and metrics without writing Rust.
//!
//! ```text
//! aligraph generate  --kind taobao --scale 0.01 --out graph.tsv
//! aligraph stats     --graph graph.tsv
//! aligraph partition --graph graph.tsv --workers 8 --algo metis
//! aligraph train     --graph graph.tsv --model graphsage --out emb.tsv
//! aligraph eval      --graph graph.tsv --model deepwalk
//! aligraph automl    --graph graph.tsv
//! ```
//!
//! Every subcommand accepts `--metrics-json PATH`: the run's telemetry
//! registry (one [`aligraph_telemetry::Registry`] per invocation, threaded
//! through storage, sampling, serving and runtime) is snapshotted after the
//! command succeeds and written as stable JSON
//! (`{"version":1,"command":...,"metrics":[...]}`). Commands that register
//! nothing produce an empty `metrics` array.
//!
//! The library half exposes the argument parser and command runners so the
//! behaviour is unit-testable; `main.rs` is a two-line shim.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod args;
pub mod commands;

pub use args::{Args, CliError, CommonArgs, CommonDefaults};

use aligraph_telemetry::{Json, Registry, Report};
use std::sync::Arc;

/// Entry point shared by `main` and the tests: parses, dispatches, and (on
/// success) dumps the command's telemetry snapshot if `--metrics-json` was
/// given.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv)?;
    let registry = Arc::new(Registry::new());
    let out = match args.command.as_str() {
        "generate" => commands::generate(&args),
        "stats" => commands::stats(&args),
        "partition" => commands::partition(&args),
        "train" => commands::train(&args),
        "eval" => commands::eval(&args),
        "automl" => commands::automl(&args),
        "serve-bench" => commands::serve_bench(&args, &registry),
        "serve-under-update" => commands::serve_under_update(&args, &registry),
        "train-bench" => commands::train_bench(&args, &registry),
        "rebalance-bench" => commands::rebalance_bench(&args, &registry),
        "tiered-bench" => commands::tiered_bench(&args, &registry),
        "closed-loop" => commands::closed_loop(&args, &registry),
        "metrics-demo" => commands::metrics_demo(&args, &registry),
        "help" | "--help" | "-h" => Ok(HELP.to_string()),
        other => Err(CliError::Usage(format!("unknown command `{other}`\n\n{HELP}"))),
    }?;
    let common = CommonArgs::from_args(&args, CommonDefaults::default())?;
    if let Some(path) = &common.metrics_json {
        let json = metrics_json(&args.command, &registry);
        std::fs::write(path, format!("{json}\n")).map_err(|e| {
            CliError::Runtime(format!("cannot write metrics to {}: {e}", path.display()))
        })?;
    }
    Ok(out)
}

/// The stable metrics-JSON wrapper: schema version, the command that ran,
/// and the registry snapshot's `metrics` array.
pub fn metrics_json(command: &str, registry: &Registry) -> Json {
    let snapshot = registry.snapshot();
    let metrics =
        snapshot.to_json().get("metrics").cloned().unwrap_or_else(|| Json::Arr(Vec::new()));
    Json::obj(vec![
        ("version", Json::UInt(1)),
        ("command", Json::str(command)),
        ("metrics", metrics),
    ])
}

/// Top-level usage text.
pub const HELP: &str = "\
aligraph — the AliGraph reproduction CLI

USAGE:
    aligraph <COMMAND> [--key value ...]

COMMANDS:
    generate   synthesize a graph        --kind taobao|amazon|ba [--scale F] [--seed N] --out FILE
    stats      inspect a graph           --graph FILE
    partition  partition + quality       --graph FILE [--workers N] [--algo hash|metis|vertex-cut|2d|ldg]
    train      train embeddings          --graph FILE [--model graphsage|deepwalk|node2vec|line|gatne|hep] [--dim N] [--seed N] --out FILE
    eval       link-prediction metrics   --graph FILE [--model ...] [--test-fraction F] [--seed N]
    automl     model-selection tournament --graph FILE
    serve-bench online-serving load test  [--requests N] [--clients N] [--workers N] [--scale F] [--seed N] [--delta-every-ms N] [--batch N] [--queue N] [--cache N] [--fault-seed N] [--drop-rate F] [--max-stale N]
    serve-under-update streaming-update load test [--requests N] [--clients N] [--workers N] [--scale F] [--seed N] [--update-every-ms N] [--update-adds N] [--update-attrs N] [--dim N] [--cache N] [--slo-p99-ms F] [--fault-seed N] [--drop-rate F]
    train-bench distributed-training bench [--workers N] [--scale F] [--seed N] [--epochs N] [--batches N] [--batch N] [--negatives N] [--staleness N] [--dim N] [--sparse-lr F] [--checkpoint-dir DIR] [--checkpoint-every N] [--kill-worker N] [--kill-at-step N] [--fault-seed N] [--drop-rate F] [--resident-budget BYTES]
    rebalance-bench elastic-topology bench: mid-training shard split (and optional merge) must match the static run bit-for-bit [--workers N] [--scale F] [--seed N] [--epochs N] [--split-after N] [--merge 1] [--batches N] [--batch N] [--staleness N] [--dim N] [--fault-seed N] [--drop-rate F]
    tiered-bench out-of-core scale curve: graph sizes S/4, S/2, S (hundredths of taobao-large), each trained all-hot and under a resident byte cap — peak resident bytes must hold the budget and the tight model must match the all-hot oracle bit-for-bit [--scale S] [--workers N] [--seed N] [--resident-budget BYTES] [--epochs N] [--batches N] [--batch N] [--dim N]
    closed-loop end-to-end production loop: serve -> log -> update -> incremental train -> hot-swap [--cycles N] [--users N] [--interactions N] [--workers N] [--scale F] [--seed N] [--dim N] [--hub-capacity N] [--drift-rate F] [--batches N] [--batch N] [--staleness N] [--checkpoint-dir DIR] [--slo-freshness-ticks N] [--fault-seed N] [--drop-rate F]
    metrics-demo exercise every layer and print the unified telemetry table [--workers N] [--scale F] [--seed N]
    help       this text

SHARED FLAGS:
    --metrics-json PATH   after the command succeeds, write its telemetry
                          registry snapshot as stable JSON (all commands)
    --seed N / --workers N / --scale F parse identically everywhere
    --fault-seed N        attach the deterministic chaos plane, seeded with N
                          (train-bench / serve-bench / serve-under-update /
                          closed-loop);
                          faults and retries are counted in the report and
                          metrics JSON
    --drop-rate F         per-message fault probability for the chaos plane
                          (default 0.1, clamped to [0, 0.999])
    --resident-budget N   byte cap for the cold storage tier's hot set
                          (train-bench / tiered-bench); 0 or absent keeps
                          train-bench untiered and lets tiered-bench default
                          to 10% of each point's all-hot footprint
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("aligraph-cli-run-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn run_writes_metrics_json_for_any_command() {
        let graph = tmp("run_graph.tsv");
        let metrics = tmp("run_generate_metrics.json");
        run(&argv(&[
            "generate",
            "--kind",
            "ba",
            "--scale",
            "0.002",
            "--out",
            &graph,
            "--metrics-json",
            &metrics,
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&metrics).unwrap();
        // `generate` registers nothing, so the wrapper carries an empty array.
        assert_eq!(json.trim(), r#"{"version":1,"command":"generate","metrics":[]}"#);
    }

    #[test]
    fn run_metrics_demo_dumps_all_layers_as_json() {
        let metrics = tmp("run_demo_metrics.json");
        let out =
            run(&argv(&["metrics-demo", "--scale", "0.004", "--metrics-json", &metrics])).unwrap();
        assert!(
            out.contains("one registry across storage, sampling, runtime, and serving"),
            "{out}"
        );
        let json = std::fs::read_to_string(&metrics).unwrap();
        assert!(json.starts_with(r#"{"version":1,"command":"metrics-demo","metrics":["#), "{json}");
        for name in ["storage.access", "sampling.draws", "runtime.ps.ops", "serving.requests"] {
            assert!(json.contains(name), "metrics JSON missing {name}");
        }
    }
}
