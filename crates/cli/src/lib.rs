//! # aligraph-cli
//!
//! The `aligraph` command: a thin, dependency-free front door to the
//! platform for downstream users who want graphs, partitions, embeddings
//! and metrics without writing Rust.
//!
//! ```text
//! aligraph generate  --kind taobao --scale 0.01 --out graph.tsv
//! aligraph stats     --graph graph.tsv
//! aligraph partition --graph graph.tsv --workers 8 --algo metis
//! aligraph train     --graph graph.tsv --model graphsage --out emb.tsv
//! aligraph eval      --graph graph.tsv --model deepwalk
//! aligraph automl    --graph graph.tsv
//! ```
//!
//! The library half exposes the argument parser and command runners so the
//! behaviour is unit-testable; `main.rs` is a two-line shim.

pub mod args;
pub mod commands;

pub use args::{Args, CliError};

/// Entry point shared by `main` and the tests: parses and dispatches.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let args = Args::parse(argv)?;
    match args.command.as_str() {
        "generate" => commands::generate(&args),
        "stats" => commands::stats(&args),
        "partition" => commands::partition(&args),
        "train" => commands::train(&args),
        "eval" => commands::eval(&args),
        "automl" => commands::automl(&args),
        "serve-bench" => commands::serve_bench(&args),
        "train-bench" => commands::train_bench(&args),
        "help" | "--help" | "-h" => Ok(HELP.to_string()),
        other => Err(CliError::Usage(format!("unknown command `{other}`\n\n{HELP}"))),
    }
}

/// Top-level usage text.
pub const HELP: &str = "\
aligraph — the AliGraph reproduction CLI

USAGE:
    aligraph <COMMAND> [--key value ...]

COMMANDS:
    generate   synthesize a graph        --kind taobao|amazon|ba [--scale F] [--seed N] --out FILE
    stats      inspect a graph           --graph FILE
    partition  partition + quality       --graph FILE [--workers N] [--algo hash|metis|vertex-cut|2d|ldg]
    train      train embeddings          --graph FILE [--model graphsage|deepwalk|node2vec|line|gatne|hep] [--dim N] [--seed N] --out FILE
    eval       link-prediction metrics   --graph FILE [--model ...] [--test-fraction F] [--seed N]
    automl     model-selection tournament --graph FILE
    serve-bench online-serving load test  [--requests N] [--clients N] [--workers N] [--scale F] [--seed N] [--delta-every-ms N] [--batch N] [--queue N] [--cache N]
    train-bench distributed-training bench [--workers N] [--scale F] [--seed N] [--epochs N] [--batches N] [--batch N] [--negatives N] [--staleness N] [--dim N] [--sparse-lr F] [--checkpoint-dir DIR] [--checkpoint-every N] [--kill-worker N] [--kill-at-step N]
    help       this text
";
