//! The subcommand implementations. Each returns its report as a `String`
//! (printed by `main`, asserted on by the tests).

use crate::args::{Args, CliError, CommonArgs, CommonDefaults};
use aligraph::models::gatne::{train_gatne, GatneConfig};
use aligraph::models::graphsage::{train_graphsage, GraphSageConfig};
use aligraph::models::hep::{train_hep, HepConfig};
use aligraph::{evaluate_split, select_model, Candidate, EmbeddingModel};
use aligraph_baselines::{train_deepwalk, train_line, train_node2vec, LineOrder, SkipGramParams};
use aligraph_eval::link_prediction_split;
use aligraph_graph::generate::{amazon_sim_scaled, barabasi_albert, TaobaoConfig};
use aligraph_graph::powerlaw::{fit_exponent, head_mass};
use aligraph_graph::{read_graph, write_graph, AttributedHeterogeneousGraph};
use aligraph_partition::{
    EdgeCutHash, Grid2D, MetisLike, PartitionQuality, Partitioner, StreamingLdg, VertexCutGreedy,
};
use std::fmt::Write as _;
use std::fs::File;

fn load(args: &Args) -> Result<AttributedHeterogeneousGraph, CliError> {
    let path = args.required("graph")?;
    let file =
        File::open(path).map_err(|e| CliError::Runtime(format!("cannot open {path}: {e}")))?;
    Ok(read_graph(file)?)
}

/// `aligraph generate --kind taobao|amazon|ba [--scale F] [--seed N] --out FILE`
pub fn generate(args: &Args) -> Result<String, CliError> {
    let kind = args.get_or("kind", "taobao");
    let scale: f64 = args.num_or("scale", 0.001)?;
    let seed: u64 = args.num_or("seed", 42)?;
    let graph = match kind {
        "taobao" => {
            let mut cfg = TaobaoConfig::small_sim().scaled(scale);
            cfg.seed = seed;
            cfg.reverse_ui_prob = args.num_or("reverse", 0.15)?;
            cfg.generate()?
        }
        "amazon" => {
            let n = ((10_166.0 * scale.max(0.01)) as usize).max(10);
            let m = ((148_865.0 * scale.max(0.01)) as usize).max(20);
            amazon_sim_scaled(n, m, seed)?
        }
        "ba" => {
            let n = ((20_000.0 * scale.max(0.001)) as usize).max(10);
            barabasi_albert(n, args.num_or("attach", 4usize)?, seed)?
        }
        other => return Err(CliError::Usage(format!("unknown --kind `{other}`"))),
    };
    let out = args.required("out")?;
    let mut file = File::create(out)?;
    write_graph(&graph, &mut file)?;
    Ok(format!(
        "wrote {} vertices / {} edges ({} vertex types, {} edge types) to {out}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.num_vertex_types(),
        graph.num_edge_types(),
    ))
}

/// `aligraph stats --graph FILE`
pub fn stats(args: &Args) -> Result<String, CliError> {
    let g = load(args)?;
    let degs: Vec<f64> = g.vertices().map(|v| (g.in_degree(v) + g.out_degree(v)) as f64).collect();
    let mut out = String::new();
    writeln!(out, "vertices:        {}", g.num_vertices()).ok();
    writeln!(out, "edges:           {}", g.num_edges()).ok();
    writeln!(out, "vertex types:    {}", g.num_vertex_types()).ok();
    writeln!(out, "edge types:      {}", g.num_edge_types()).ok();
    writeln!(out, "adjacency bytes: {}", g.adjacency_bytes()).ok();
    writeln!(
        out,
        "attr bytes:      {} (naive co-located: {})",
        g.attribute_bytes(),
        g.naive_attribute_bytes()
    )
    .ok();
    writeln!(out, "mean degree:     {:.2}", degs.iter().sum::<f64>() / degs.len().max(1) as f64)
        .ok();
    writeln!(out, "top-20%% degree mass: {:.1}%", head_mass(&degs, 0.2) * 100.0).ok();
    if let Some(fit) = fit_exponent(&degs, 2.0, 30) {
        writeln!(out, "power-law fit:   alpha = {:.2} (tail {})", fit.alpha, fit.tail_len).ok();
    }
    Ok(out)
}

/// `aligraph partition --graph FILE [--workers N] [--algo ...]`
pub fn partition(args: &Args) -> Result<String, CliError> {
    let g = load(args)?;
    let workers: usize = args.num_or("workers", 8)?;
    let algo = args.get_or("algo", "hash");
    let partitioner: Box<dyn Partitioner> = match algo {
        "hash" => Box::new(EdgeCutHash),
        "metis" => Box::new(MetisLike::default()),
        "vertex-cut" => Box::new(VertexCutGreedy::default()),
        "2d" => Box::new(Grid2D),
        "ldg" => Box::new(StreamingLdg::default()),
        other => return Err(CliError::Usage(format!("unknown --algo `{other}`"))),
    };
    let part = partitioner.partition(&g, workers);
    let q = PartitionQuality::evaluate(&g, &part);
    Ok(format!(
        "{} over {} workers: edge-cut {:.1}%, replication {:.2}, vertex imbalance {:.2}, edge imbalance {:.2}",
        partitioner.name(),
        part.num_workers,
        q.edge_cut_ratio * 100.0,
        q.replication_factor,
        q.vertex_imbalance,
        q.edge_imbalance,
    ))
}

fn train_model(
    g: &AttributedHeterogeneousGraph,
    model: &str,
    dim: usize,
    seed: u64,
) -> Result<Box<dyn EmbeddingModel>, CliError> {
    let params = SkipGramParams { dim, seed, ..SkipGramParams::quick() };
    Ok(match model {
        "graphsage" => {
            let mut cfg = GraphSageConfig::quick();
            cfg.dims = vec![dim.max(8), dim];
            cfg.train.seed = seed;
            Box::new(train_graphsage(g, &cfg).embeddings)
        }
        "deepwalk" => Box::new(train_deepwalk(g, &params)),
        "node2vec" => Box::new(train_node2vec(g, &params, 1.0, 0.5)),
        "line" => Box::new(train_line(g, &params, LineOrder::Both)),
        "gatne" => Box::new(train_gatne(g, &GatneConfig { dim, ..GatneConfig::quick() })),
        "hep" => Box::new(train_hep(g, &HepConfig::hep_quick(dim))),
        other => return Err(CliError::Usage(format!("unknown --model `{other}`"))),
    })
}

/// `aligraph train --graph FILE [--model M] [--dim N] --out FILE`
pub fn train(args: &Args) -> Result<String, CliError> {
    let g = load(args)?;
    let model_name = args.get_or("model", "graphsage");
    let dim: usize = args.num_or("dim", 32)?;
    let seed: u64 = args.num_or("seed", 42)?;
    let model = train_model(&g, model_name, dim, seed)?;

    let out = args.required("out")?;
    let mut file = std::io::BufWriter::new(File::create(out)?);
    use std::io::Write;
    for v in g.vertices() {
        let e = model.embedding(v);
        let cells: Vec<String> = e.iter().map(|x| format!("{x:.6}")).collect();
        writeln!(file, "{}\t{}", v.0, cells.join("\t"))?;
    }
    Ok(format!(
        "trained {model_name} (dim {dim}) on {} vertices; embeddings written to {out}",
        g.num_vertices()
    ))
}

/// `aligraph eval --graph FILE [--model M] [--test-fraction F] [--seed N]`
pub fn eval(args: &Args) -> Result<String, CliError> {
    let g = load(args)?;
    let model_name = args.get_or("model", "graphsage");
    let dim: usize = args.num_or("dim", 32)?;
    let seed: u64 = args.num_or("seed", 42)?;
    let fraction: f64 = args.num_or("test-fraction", 0.15)?;
    let split = link_prediction_split(&g, fraction, seed);
    let model = train_model(&split.train, model_name, dim, seed)?;
    let metrics = evaluate_split(model.as_ref(), &split);
    Ok(format!("{model_name} link prediction: {metrics}"))
}

/// `aligraph automl --graph FILE` — the §7 model-selection tournament.
pub fn automl(args: &Args) -> Result<String, CliError> {
    let g = load(args)?;
    let dim: usize = args.num_or("dim", 24)?;
    let seed: u64 = args.num_or("seed", 42)?;
    let params = SkipGramParams { dim, seed, ..SkipGramParams::quick() };
    let p2 = params.clone();
    let board = select_model(
        &g,
        vec![
            Candidate::new("graphsage", move |g: &AttributedHeterogeneousGraph| {
                let mut cfg = GraphSageConfig::quick();
                cfg.train.seed = seed;
                train_graphsage(g, &cfg).embeddings
            }),
            Candidate::new("deepwalk", move |g: &AttributedHeterogeneousGraph| {
                train_deepwalk(g, &params)
            }),
            Candidate::new("line", move |g: &AttributedHeterogeneousGraph| {
                train_line(g, &p2, LineOrder::Both)
            }),
            Candidate::new("hep", move |g: &AttributedHeterogeneousGraph| {
                train_hep(g, &HepConfig::hep_quick(dim))
            }),
        ],
        0.15,
        seed,
    );
    let mut out = String::new();
    writeln!(out, "model selection (validation ROC-AUC):").ok();
    for r in &board.results {
        writeln!(out, "  {:<12} {}", r.name, r.metrics).ok();
    }
    writeln!(out, "winner: {}", board.winner()).ok();
    Ok(out)
}

/// `aligraph serve-bench [--requests N] [--clients N] [--workers N]
/// [--scale F] [--seed N] [--delta-every-ms N] [--batch N] [--queue N]
/// [--cache N] [--fault-seed N] [--drop-rate F] [--max-stale N]` — replays a
/// synthetic Taobao-small request stream against
/// the online serving layer while a writer thread interleaves dynamic graph
/// updates, then prints the latency/throughput report. Serving metrics
/// publish into `registry` as `serving.*` series.
pub fn serve_bench(
    args: &Args,
    registry: &std::sync::Arc<aligraph_telemetry::Registry>,
) -> Result<String, CliError> {
    use aligraph_graph::dynamic::{EdgeEvent, EvolutionKind, SnapshotDelta};
    use aligraph_graph::ids::well_known::CLICK;
    use aligraph_graph::VertexId;
    use aligraph_sampling::WeightedNeighborhood;
    use aligraph_serving::{ServeError, ServingConfig, ServingFaultConfig, ServingService};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let common = CommonArgs::from_args(args, CommonDefaults { seed: 42, workers: 2, scale: 0.1 })?;
    let requests: u64 = args.num_or("requests", 10_000u64)?;
    let clients: usize = args.num_or("clients", 4usize)?.max(1);
    let workers = common.workers;
    let scale = common.scale;
    let seed = common.seed;
    let delta_every_ms: u64 = args.num_or("delta-every-ms", 2u64)?.max(1);
    let max_stale: u64 = args.num_or("max-stale", 8u64)?;
    let fault = common.fault_seed.map(|fault_seed| ServingFaultConfig {
        plan: aligraph_chaos::FaultPlan::with_seed(fault_seed, common.drop_rate),
        policy: aligraph_chaos::RetryPolicy::default(),
        max_stale_versions: max_stale,
    });
    let config = ServingConfig {
        workers,
        max_batch: args.num_or("batch", 32usize)?,
        queue_capacity: args.num_or("queue", 512usize)?,
        cache_capacity: args.num_or("cache", 4_096usize)?,
        seed,
        fault,
        ..Default::default()
    };

    let mut cfg = TaobaoConfig::small_sim().scaled(scale);
    cfg.seed = seed;
    let graph = Arc::new(cfg.generate()?);
    let n = graph.num_vertices() as u32;
    let service = ServingService::start_with_registry(
        Arc::clone(&graph),
        WeightedNeighborhood,
        config,
        registry,
    );

    let done = AtomicBool::new(false);
    let start = Instant::now();
    // (completed, retries, failures) across clients; (applied, invalidated)
    // from the delta writer.
    let (served, retries, failures, applied, invalidated) = std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            // Each update adds a handful of random CLICK edges and retracts
            // the previous update's additions, so the graph churns without
            // growing — the paper's "dynamically changed subgraphs".
            let mut rng = StdRng::seed_from_u64(seed ^ 0xd17a);
            let mut prev: Vec<EdgeEvent> = Vec::new();
            let mut applied = 0u64;
            let mut invalidated = 0u64;
            // ordering: a lone shutdown flag with no payload published
            // through it; the writer only needs to observe the store
            // eventually, so Relaxed suffices.
            while !done.load(Ordering::Relaxed) {
                let added: Vec<EdgeEvent> = (0..8)
                    .map(|_| EdgeEvent {
                        src: VertexId(rng.gen_range(0..n)),
                        dst: VertexId(rng.gen_range(0..n)),
                        etype: CLICK,
                        kind: EvolutionKind::Normal,
                    })
                    .collect();
                let delta =
                    SnapshotDelta { added: added.clone(), removed: std::mem::take(&mut prev) };
                invalidated += service.apply_delta(&delta) as u64;
                prev = added;
                applied += 1;
                std::thread::sleep(Duration::from_millis(delta_every_ms));
            }
            (applied, invalidated)
        });

        let client_handles: Vec<_> = (0..clients)
            .map(|c| {
                let todo =
                    requests / clients as u64 + if c == 0 { requests % clients as u64 } else { 0 };
                let service = &service;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ (c as u64).wrapping_mul(7919) ^ 1);
                    let (mut ok, mut retries, mut failures) = (0u64, 0u64, 0u64);
                    while ok < todo {
                        // Zipf-ish popularity: cubing the uniform draw skews
                        // traffic heavily toward low vertex ids.
                        let r: f64 = rng.gen();
                        let u = VertexId(((n as f64 * r * r * r) as u32).min(n - 1));
                        let outcome = if rng.gen_bool(0.2) {
                            let r2: f64 = rng.gen();
                            let v = VertexId(((n as f64 * r2 * r2 * r2) as u32).min(n - 1));
                            service.score(u, v).map(|_| ())
                        } else {
                            service.embedding(u).map(|_| ())
                        };
                        match outcome {
                            Ok(()) => ok += 1,
                            Err(ServeError::Overloaded { retry_after_ms, .. }) => {
                                retries += 1;
                                std::thread::sleep(Duration::from_millis(retry_after_ms.min(5)));
                            }
                            Err(ServeError::Unavailable { .. }) => {
                                // Degraded-mode refusal under the chaos
                                // plane (fallback stale beyond bound): the
                                // request correctly failed closed; count it
                                // as served work, not a service failure.
                                ok += 1;
                            }
                            Err(_) => {
                                failures += 1;
                                break;
                            }
                        }
                    }
                    (ok, retries, failures)
                })
            })
            .collect();

        let (mut ok, mut retries, mut failures) = (0u64, 0u64, 0u64);
        for h in client_handles {
            let (o, r, f) = h.join().expect("client thread");
            ok += o;
            retries += r;
            failures += f;
        }
        // ordering: matching Relaxed store for the writer's shutdown
        // poll; the join below is the real synchronization point.
        done.store(true, Ordering::Relaxed);
        let (applied, invalidated) = writer.join().expect("delta writer");
        (ok, retries, failures, applied, invalidated)
    });

    let elapsed = start.elapsed();
    let report = service.report(elapsed);
    service.shutdown();

    let mut out = String::new();
    writeln!(
        out,
        "serve-bench: {served} requests served by {workers} workers ({clients} clients) over \
         {} vertices / {} edges in {elapsed:.2?}",
        graph.num_vertices(),
        graph.num_edges(),
    )
    .ok();
    writeln!(
        out,
        "dynamic updates: {applied} deltas applied concurrently, {invalidated} cache entries \
         invalidated, {retries} overload retries, {failures} failures",
    )
    .ok();
    writeln!(out, "{report}").ok();
    if failures > 0 {
        return Err(CliError::Runtime(format!("{failures} requests failed\n\n{out}")));
    }
    Ok(out)
}

/// `aligraph serve-under-update [--requests N] [--clients N] [--workers N]
/// [--scale F] [--seed N] [--update-every-ms N] [--update-adds N]
/// [--update-attrs N] [--dim N] [--cache N] [--slo-p99-ms F]
/// [--fault-seed N] [--drop-rate F]` — drives the streaming dynamic-graph
/// service with seeded mixed read/update traffic: an updater thread feeds
/// power-law-skewed edge/feature batches through the ingest pipeline while
/// client threads gather through epoch-pinned sessions. Verifies session
/// consistency (every gather of a session reports its pinned epoch), runs
/// the bit-exact incremental-vs-rebuild oracle at the end, and fails the
/// run when serve p99 exceeds the `--slo-p99-ms` SLO.
pub fn serve_under_update(
    args: &Args,
    registry: &std::sync::Arc<aligraph_telemetry::Registry>,
) -> Result<String, CliError> {
    use aligraph_graph::{Featurizer, VertexId};
    use aligraph_streaming::{
        IngestFaultConfig, StreamingConfig, StreamingReport, StreamingService, UpdateWorkload,
    };
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let common = CommonArgs::from_args(args, CommonDefaults { seed: 42, workers: 2, scale: 0.05 })?;
    let requests: u64 = args.num_or("requests", 6_000u64)?;
    let clients: usize = args.num_or("clients", 4usize)?.max(1);
    let seed = common.seed;
    let update_every_ms: u64 = args.num_or("update-every-ms", 2u64)?.max(1);
    let adds: usize = args.num_or("update-adds", 8usize)?;
    let attrs: usize = args.num_or("update-attrs", 2usize)?;
    let dim: usize = args.num_or("dim", 16usize)?.max(1);
    let slo_p99_ms: f64 = args.num_or("slo-p99-ms", 20.0f64)?;
    let fault = common.fault_seed.map(|fault_seed| IngestFaultConfig {
        plan: aligraph_chaos::FaultPlan::with_seed(fault_seed, common.drop_rate),
        policy: aligraph_chaos::RetryPolicy::default(),
    });
    let config = StreamingConfig {
        shards: common.workers.max(1),
        cache_capacity: args.num_or("cache", 4_096usize)?,
        seed,
        fault,
        ..Default::default()
    };

    let mut gen = TaobaoConfig::small_sim().scaled(common.scale);
    gen.seed = seed;
    let graph = Arc::new(gen.generate()?);
    let feats = Arc::new(Featurizer::new(dim).matrix(&graph));
    let n = graph.num_vertices() as u32;
    let service =
        StreamingService::start_with_registry(Arc::clone(&graph), feats, config, registry);

    let done = AtomicBool::new(false);
    let start = Instant::now();
    // (served, pinned-epoch violations) across clients; (batches, failures)
    // from the updater.
    let (served, violations, update_failures) = std::thread::scope(|scope| {
        let updater = scope.spawn(|| {
            // The same churn shape the serving bench drives deltas with:
            // each round retracts the previous round's additions, plus a
            // few feature rewrites, all skewed toward the hot vertices.
            let mut workload = UpdateWorkload::new(seed ^ 0xd17a, n, dim);
            let mut failures = 0u64;
            // ordering: a lone shutdown flag with no payload published
            // through it; Relaxed suffices.
            while !done.load(Ordering::Relaxed) {
                if service.ingest(&workload.next_batch(adds, attrs)).is_err() {
                    failures += 1;
                    break;
                }
                std::thread::sleep(Duration::from_millis(update_every_ms));
            }
            failures
        });

        let client_handles: Vec<_> = (0..clients)
            .map(|c| {
                let todo =
                    requests / clients as u64 + if c == 0 { requests % clients as u64 } else { 0 };
                let service = &service;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ (c as u64).wrapping_mul(7919) ^ 1);
                    let (mut ok, mut violations) = (0u64, 0u64);
                    while ok < todo {
                        // Zipf-ish popularity: cubing the uniform draw skews
                        // traffic heavily toward low vertex ids.
                        let r: f64 = rng.gen();
                        let u = VertexId(((n as f64 * r * r * r) as u32).min(n - 1));
                        let session = service.session();
                        let pinned = session.epoch();
                        if session.gather(u).epoch != pinned {
                            violations += 1;
                        }
                        if rng.gen_bool(0.3) {
                            let r2: f64 = rng.gen();
                            let v = VertexId(((n as f64 * r2 * r2 * r2) as u32).min(n - 1));
                            let g = session.gather(v);
                            if g.epoch != pinned {
                                violations += 1;
                            }
                            let _ = session.score(u, v);
                        }
                        ok += 1;
                    }
                    (ok, violations)
                })
            })
            .collect();

        let (mut ok, mut violations) = (0u64, 0u64);
        for h in client_handles {
            let (o, v) = h.join().expect("client thread");
            ok += o;
            violations += v;
        }
        // ordering: matching Relaxed store for the updater's shutdown
        // poll; the join below is the real synchronization point.
        done.store(true, Ordering::Relaxed);
        let failures = updater.join().expect("updater thread");
        (ok, violations, failures)
    });

    let elapsed = start.elapsed();
    let report = StreamingReport::from_snapshot(&registry.snapshot(), elapsed);
    let oracle = service.oracle_check();
    service.shutdown();

    let mut out = String::new();
    writeln!(
        out,
        "serve-under-update: {served} requests over {} vertices / {} edges in {elapsed:.2?} \
         ({clients} clients, {} ingest shards)",
        graph.num_vertices(),
        graph.num_edges(),
        common.workers.max(1),
    )
    .ok();
    writeln!(out, "{report}").ok();
    match &oracle {
        Ok(()) => {
            writeln!(out, "oracle: incremental alias/cache state bit-exact vs full rebuild").ok()
        }
        Err(e) => writeln!(out, "oracle: FAILED — {e}").ok(),
    };
    if update_failures > 0 {
        return Err(CliError::Runtime(format!("{update_failures} ingest batches failed\n\n{out}")));
    }
    if violations > 0 {
        return Err(CliError::Runtime(format!(
            "{violations} gathers broke session consistency (epoch != pinned)\n\n{out}"
        )));
    }
    if let Err(e) = oracle {
        return Err(CliError::Runtime(format!("equivalence oracle failed: {e}\n\n{out}")));
    }
    if report.p99_ms > slo_p99_ms {
        return Err(CliError::Runtime(format!(
            "SLO breach: serve p99 {:.3} ms > {slo_p99_ms:.3} ms\n\n{out}",
            report.p99_ms
        )));
    }
    writeln!(out, "SLO: serve p99 {:.3} ms within {slo_p99_ms:.3} ms", report.p99_ms).ok();
    Ok(out)
}

/// `aligraph train-bench [--workers N] [--scale F] [--seed N] [--epochs N]
/// [--batches N] [--batch N] [--negatives N] [--staleness N] [--dim N]
/// [--sparse-lr F] [--checkpoint-dir DIR] [--checkpoint-every N]
/// [--kill-worker N] [--kill-at-step N] [--fault-seed N] [--drop-rate F]` —
/// runs the distributed training
/// runtime on a synthetic Taobao graph with N shard-pinned workers, then
/// repeats with 1 worker on the same graph and reports the modelled speedup,
/// staleness histogram and parameter-server traffic by tier. The multi-worker
/// run publishes into `registry` (`storage.*`, `sampling.*`, `runtime.*`);
/// the baseline uses a detached registry so it cannot pollute the snapshot.
pub fn train_bench(
    args: &Args,
    registry: &std::sync::Arc<aligraph_telemetry::Registry>,
) -> Result<String, CliError> {
    use aligraph_graph::Featurizer;
    use aligraph_runtime::{
        ChaosConfig, CheckpointConfig, DistTrainer, EncoderSpec, FaultPlan, RuntimeConfig,
    };
    use aligraph_storage::{CacheStrategy, Cluster, CostModel};
    use aligraph_telemetry::Registry;
    use std::path::PathBuf;
    use std::sync::Arc;

    let common = CommonArgs::from_args(args, CommonDefaults { seed: 42, workers: 4, scale: 0.02 })?;
    let workers = common.workers;
    let scale = common.scale;
    let seed = common.seed;
    let dim: usize = args.num_or("dim", 32usize)?.max(1);

    let mut run_cfg = RuntimeConfig {
        workers,
        epochs: args.num_or("epochs", 2usize)?.max(1),
        batches_per_epoch: args.num_or("batches", 12usize)?.max(1),
        batch_size: args.num_or("batch", 32usize)?.max(1),
        negatives: args.num_or("negatives", 4usize)?,
        staleness: args.num_or("staleness", 2u64)?,
        seed,
        sparse_lr: args.num_or("sparse-lr", 0.05f32)?,
        ..RuntimeConfig::default()
    };
    let ckpt_dir = args.get_or("checkpoint-dir", "");
    if !ckpt_dir.is_empty() {
        run_cfg.checkpoint = Some(CheckpointConfig {
            dir: PathBuf::from(ckpt_dir),
            every_steps: args.num_or("checkpoint-every", 0u64)?,
        });
    }
    if !args.get_or("kill-worker", "").is_empty() {
        run_cfg.fault = Some(FaultPlan {
            worker: args.num_or("kill-worker", 0u32)?,
            at_step: args.num_or("kill-at-step", 1u64)?.max(1),
        });
    }
    if let Some(fault_seed) = common.fault_seed {
        run_cfg.chaos = Some(ChaosConfig::with_seed(fault_seed, common.drop_rate));
    }

    let mut gen = TaobaoConfig::small_sim().scaled(scale);
    gen.seed = seed;
    let graph = Arc::new(gen.generate()?);
    let spec = EncoderSpec {
        dim_in: dim,
        dims: vec![dim, dim / 2 + dim % 2],
        fanouts: vec![5, 3],
        lr: 0.05,
        seed: seed ^ 0x5eed,
    };
    let features = Featurizer::new(dim).matrix(&graph);

    let resident_budget: u64 = args.num_or("resident-budget", 0u64)?;
    let rt = |e: aligraph_runtime::RuntimeError| CliError::Runtime(e.to_string());
    let run = |p: usize, cfg: RuntimeConfig, registry: &Arc<Registry>| {
        let mut builder = Cluster::builder(Arc::clone(&graph))
            .partitioner(&EdgeCutHash)
            .shards(p)
            .cache(CacheStrategy::None)
            .max_hop(2)
            .cost_model(CostModel::default())
            .registry(registry);
        if resident_budget > 0 {
            builder = builder.resident_budget(resident_budget);
        }
        let (cluster, _) = builder.build();
        DistTrainer::new(&cluster, &features, spec.clone(), cfg)
            .map_err(rt)?
            .with_registry(Arc::clone(registry))
            .train()
            .map_err(rt)
    };

    let multi = run(workers, run_cfg.clone(), registry)?;
    let baseline_cfg =
        RuntimeConfig { workers: 1, checkpoint: None, fault: None, chaos: None, ..run_cfg };
    let baseline = run(1, baseline_cfg, &Arc::new(Registry::disabled()))?;

    let mut out = String::new();
    writeln!(
        out,
        "train-bench: {workers} workers over {} vertices / {} edges (scale {scale}, seed {seed})",
        graph.num_vertices(),
        graph.num_edges(),
    )
    .ok();
    writeln!(out, "{}", multi.report).ok();
    writeln!(
        out,
        "baseline (1 worker): {:.0} edges/s modeled over {} edges",
        baseline.report.modeled_edges_per_sec(),
        baseline.report.edges_total,
    )
    .ok();
    writeln!(
        out,
        "modeled speedup vs 1 worker: {:.2}x",
        multi.report.modeled_edges_per_sec() / baseline.report.modeled_edges_per_sec(),
    )
    .ok();
    Ok(out)
}

/// `aligraph rebalance-bench` — the elastic-membership headline: a
/// distributed training run with a mid-training shard split (and a
/// follow-up merge when `--merge` is set) must converge **bit-exactly** to
/// the same run on a static topology, with or without an armed chaos plane
/// on the migration channel. Prints both trajectories' agreement, the
/// migration traffic, and the modeled throughput; exits with an error if a
/// single mantissa bit diverged.
pub fn rebalance_bench(
    args: &Args,
    registry: &std::sync::Arc<aligraph_telemetry::Registry>,
) -> Result<String, CliError> {
    use aligraph_graph::Featurizer;
    use aligraph_runtime::{ChaosConfig, DistTrainer, EncoderSpec, RebalancePlan, RuntimeConfig};
    use aligraph_storage::{CacheStrategy, Cluster, CostModel, RebalanceOp};
    use aligraph_telemetry::Registry;
    use std::sync::Arc;

    let common = CommonArgs::from_args(args, CommonDefaults { seed: 42, workers: 4, scale: 0.02 })?;
    let workers = common.workers;
    let scale = common.scale;
    let seed = common.seed;
    let dim: usize = args.num_or("dim", 32usize)?.max(1);
    let epochs = args.num_or("epochs", 3usize)?.max(2);
    let split_after = args.num_or("split-after", 1usize)?.clamp(1, epochs - 1);
    let merge = !args.get_or("merge", "").is_empty();

    let mut run_cfg = RuntimeConfig {
        workers,
        epochs,
        batches_per_epoch: args.num_or("batches", 12usize)?.max(1),
        batch_size: args.num_or("batch", 32usize)?.max(1),
        negatives: args.num_or("negatives", 4usize)?,
        staleness: args.num_or("staleness", 2u64)?,
        seed,
        sparse_lr: args.num_or("sparse-lr", 0.05f32)?,
        ..RuntimeConfig::default()
    };
    if let Some(fault_seed) = common.fault_seed {
        run_cfg.chaos = Some(ChaosConfig::with_seed(fault_seed, common.drop_rate));
    }
    let mut plans = vec![RebalancePlan {
        after_epoch: split_after,
        op: RebalanceOp::Split { shard: 0 },
        mode: Default::default(),
    }];
    if merge && split_after + 1 < epochs {
        plans.push(RebalancePlan {
            after_epoch: split_after + 1,
            op: RebalanceOp::Merge { from: workers as u32, into: 0 },
            mode: Default::default(),
        });
    }

    let mut gen = TaobaoConfig::small_sim().scaled(scale);
    gen.seed = seed;
    let graph = Arc::new(gen.generate()?);
    let spec = EncoderSpec {
        dim_in: dim,
        dims: vec![dim, dim / 2 + dim % 2],
        fanouts: vec![5, 3],
        lr: 0.05,
        seed: seed ^ 0x5eed,
    };
    let features = Featurizer::new(dim).matrix(&graph);

    let rt = |e: aligraph_runtime::RuntimeError| CliError::Runtime(e.to_string());
    let run = |cfg: RuntimeConfig, registry: &Arc<Registry>| {
        let (cluster, _) = Cluster::builder(Arc::clone(&graph))
            .partitioner(&EdgeCutHash)
            .shards(workers)
            .cache(CacheStrategy::None)
            .max_hop(2)
            .cost_model(CostModel::default())
            .registry(registry)
            .build();
        let outcome = DistTrainer::new(&cluster, &features, spec.clone(), cfg)
            .map_err(rt)?
            .with_registry(Arc::clone(registry))
            .train()
            .map_err(rt)?;
        let m = cluster.migration_meter().snapshot();
        let migrated = m.local_bytes + m.cached_bytes + m.remote_bytes;
        Ok::<_, CliError>((outcome, migrated))
    };

    let elastic_cfg = RuntimeConfig { rebalance: plans.clone(), ..run_cfg.clone() };
    let (elastic, migrated) = run(elastic_cfg, registry)?;
    let (static_run, _) = run(run_cfg, &Arc::new(Registry::disabled()))?;

    let losses_match = elastic.report.epoch_losses.iter().map(|x| x.to_bits()).eq(static_run
        .report
        .epoch_losses
        .iter()
        .map(|x| x.to_bits()));
    let params_match = elastic.encoder.dense_param_vec().iter().map(|x| x.to_bits()).eq(static_run
        .encoder
        .dense_param_vec()
        .iter()
        .map(|x| x.to_bits()));

    let mut out = String::new();
    writeln!(
        out,
        "rebalance-bench: {workers} workers over {} vertices / {} edges (scale {scale}, seed \
         {seed})",
        graph.num_vertices(),
        graph.num_edges(),
    )
    .ok();
    writeln!(
        out,
        "topology plan: split shard 0 after epoch {split_after}{}",
        if plans.len() > 1 {
            format!(", merge it back after epoch {}", split_after + 1)
        } else {
            String::new()
        }
    )
    .ok();
    writeln!(out, "{}", elastic.report).ok();
    writeln!(out, "rebalances applied {}  migration bytes {migrated}", elastic.report.rebalances)
        .ok();
    writeln!(
        out,
        "vs static topology: losses {}  dense params {}",
        if losses_match { "bit-exact" } else { "DIVERGED" },
        if params_match { "bit-exact" } else { "DIVERGED" },
    )
    .ok();
    if !(losses_match && params_match) {
        return Err(CliError::Runtime(format!(
            "elastic run diverged from the static-topology run\n{out}"
        )));
    }
    Ok(out)
}

/// `aligraph tiered-bench [--scale S] [--workers N] [--seed N]
/// [--resident-budget BYTES] [--epochs N] [--batches N] [--batch N]
/// [--dim N]` — the out-of-core scale curve. At graph sizes S/4, S/2 and S
/// (S in hundredths of `TaobaoConfig::large_sim()`, so `--scale 100` is the
/// full taobao-large graph) it builds the tiered cluster twice per point:
/// once all-hot (infinite budget, detached registry) as the oracle, once
/// under the resident byte cap. Hard gates, each of which fails the run:
/// the tight run's peak resident bytes must stay within the budget, its
/// model fingerprint (epoch losses + dense parameters + trained features)
/// must be bit-identical to the all-hot oracle's, the oracle must never
/// read cold, and a tight run whose budget is genuinely below the all-hot
/// footprint must actually serve training reads from the cold tier. The
/// largest point's tight run publishes into `registry` (`tier.*`,
/// `storage.*`, `sampling.*`, `runtime.*`).
///
/// `--resident-budget` caps the top point and scales linearly down the
/// curve; when omitted every point gets 10% of its own all-hot footprint.
pub fn tiered_bench(
    args: &Args,
    registry: &std::sync::Arc<aligraph_telemetry::Registry>,
) -> Result<String, CliError> {
    use aligraph_graph::Featurizer;
    use aligraph_runtime::{DistOutcome, DistTrainer, EncoderSpec, RuntimeConfig};
    use aligraph_storage::{CacheStrategy, Cluster, CostModel, TierConfig};
    use aligraph_telemetry::Registry;
    use std::sync::Arc;

    fn fnv(h: &mut u64, x: u64) {
        *h ^= x;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Order-sensitive FNV over every bit the training run produced: epoch
    // losses, dense encoder parameters, trained feature rows.
    fn fingerprint(out: &DistOutcome) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for x in &out.report.epoch_losses {
            fnv(&mut h, x.to_bits());
        }
        for x in out.encoder.dense_param_vec() {
            fnv(&mut h, u64::from(x.to_bits()));
        }
        for x in out.features.as_slice() {
            fnv(&mut h, u64::from(x.to_bits()));
        }
        h
    }

    let common = CommonArgs::from_args(args, CommonDefaults { seed: 42, workers: 4, scale: 10.0 })?;
    let workers = common.workers;
    let seed = common.seed;
    let dim: usize = args.num_or("dim", 16usize)?.max(2);
    let budget_arg: u64 = args.num_or("resident-budget", 0u64)?;
    let run_cfg = RuntimeConfig {
        workers,
        epochs: args.num_or("epochs", 2usize)?.max(1),
        batches_per_epoch: args.num_or("batches", 6usize)?.max(1),
        batch_size: args.num_or("batch", 16usize)?.max(1),
        negatives: args.num_or("negatives", 2usize)?,
        staleness: args.num_or("staleness", 0u64)?,
        seed,
        sparse_lr: args.num_or("sparse-lr", 0.05f32)?,
        ..RuntimeConfig::default()
    };

    let top = common.scale.max(0.04);
    let points = [top / 4.0, top / 2.0, top];
    let rt = |e: aligraph_runtime::RuntimeError| CliError::Runtime(e.to_string());

    let mut out = String::new();
    writeln!(
        out,
        "tiered-bench: scale curve [{:.2}, {:.2}, {:.2}] (hundredths of taobao-large), \
         {workers} workers, seed {seed}",
        points[0], points[1], points[2],
    )
    .ok();

    for (i, &point) in points.iter().enumerate() {
        let mut gen = TaobaoConfig::large_sim().scaled(point / 100.0);
        gen.seed = seed;
        let graph = Arc::new(gen.generate()?);
        let spec = EncoderSpec {
            dim_in: dim,
            dims: vec![dim, dim / 2 + dim % 2],
            fanouts: vec![5, 3],
            lr: 0.05,
            seed: seed ^ 0x5eed,
        };
        let features = Featurizer::new(dim).matrix(&graph);

        let build = |budget: Option<u64>, registry: &Arc<Registry>| {
            Cluster::builder(Arc::clone(&graph))
                .partitioner(&EdgeCutHash)
                .shards(workers)
                .cache(CacheStrategy::None)
                .max_hop(2)
                .cost_model(CostModel::default())
                .registry(registry)
                .tier_config(TierConfig::with_budget(budget))
                .build()
                .0
        };

        // All-hot oracle: infinite budget; a full sweep pins every row hot
        // and measures the footprint the byte cap is a fraction of.
        let detached = Arc::new(Registry::disabled());
        let oracle_cluster = build(None, &detached);
        let oracle_tier = oracle_cluster.tier().expect("tiered build always has a tier").clone();
        for v in graph.vertices() {
            oracle_tier.read_adjacency(v);
        }
        let all_hot = oracle_tier.resident_bytes();
        let oracle = DistTrainer::new(&oracle_cluster, &features, spec.clone(), run_cfg.clone())
            .map_err(rt)?
            .train()
            .map_err(rt)?;

        let budget = if budget_arg > 0 {
            ((budget_arg as f64 * point / top) as u64).max(1)
        } else {
            (all_hot / 10).max(1)
        };
        let reg = if i == points.len() - 1 {
            Arc::clone(registry)
        } else {
            Arc::new(Registry::disabled())
        };
        let cluster = build(Some(budget), &reg);
        let tier = cluster.tier().expect("tiered build always has a tier").clone();
        let tight = DistTrainer::new(&cluster, &features, spec.clone(), run_cfg.clone())
            .map_err(rt)?
            .with_registry(Arc::clone(&reg))
            .train()
            .map_err(rt)?;

        let peak = tier.peak_resident_bytes();
        let fp_oracle = fingerprint(&oracle);
        let fp_tight = fingerprint(&tight);
        writeln!(
            out,
            "  point {point:>6.2}: {} vertices / {} edges  all-hot {all_hot} B  budget \
             {budget} B  peak {peak} B  cold training reads {}  fingerprint {fp_tight:016x} ({})",
            graph.num_vertices(),
            graph.num_edges(),
            tight.report.adjacency.cold,
            if fp_tight == fp_oracle { "bit-exact vs all-hot" } else { "DIVERGED" },
        )
        .ok();

        if peak > budget {
            return Err(CliError::Runtime(format!(
                "budget burst at point {point:.2}: peak resident {peak} B > budget {budget} B\n{out}"
            )));
        }
        if fp_tight != fp_oracle {
            return Err(CliError::Runtime(format!(
                "tight-budget model diverged from the all-hot oracle at point {point:.2}\n{out}"
            )));
        }
        if oracle.report.adjacency.cold != 0 {
            return Err(CliError::Runtime(format!(
                "all-hot oracle read the cold tier at point {point:.2}\n{out}"
            )));
        }
        if budget < all_hot && tight.report.adjacency.cold == 0 {
            return Err(CliError::Runtime(format!(
                "vacuous point {point:.2}: budget {budget} B is below the all-hot footprint \
                 {all_hot} B yet training never read cold\n{out}"
            )));
        }
    }
    writeln!(
        out,
        "scale curve complete: every tight-budget run stayed within its byte cap and matched \
         the all-hot oracle bit-for-bit"
    )
    .ok();
    Ok(out)
}

/// `aligraph metrics-demo [--workers N] [--scale F] [--seed N]` — exercises
/// every instrumented layer against one registry (a short distributed
/// training run for `storage.*` / `sampling.*` / `runtime.*`, then a burst
/// of serving requests for `serving.*`) and prints the unified telemetry
/// table. Combine with `--metrics-json PATH` for the machine-readable form.
pub fn metrics_demo(
    args: &Args,
    registry: &std::sync::Arc<aligraph_telemetry::Registry>,
) -> Result<String, CliError> {
    use aligraph_graph::{Featurizer, VertexId};
    use aligraph_runtime::{DistTrainer, EncoderSpec, RuntimeConfig};
    use aligraph_sampling::WeightedNeighborhood;
    use aligraph_serving::{ServingConfig, ServingService};
    use aligraph_storage::{CacheStrategy, Cluster, CostModel};
    use aligraph_telemetry::Report;
    use std::sync::Arc;

    let common =
        CommonArgs::from_args(args, CommonDefaults { seed: 42, workers: 2, scale: 0.004 })?;
    let mut gen = TaobaoConfig::small_sim().scaled(common.scale);
    gen.seed = common.seed;
    let graph = Arc::new(gen.generate()?);

    // Storage + sampling + runtime: a short distributed-training run with an
    // LRU neighbor cache so cache events show up too.
    let dim = 8;
    let (cluster, _) = Cluster::builder(Arc::clone(&graph))
        .partitioner(&EdgeCutHash)
        .shards(common.workers)
        .cache(CacheStrategy::Lru { fraction: 0.1 })
        .max_hop(2)
        .cost_model(CostModel::default())
        .registry(registry)
        .build();
    let features = Featurizer::new(dim).matrix(&graph);
    let spec = EncoderSpec {
        dim_in: dim,
        dims: vec![dim, dim / 2],
        fanouts: vec![4, 2],
        lr: 0.05,
        seed: common.seed ^ 0x5eed,
    };
    let cfg = RuntimeConfig {
        workers: common.workers,
        epochs: 1,
        batches_per_epoch: 4,
        batch_size: 8,
        negatives: 2,
        staleness: 1,
        seed: common.seed,
        sparse_lr: 0.05,
        ..RuntimeConfig::default()
    };
    let rt = |e: aligraph_runtime::RuntimeError| CliError::Runtime(e.to_string());
    DistTrainer::new(&cluster, &features, spec, cfg)
        .map_err(rt)?
        .with_registry(Arc::clone(registry))
        .train()
        .map_err(rt)?;

    // Serving: a burst of embedding requests against the same graph.
    let service = ServingService::start_with_registry(
        Arc::clone(&graph),
        WeightedNeighborhood,
        ServingConfig { workers: common.workers, seed: common.seed, ..Default::default() },
        registry,
    );
    let n = graph.num_vertices() as u32;
    for i in 0..32u32 {
        service.embedding(VertexId(i % n)).map_err(|e| CliError::Runtime(e.to_string()))?;
    }
    service.shutdown();

    let snapshot = registry.snapshot();
    let mut out = String::new();
    writeln!(
        out,
        "metrics-demo: one registry across storage, sampling, runtime, and serving \
         ({} series; workers {}, scale {}, seed {})",
        snapshot.series.len(),
        common.workers,
        common.scale,
        common.seed,
    )
    .ok();
    writeln!(out, "{}", snapshot.render_text()).ok();
    Ok(out)
}

/// `aligraph closed-loop` — the end-to-end production loop: seeded traffic
/// served from streaming epoch views, logged to the bounded data hub,
/// compacted into graph updates, incrementally trained from checkpoint
/// warm-starts, and atomically hot-swapped into the serving model store.
/// Fails on a hot-swap atomicity violation or (with
/// `--slo-freshness-ticks N`) a freshness p99 beyond the SLO.
pub fn closed_loop(
    args: &Args,
    registry: &std::sync::Arc<aligraph_telemetry::Registry>,
) -> Result<String, CliError> {
    use aligraph_loopsim::{run_loop, LoopConfig, LoopError};
    use aligraph_streaming::IngestFaultConfig;
    use std::path::PathBuf;

    let common = CommonArgs::from_args(args, CommonDefaults { seed: 42, workers: 2, scale: 0.02 })?;
    let cycles: usize = args.num_or("cycles", 4usize)?.max(1);
    let users: usize = args.num_or("users", 8usize)?.max(1);
    let interactions: usize = args.num_or("interactions", 6usize)?.max(1);
    let dim: usize = args.num_or("dim", 16usize)?.max(2);
    let hub_capacity: usize = args.num_or("hub-capacity", 256usize)?.max(1);
    let drift_rate: f64 = args.num_or("drift-rate", 0.15f64)?;
    let batches: usize = args.num_or("batches", 6usize)?.max(1);
    let batch: usize = args.num_or("batch", 16usize)?.max(1);
    let staleness: u64 = args.num_or("staleness", 1u64)?;
    // 0 disables the gate.
    let slo_freshness: u64 = args.num_or("slo-freshness-ticks", 0u64)?;
    let checkpoint_dir = match args.get_or("checkpoint-dir", "") {
        "" => std::env::temp_dir().join(format!("aligraph-closed-loop-{}", std::process::id())),
        p => PathBuf::from(p),
    };

    let cfg = LoopConfig {
        cycles,
        users,
        interactions_per_user: interactions,
        seed: common.seed,
        scale: common.scale,
        dim,
        workers: common.workers.max(1),
        hub_capacity,
        drift_rate,
        batches_per_epoch: batches,
        batch_size: batch,
        staleness,
        checkpoint_dir,
        fault: common.fault_seed.map(|fault_seed| IngestFaultConfig {
            plan: aligraph_chaos::FaultPlan::with_seed(fault_seed, common.drop_rate),
            policy: aligraph_chaos::RetryPolicy::default(),
        }),
    };

    let outcome = run_loop(&cfg, registry).map_err(|e| match e {
        LoopError::Atomicity { version } => CliError::Runtime(format!(
            "hot-swap atomicity violated: pinned model version {version} failed verify"
        )),
        other => CliError::Runtime(other.to_string()),
    })?;

    let mut out = String::new();
    writeln!(
        out,
        "closed-loop: {cycles} cycles x {users} sessions x {interactions} interactions \
         (seed {}, {} workers, scale {})",
        common.seed,
        common.workers.max(1),
        common.scale,
    )
    .ok();
    writeln!(
        out,
        "final model: version {}  fingerprint {:016x}",
        outcome.final_version, outcome.fingerprint
    )
    .ok();
    writeln!(out, "{}", outcome.report).ok();
    if slo_freshness > 0 {
        let p99 = outcome.report.freshness_p99_ticks;
        if p99 > slo_freshness {
            return Err(CliError::Runtime(format!(
                "freshness SLO violated: p99 {p99} ticks > {slo_freshness} ticks\n{out}"
            )));
        }
        writeln!(out, "SLO: freshness p99 {p99} ticks <= {slo_freshness} ticks — OK").ok();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse(&s.iter().map(|x| x.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("aligraph-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn generate_stats_partition_roundtrip() {
        let path = tmp("toy.tsv");
        let msg =
            generate(&args(&["generate", "--kind", "taobao", "--scale", "0.002", "--out", &path]))
                .unwrap();
        assert!(msg.contains("wrote"));

        let s = stats(&args(&["stats", "--graph", &path])).unwrap();
        assert!(s.contains("vertices:"));
        assert!(s.contains("edge types:      4"));

        let p =
            partition(&args(&["partition", "--graph", &path, "--workers", "4", "--algo", "ldg"]))
                .unwrap();
        assert!(p.contains("streaming-ldg"), "{p}");
        assert!(p.contains("edge-cut"));
    }

    #[test]
    fn train_writes_embeddings_and_eval_reports() {
        let path = tmp("toy2.tsv");
        generate(&args(&["generate", "--kind", "amazon", "--scale", "0.02", "--out", &path]))
            .unwrap();
        let emb = tmp("emb.tsv");
        let msg = train(&args(&[
            "train", "--graph", &path, "--model", "deepwalk", "--dim", "16", "--out", &emb,
        ]))
        .unwrap();
        assert!(msg.contains("deepwalk"));
        let content = std::fs::read_to_string(&emb).unwrap();
        let first = content.lines().next().unwrap();
        assert_eq!(first.split('\t').count(), 17); // id + 16 dims

        let e =
            eval(&args(&["eval", "--graph", &path, "--model", "deepwalk", "--dim", "16"])).unwrap();
        assert!(e.contains("ROC-AUC"), "{e}");
    }

    fn registry() -> std::sync::Arc<aligraph_telemetry::Registry> {
        std::sync::Arc::new(aligraph_telemetry::Registry::new())
    }

    #[test]
    fn serve_bench_reports_latency_and_cache_evidence() {
        let out = serve_bench(
            &args(&[
                "serve-bench",
                "--requests",
                "400",
                "--clients",
                "2",
                "--workers",
                "2",
                "--scale",
                "0.003",
                "--delta-every-ms",
                "1",
            ]),
            &registry(),
        )
        .unwrap();
        assert!(out.contains("400 requests served"), "{out}");
        assert!(out.contains("p50"), "{out}");
        assert!(out.contains("req/s"), "{out}");
        assert!(out.contains("embedding cache: hit rate"), "{out}");
        assert!(out.contains("deltas applied"), "{out}");
        assert!(out.contains("0 failures"), "{out}");
    }

    #[test]
    fn serve_under_update_holds_the_slo_and_oracle() {
        let out = serve_under_update(
            &args(&[
                "serve-under-update",
                "--requests",
                "300",
                "--clients",
                "2",
                "--workers",
                "2",
                "--scale",
                "0.003",
                "--update-every-ms",
                "1",
                "--slo-p99-ms",
                "2000",
            ]),
            &registry(),
        )
        .unwrap();
        assert!(out.contains("serve-under-update: 300 requests"), "{out}");
        assert!(out.contains("epoch"), "{out}");
        assert!(out.contains("bit-exact vs full rebuild"), "{out}");
        assert!(out.contains("SLO: serve p99"), "{out}");
    }

    #[test]
    fn train_bench_reports_speedup_and_comm_tiers() {
        let reg = registry();
        let out = train_bench(
            &args(&[
                "train-bench",
                "--workers",
                "2",
                "--scale",
                "0.005",
                "--epochs",
                "1",
                "--batches",
                "4",
                "--batch",
                "8",
                "--staleness",
                "1",
                "--dim",
                "8",
            ]),
            &reg,
        )
        .unwrap();
        assert!(out.contains("train-bench: 2 workers"), "{out}");
        assert!(out.contains("staleness hist ["), "{out}");
        assert!(out.contains("ps comm: local"), "{out}");
        assert!(out.contains("modeled speedup vs 1 worker:"), "{out}");
        // One registry carries storage, sampling, and runtime series at once.
        let snap = reg.snapshot();
        assert!(snap.has_prefix("storage."), "storage series missing");
        assert!(snap.has_prefix("sampling."), "sampling series missing");
        assert!(snap.has_prefix("runtime.ps."), "runtime series missing");
        assert!(snap.histogram("runtime.staleness", &[]).count > 0);
    }

    #[test]
    fn tiered_bench_holds_budget_and_matches_oracle() {
        let reg = registry();
        let out = tiered_bench(
            &args(&[
                "tiered-bench",
                "--scale",
                "1",
                "--workers",
                "2",
                "--epochs",
                "1",
                "--batches",
                "3",
                "--batch",
                "8",
                "--dim",
                "8",
            ]),
            &reg,
        )
        .unwrap();
        assert!(out.contains("tiered-bench: scale curve"), "{out}");
        assert_eq!(out.matches("bit-exact vs all-hot").count(), 3, "{out}");
        assert!(out.contains("scale curve complete"), "{out}");
        // The largest point's tight run published cold-tier series.
        let snap = reg.snapshot();
        assert!(snap.has_prefix("tier."), "tier series missing");
        assert!(snap.gauge("tier.resident_bytes", &[]) > 0);
        assert!(
            snap.counter("tier.reads", &[("src", "cold")])
                + snap.counter("tier.reads", &[("src", "prefetch")])
                > 0,
            "no cold-tier reads recorded"
        );
    }

    #[test]
    fn metrics_demo_prints_all_four_layers() {
        let reg = registry();
        let out = metrics_demo(&args(&["metrics-demo", "--workers", "2"]), &reg).unwrap();
        for prefix in ["storage.access", "sampling.draws", "runtime.ps.ops", "serving.requests"] {
            assert!(out.contains(prefix), "table missing {prefix}:\n{out}");
        }
        assert!(reg.snapshot().counter("serving.completed", &[]) >= 32);
    }

    #[test]
    fn unknown_options_error_cleanly() {
        let path = tmp("toy3.tsv");
        generate(&args(&["generate", "--kind", "ba", "--scale", "0.002", "--out", &path])).unwrap();
        assert!(matches!(
            partition(&args(&["partition", "--graph", &path, "--algo", "nope"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            train(&args(&["train", "--graph", &path, "--model", "nope", "--out", "x"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            load(&args(&["stats", "--graph", "/definitely/missing"])),
            Err(CliError::Runtime(_))
        ));
    }
}
