//! Binary and multi-class classification metrics.

/// Area under the ROC curve via the rank statistic (Mann–Whitney U),
/// with average ranks for tied scores. Returns 0.5 when either class is
/// absent (no ranking information).
pub fn roc_auc(scored: &[(f32, bool)]) -> f64 {
    let pos = scored.iter().filter(|&&(_, l)| l).count();
    let neg = scored.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    let mut sorted: Vec<&(f32, bool)> = scored.iter().collect();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    // Average ranks over tie groups.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1].0 == sorted[i].0 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0; // ranks are 1-based
        for item in &sorted[i..=j] {
            if item.1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (pos as f64) * (pos as f64 + 1.0) / 2.0;
    u / (pos as f64 * neg as f64)
}

/// Area under the precision–recall curve, computed as average precision
/// (AP): `Σ_k P(k) · ΔR(k)` over descending-score prefixes.
pub fn pr_auc(scored: &[(f32, bool)]) -> f64 {
    let pos = scored.iter().filter(|&&(_, l)| l).count();
    if pos == 0 {
        return 0.0;
    }
    let mut sorted: Vec<&(f32, bool)> = scored.iter().collect();
    sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut tp = 0usize;
    let mut ap = 0.0f64;
    for (k, &&(_, label)) in sorted.iter().enumerate() {
        if label {
            tp += 1;
            ap += tp as f64 / (k + 1) as f64;
        }
    }
    ap / pos as f64
}

/// Best F1 over all score thresholds (the standard protocol when a paper
/// reports a single F1 for a scoring model).
pub fn best_f1(scored: &[(f32, bool)]) -> f64 {
    let pos = scored.iter().filter(|&&(_, l)| l).count();
    if pos == 0 || scored.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<&(f32, bool)> = scored.iter().collect();
    sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut tp = 0usize;
    let mut best = 0.0f64;
    for (k, &&(_, label)) in sorted.iter().enumerate() {
        if label {
            tp += 1;
        }
        // Threshold just below sorted[k]: predictions = k+1 positives.
        let precision = tp as f64 / (k + 1) as f64;
        let recall = tp as f64 / pos as f64;
        if precision + recall > 0.0 {
            let f1 = 2.0 * precision * recall / (precision + recall);
            if f1 > best {
                best = f1;
            }
        }
    }
    best
}

/// Micro-averaged F1 for single-label multi-class predictions (equals
/// accuracy in this setting, reported separately because the paper does).
pub fn micro_f1(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    if pred.is_empty() {
        return 0.0;
    }
    let correct = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    correct as f64 / pred.len() as f64
}

/// Macro-averaged F1: unweighted mean of per-class F1 over classes present
/// in the ground truth.
pub fn macro_f1(pred: &[usize], truth: &[usize], num_classes: usize) -> f64 {
    assert_eq!(pred.len(), truth.len());
    if pred.is_empty() || num_classes == 0 {
        return 0.0;
    }
    let mut tp = vec![0usize; num_classes];
    let mut fp = vec![0usize; num_classes];
    let mut fne = vec![0usize; num_classes];
    for (&p, &t) in pred.iter().zip(truth) {
        if p == t {
            tp[t] += 1;
        } else {
            fp[p] += 1;
            fne[t] += 1;
        }
    }
    let mut sum = 0.0;
    let mut present = 0usize;
    for c in 0..num_classes {
        if tp[c] + fne[c] == 0 {
            continue; // class absent from ground truth
        }
        present += 1;
        let denom = 2 * tp[c] + fp[c] + fne[c];
        if denom > 0 {
            sum += 2.0 * tp[c] as f64 / denom as f64;
        }
    }
    if present == 0 {
        0.0
    } else {
        sum / present as f64
    }
}

/// Hit recall rate at `k`: fraction of test users whose held-out item
/// appears in their top-`k` recommendations.
pub fn hit_rate_at_k<T: PartialEq>(recommendations: &[Vec<T>], truth: &[T], k: usize) -> f64 {
    assert_eq!(recommendations.len(), truth.len());
    if recommendations.is_empty() {
        return 0.0;
    }
    let hits = recommendations
        .iter()
        .zip(truth)
        .filter(|(recs, t)| recs.iter().take(k).any(|r| r == *t))
        .count();
    hits as f64 / recommendations.len() as f64
}

/// The binary link-prediction metric bundle the paper reports.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkMetrics {
    /// Area under the ROC curve.
    pub roc_auc: f64,
    /// Area under the PR curve (average precision).
    pub pr_auc: f64,
    /// Best-threshold F1.
    pub f1: f64,
}

impl LinkMetrics {
    /// Computes all three from scored pairs.
    pub fn from_scored(scored: &[(f32, bool)]) -> Self {
        LinkMetrics { roc_auc: roc_auc(scored), pr_auc: pr_auc(scored), f1: best_f1(scored) }
    }

    /// Unweighted mean over per-edge-type metrics ("each metric is averaged
    /// among different types of edges").
    pub fn average(parts: &[LinkMetrics]) -> Self {
        if parts.is_empty() {
            return LinkMetrics::default();
        }
        let n = parts.len() as f64;
        LinkMetrics {
            roc_auc: parts.iter().map(|m| m.roc_auc).sum::<f64>() / n,
            pr_auc: parts.iter().map(|m| m.pr_auc).sum::<f64>() / n,
            f1: parts.iter().map(|m| m.f1).sum::<f64>() / n,
        }
    }
}

impl std::fmt::Display for LinkMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ROC-AUC {:.2}%  PR-AUC {:.2}%  F1 {:.2}%",
            self.roc_auc * 100.0,
            self.pr_auc * 100.0,
            self.f1 * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roc_auc_perfect_and_inverted() {
        let perfect = [(0.9, true), (0.8, true), (0.2, false), (0.1, false)];
        assert!((roc_auc(&perfect) - 1.0).abs() < 1e-9);
        let inverted = [(0.1, true), (0.2, true), (0.8, false), (0.9, false)];
        assert!((roc_auc(&inverted) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn roc_auc_random_is_half() {
        // All scores tied: AUC must be exactly 0.5 via average ranks.
        let tied = [(0.5, true), (0.5, false), (0.5, true), (0.5, false)];
        assert!((roc_auc(&tied) - 0.5).abs() < 1e-9);
        // Degenerate single-class input.
        assert_eq!(roc_auc(&[(0.5, true)]), 0.5);
        assert_eq!(roc_auc(&[]), 0.5);
    }

    #[test]
    fn roc_auc_known_value() {
        // pos scores {0.8, 0.4}, neg {0.6, 0.2}: pairs won = 3/4.
        let s = [(0.8, true), (0.4, true), (0.6, false), (0.2, false)];
        assert!((roc_auc(&s) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn pr_auc_values() {
        let perfect = [(0.9, true), (0.1, false)];
        assert!((pr_auc(&perfect) - 1.0).abs() < 1e-9);
        // One positive ranked second: AP = 1/2.
        let s = [(0.9, false), (0.8, true)];
        assert!((pr_auc(&s) - 0.5).abs() < 1e-9);
        assert_eq!(pr_auc(&[(0.5, false)]), 0.0);
    }

    #[test]
    fn best_f1_perfect_separation() {
        let s = [(0.9, true), (0.8, true), (0.2, false)];
        assert!((best_f1(&s) - 1.0).abs() < 1e-9);
        assert_eq!(best_f1(&[]), 0.0);
    }

    #[test]
    fn micro_macro_f1() {
        let pred = [0, 1, 1, 2];
        let truth = [0, 1, 2, 2];
        assert!((micro_f1(&pred, &truth) - 0.75).abs() < 1e-9);
        // Per-class F1: c0 = 1.0, c1 = 2/3 (tp1 fp1 fn0), c2 = 2/3 (tp1 fp0 fn1).
        let expected = (1.0 + 2.0 / 3.0 + 2.0 / 3.0) / 3.0;
        assert!((macro_f1(&pred, &truth, 3) - expected).abs() < 1e-9);
    }

    #[test]
    fn macro_f1_ignores_absent_classes() {
        let pred = [0, 0];
        let truth = [0, 0];
        assert!((macro_f1(&pred, &truth, 5) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hit_rate() {
        let recs = vec![vec![1, 2, 3], vec![4, 5, 6]];
        let truth = vec![2, 9];
        assert!((hit_rate_at_k(&recs, &truth, 3) - 0.5).abs() < 1e-9);
        assert!((hit_rate_at_k(&recs, &truth, 1) - 0.0).abs() < 1e-9);
        let empty: Vec<Vec<i32>> = vec![];
        assert_eq!(hit_rate_at_k(&empty, &[], 5), 0.0);
    }

    #[test]
    fn bundle_and_average() {
        let s = [(0.9, true), (0.1, false)];
        let m = LinkMetrics::from_scored(&s);
        assert!(m.roc_auc > 0.99 && m.pr_auc > 0.99 && m.f1 > 0.99);
        let avg = LinkMetrics::average(&[m, LinkMetrics::default()]);
        assert!((avg.roc_auc - m.roc_auc / 2.0).abs() < 1e-9);
        assert!(m.to_string().contains("ROC-AUC"));
    }
}
