//! # aligraph-eval
//!
//! The evaluation harness of the AliGraph reproduction (paper §5.2.1):
//! link-prediction train/test splits and the four metrics the paper reports
//! — ROC-AUC, PR-AUC, F1-score, and hit recall rate (HR@k) — plus
//! micro/macro F1 for the multi-class dynamic-graph experiment (Table 11).
//! "Each metric is averaged among different types of edges."

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod metrics;
pub mod split;

pub use metrics::{best_f1, hit_rate_at_k, macro_f1, micro_f1, pr_auc, roc_auc, LinkMetrics};
pub use split::{link_prediction_split, HeldOutEdge, LinkSplit};
