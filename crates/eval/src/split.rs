//! Link-prediction train/test splits (paper §5.2.1: "we randomly extract a
//! portion of the data as the training data and reserve the remaining part
//! as test data").

use aligraph_graph::{AttrVector, AttributedHeterogeneousGraph, EdgeType, GraphBuilder, VertexId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// One held-out (test) edge, positive or sampled-negative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeldOutEdge {
    /// Source endpoint.
    pub src: VertexId,
    /// Destination endpoint.
    pub dst: VertexId,
    /// Edge type.
    pub etype: EdgeType,
}

/// A link-prediction split: a training graph with the held-out edges
/// removed, plus balanced positive/negative test sets per edge type.
#[derive(Debug)]
pub struct LinkSplit {
    /// The training graph (test positives removed).
    pub train: AttributedHeterogeneousGraph,
    /// Held-out true edges.
    pub test_pos: Vec<HeldOutEdge>,
    /// Sampled non-edges matched by source vertex and edge type.
    pub test_neg: Vec<HeldOutEdge>,
}

impl LinkSplit {
    /// Edge types present in the test set, ascending.
    pub fn test_edge_types(&self) -> Vec<EdgeType> {
        let mut types: Vec<EdgeType> = self.test_pos.iter().map(|e| e.etype).collect();
        types.sort_unstable();
        types.dedup();
        types
    }

    /// Test positives/negatives of one edge type.
    pub fn of_type(&self, t: EdgeType) -> (Vec<HeldOutEdge>, Vec<HeldOutEdge>) {
        (
            self.test_pos.iter().filter(|e| e.etype == t).copied().collect(),
            self.test_neg.iter().filter(|e| e.etype == t).copied().collect(),
        )
    }
}

/// Splits `graph` for link prediction: `test_fraction` of the edges are held
/// out as positives, and for each one a negative is sampled with the same
/// source and edge type but a destination that is not a true neighbor.
pub fn link_prediction_split(
    graph: &AttributedHeterogeneousGraph,
    test_fraction: f64,
    seed: u64,
) -> LinkSplit {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = graph.num_edge_records();
    let test_count = ((m as f64) * test_fraction.clamp(0.0, 1.0)) as usize;

    // Choose held-out record indices.
    let mut idx: Vec<usize> = (0..m).collect();
    idx.shuffle(&mut rng);
    let held: std::collections::HashSet<usize> = idx.into_iter().take(test_count).collect();

    // Rebuild the training graph without the held-out records, preserving
    // vertex ids, types, and attributes.
    let mut b = GraphBuilder::directed().with_capacity(graph.num_vertices(), m - held.len());
    for v in graph.vertices() {
        b.add_vertex(graph.vertex_type(v), graph.vertex_attrs(v).clone());
    }
    let mut test_pos = Vec::with_capacity(held.len());
    for v in graph.vertices() {
        for nbr in graph.out_neighbors(v) {
            if held.contains(&nbr.edge.index()) {
                test_pos.push(HeldOutEdge { src: v, dst: nbr.vertex, etype: nbr.etype });
            } else {
                b.add_edge_with_attrs(
                    v,
                    nbr.vertex,
                    nbr.etype,
                    nbr.weight,
                    graph
                        .edge_attr_index()
                        .get(nbr.attr)
                        .cloned()
                        .unwrap_or_else(AttrVector::empty),
                )
                // invariant: edges are copied from an existing graph, so
                // endpoints and types are in range
                .expect("edges of an existing graph are valid");
            }
        }
    }
    let train = b.build();

    // Negatives: same src + etype, destination of the same vertex type as
    // the true destination, not a true neighbor in the *full* graph.
    let mut test_neg = Vec::with_capacity(test_pos.len());
    for pos in &test_pos {
        let dst_type = graph.vertex_type(pos.dst);
        let roster = graph.vertices_of_type(dst_type);
        let mut chosen = None;
        for _ in 0..32 {
            let cand = roster[rng.gen_range(0..roster.len())];
            if cand == pos.src {
                continue;
            }
            let is_edge =
                graph.out_neighbors_typed(pos.src, pos.etype).iter().any(|n| n.vertex == cand);
            if !is_edge {
                chosen = Some(cand);
                break;
            }
        }
        if let Some(dst) = chosen {
            test_neg.push(HeldOutEdge { src: pos.src, dst, etype: pos.etype });
        }
    }

    LinkSplit { train, test_pos, test_neg }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aligraph_graph::generate::TaobaoConfig;

    #[test]
    fn split_sizes_and_graph_integrity() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let split = link_prediction_split(&g, 0.2, 1);
        let expected = (g.num_edge_records() as f64 * 0.2) as usize;
        assert_eq!(split.test_pos.len(), expected);
        assert_eq!(split.train.num_edge_records() + split.test_pos.len(), g.num_edge_records());
        assert_eq!(split.train.num_vertices(), g.num_vertices());
        // Vertex metadata preserved.
        for v in g.vertices() {
            assert_eq!(g.vertex_type(v), split.train.vertex_type(v));
        }
    }

    #[test]
    fn negatives_are_not_true_edges() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let split = link_prediction_split(&g, 0.1, 2);
        assert!(!split.test_neg.is_empty());
        for neg in &split.test_neg {
            let is_edge =
                g.out_neighbors_typed(neg.src, neg.etype).iter().any(|n| n.vertex == neg.dst);
            assert!(!is_edge, "{neg:?} is a true edge");
            // Negative preserves destination vertex type semantics.
            assert_eq!(
                g.vertex_type(neg.dst),
                g.vertex_type(
                    split
                        .test_pos
                        .iter()
                        .find(|p| p.src == neg.src && p.etype == neg.etype)
                        .expect("negative pairs with a positive")
                        .dst
                )
            );
        }
    }

    #[test]
    fn held_out_edges_absent_from_train() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let split = link_prediction_split(&g, 0.3, 3);
        // Count multiplicity: a (src,dst,etype) may appear multiple times in
        // the multigraph, so compare counts rather than membership.
        let count = |g: &AttributedHeterogeneousGraph, e: &HeldOutEdge| {
            g.out_neighbors_typed(e.src, e.etype).iter().filter(|n| n.vertex == e.dst).count()
        };
        for pos in split.test_pos.iter().take(50) {
            assert!(count(&split.train, pos) < count(&g, pos));
        }
    }

    #[test]
    fn deterministic() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let a = link_prediction_split(&g, 0.2, 7);
        let b = link_prediction_split(&g, 0.2, 7);
        assert_eq!(a.test_pos, b.test_pos);
        assert_eq!(a.test_neg, b.test_neg);
    }

    #[test]
    fn per_type_views() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let split = link_prediction_split(&g, 0.2, 4);
        let types = split.test_edge_types();
        assert!(!types.is_empty());
        let mut total = 0;
        for t in types {
            let (pos, neg) = split.of_type(t);
            assert!(pos.iter().all(|e| e.etype == t));
            assert!(neg.iter().all(|e| e.etype == t));
            total += pos.len();
        }
        assert_eq!(total, split.test_pos.len());
    }
}
