//! The intermediate-embedding materialization cache (paper §3.4, Table 5).
//!
//! Within one mini-batch, the sampled neighborhoods of different target
//! vertices overlap heavily, and so do the hop-`k` embeddings `h^(k)_v`
//! computed along the way. The paper stores the newest vectors
//! `ĥ^(1)_v .. ĥ^(kmax)_v` for all vertices touched by the mini-batch and
//! reuses them across AGGREGATE/COMBINE invocations, cutting operator time
//! by an order of magnitude (Table 5 reports 12.9–13.7×).
//!
//! [`MaterializationCache`] implements exactly that: per-hop maps from
//! vertex to its newest embedding, with a kill switch reproducing the
//! "W/O our implementation" baseline.

use aligraph_graph::VertexId;
use std::collections::HashMap;

/// Per-mini-batch cache of hop-level embeddings.
#[derive(Debug, Clone)]
pub struct MaterializationCache {
    enabled: bool,
    levels: Vec<HashMap<u32, Vec<f32>>>,
    hits: u64,
    misses: u64,
}

impl MaterializationCache {
    /// An enabled cache for hops `1..=kmax`.
    pub fn new(kmax: usize) -> Self {
        MaterializationCache {
            enabled: true,
            levels: vec![HashMap::new(); kmax],
            hits: 0,
            misses: 0,
        }
    }

    /// A disabled cache (every lookup recomputes) — the ablation baseline.
    pub fn disabled(kmax: usize) -> Self {
        let mut c = Self::new(kmax);
        c.enabled = false;
        c
    }

    /// Whether caching is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Returns the hop-`k` embedding of `v`, computing it with `compute` on
    /// a miss (or always, when disabled). `k` is 1-based.
    pub fn get_or_compute(
        &mut self,
        k: usize,
        v: VertexId,
        compute: impl FnOnce() -> Vec<f32>,
    ) -> Vec<f32> {
        if !self.enabled {
            self.misses += 1;
            return compute();
        }
        let level = &mut self.levels[k - 1];
        if let Some(hit) = level.get(&v.0) {
            self.hits += 1;
            return hit.clone();
        }
        self.misses += 1;
        let value = compute();
        level.insert(v.0, value.clone());
        value
    }

    /// Overwrites the stored hop-`k` embedding of `v` with a newer value
    /// ("the stored vector ĥ^(k) is updated by ĥ^(k)_v").
    pub fn update(&mut self, k: usize, v: VertexId, value: Vec<f32>) {
        if self.enabled {
            self.levels[k - 1].insert(v.0, value);
        }
    }

    /// Reads without computing.
    pub fn peek(&self, k: usize, v: VertexId) -> Option<&[f32]> {
        self.levels[k - 1].get(&v.0).map(Vec::as_slice)
    }

    /// Clears all levels — called between mini-batches, because the cache
    /// shares vectors only *within* a batch.
    pub fn clear(&mut self) {
        for level in &mut self.levels {
            level.clear();
        }
    }

    /// `(hits, misses)` since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit rate since creation.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// Entries currently stored across all hops.
    pub fn len(&self) -> usize {
        self.levels.iter().map(HashMap::len).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_within_batch() {
        let mut c = MaterializationCache::new(2);
        let mut computes = 0;
        for _ in 0..5 {
            let v = c.get_or_compute(1, VertexId(7), || {
                computes += 1;
                vec![1.0, 2.0]
            });
            assert_eq!(v, vec![1.0, 2.0]);
        }
        assert_eq!(computes, 1);
        assert_eq!(c.stats(), (4, 1));
        assert!(c.hit_rate() > 0.7);
    }

    #[test]
    fn disabled_always_recomputes() {
        let mut c = MaterializationCache::disabled(2);
        let mut computes = 0;
        for _ in 0..5 {
            c.get_or_compute(1, VertexId(7), || {
                computes += 1;
                vec![0.0]
            });
        }
        assert_eq!(computes, 5);
        assert!(!c.is_enabled());
        assert!(c.is_empty());
    }

    #[test]
    fn levels_are_independent() {
        let mut c = MaterializationCache::new(2);
        c.get_or_compute(1, VertexId(1), || vec![1.0]);
        // Same vertex at hop 2 is a different entry.
        let mut computed = false;
        c.get_or_compute(2, VertexId(1), || {
            computed = true;
            vec![2.0]
        });
        assert!(computed);
        assert_eq!(c.peek(1, VertexId(1)), Some(&[1.0f32][..]));
        assert_eq!(c.peek(2, VertexId(1)), Some(&[2.0f32][..]));
    }

    #[test]
    fn update_overwrites() {
        let mut c = MaterializationCache::new(1);
        c.get_or_compute(1, VertexId(0), || vec![1.0]);
        c.update(1, VertexId(0), vec![9.0]);
        let v = c.get_or_compute(1, VertexId(0), || unreachable!("must hit"));
        assert_eq!(v, vec![9.0]);
    }

    #[test]
    fn clear_between_batches() {
        let mut c = MaterializationCache::new(1);
        c.get_or_compute(1, VertexId(0), || vec![1.0]);
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
        let mut computed = false;
        c.get_or_compute(1, VertexId(0), || {
            computed = true;
            vec![1.0]
        });
        assert!(computed);
    }

    #[test]
    fn empty_hit_rate_is_zero() {
        let c = MaterializationCache::new(1);
        assert_eq!(c.hit_rate(), 0.0);
    }
}
