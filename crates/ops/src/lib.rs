//! # aligraph-ops
//!
//! The operator layer of the AliGraph reproduction (paper §3.4). Two GNN
//! operator families are abstracted, both with forward *and* backward
//! computation so an end-to-end network can be assembled (the paper: "both
//! samplers and GNN-like operators not only do computations forward, but
//! also take charge of parameters updating backward"):
//!
//! * [`aggregate::Aggregator`] — **AGGREGATE** collapses a set of neighbor
//!   embeddings into one vector: element-wise mean, sum, max-pooling,
//!   weighted mean, self-attention, plus the neural variants the paper
//!   names in [`recurrent`] — an LSTM aggregator and the max-pooling
//!   neural network;
//! * [`combine::Combiner`] — **COMBINE** merges a vertex's previous-hop
//!   embedding with the aggregated neighborhood (GraphSAGE concatenation,
//!   GCN-style sum) through a trainable dense layer;
//! * [`layer::DenseLayer`] — the shared trainable building block;
//! * [`cache::MaterializationCache`] — the §3.4 optimization behind Table 5:
//!   intermediate hop embeddings `ĥ^(k)_v` are stored per mini-batch and
//!   shared among vertices, eliminating redundant recomputation. The cache
//!   can be disabled to reproduce the "W/O our implementation" column.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod aggregate;
pub mod cache;
pub mod combine;
pub mod layer;
pub mod recurrent;

pub use aggregate::{
    Aggregator, AttentionAggregator, MaxPoolAggregator, MeanAggregator, SumAggregator,
    WeightedMeanAggregator,
};
pub use cache::MaterializationCache;
pub use combine::{Combiner, ConcatCombiner, GcnCombiner};
pub use layer::{Activation, DenseLayer};
pub use recurrent::{LstmAggregator, PoolNnAggregator};
