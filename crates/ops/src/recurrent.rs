//! The neural AGGREGATE variants the paper names beyond element-wise mean
//! (§3.4: "a variety of aggregating methods are applied, such as
//! element-wise mean, max-pooling neural network and long short-term memory
//! (LSTMs)"):
//!
//! * [`LstmAggregator`] — runs an LSTM over the (randomly ordered) sampled
//!   neighbor sequence and aggregates with the final hidden state, as in
//!   GraphSAGE-LSTM;
//! * [`PoolNnAggregator`] — the "max-pooling neural network": each neighbor
//!   embedding passes through a shared dense layer before element-wise max.
//!
//! Backward passes use the straight-through convention for the recurrent
//! gates (gate activations treated as constants), which keeps the sampled-
//! neighborhood training loop single-pass; the pooling network trains its
//! dense layer exactly.

use crate::aggregate::Aggregator;
use crate::layer::{Activation, DenseLayer};
use aligraph_tensor::init::{seeded_rng, xavier_uniform};
use aligraph_tensor::{sigmoid, Matrix};
use parking_lot::Mutex;

/// An LSTM cell over neighbor embeddings; the aggregate is the final hidden
/// state. Weights are fixed at construction (a randomly initialized LSTM is
/// already a strong sequence summarizer for aggregation — the trainable
/// parameters of the GNN remain in COMBINE), matching the common
/// reservoir-style simplification for sampled neighborhoods.
#[derive(Debug)]
pub struct LstmAggregator {
    /// `[W_i W_f W_o W_g]` stacked: each `(2d) x d` (input ++ hidden).
    w: Matrix,
    dim: usize,
}

impl LstmAggregator {
    /// An LSTM aggregator over `dim`-dimensional embeddings.
    pub fn new(dim: usize, seed: u64) -> Self {
        let mut rng = seeded_rng(seed);
        LstmAggregator { w: xavier_uniform(2 * dim, 4 * dim, &mut rng), dim }
    }

    fn step(&self, x: &[f32], h: &mut [f32], c: &mut [f32]) {
        let d = self.dim;
        // gates = [x ; h] @ W, laid out as [i f o g].
        let mut gates = vec![0.0f32; 4 * d];
        for (r, &xv) in x.iter().chain(h.iter()).enumerate() {
            if xv == 0.0 {
                continue;
            }
            for (gidx, g) in gates.iter_mut().enumerate() {
                *g += xv * self.w.get(r, gidx);
            }
        }
        for j in 0..d {
            let i = sigmoid(gates[j]);
            let f = sigmoid(gates[d + j]);
            let o = sigmoid(gates[2 * d + j]);
            let g = gates[3 * d + j].tanh();
            c[j] = f * c[j] + i * g;
            h[j] = o * c[j].tanh();
        }
    }
}

impl Aggregator for LstmAggregator {
    fn forward(&self, _target: &[f32], neighbors: &[&[f32]], out: &mut [f32]) {
        out.fill(0.0);
        if neighbors.is_empty() {
            return;
        }
        debug_assert_eq!(out.len(), self.dim);
        let mut h = vec![0.0f32; self.dim];
        let mut c = vec![0.0f32; self.dim];
        for nbr in neighbors {
            self.step(nbr, &mut h, &mut c);
        }
        out.copy_from_slice(&h);
    }

    fn backward(
        &self,
        _target: &[f32],
        neighbors: &[&[f32]],
        grad_out: &[f32],
        grad_neighbors: &mut [Vec<f32>],
    ) {
        // Straight-through: distribute the output gradient uniformly over
        // the sequence (gates as constants). Later neighbors dominate the
        // final state, but the uniform route keeps every sampled neighbor's
        // subtree learning.
        if neighbors.is_empty() {
            return;
        }
        let inv = 1.0 / neighbors.len() as f32;
        for g in grad_neighbors.iter_mut() {
            for (gn, &go) in g.iter_mut().zip(grad_out) {
                *gn = go * inv;
            }
        }
    }

    fn name(&self) -> &'static str {
        "lstm"
    }
}

/// The "max-pooling neural network": `max_u act(W h_u + b)` with a shared,
/// trainable dense layer ahead of the pool.
#[derive(Debug)]
pub struct PoolNnAggregator {
    layer: Mutex<DenseLayer>,
    dim: usize,
}

impl PoolNnAggregator {
    /// A pooling network `dim -> dim` with ReLU.
    pub fn new(dim: usize, lr: f32, seed: u64) -> Self {
        PoolNnAggregator {
            layer: Mutex::new(DenseLayer::new(dim, dim, Activation::Relu, lr, seed)),
            dim,
        }
    }

    /// Applies accumulated dense-layer gradients.
    pub fn step(&self, batch: usize) {
        self.layer.lock().step(batch);
    }

    fn transformed(&self, neighbors: &[&[f32]]) -> Matrix {
        let mut x = Matrix::zeros(neighbors.len(), self.dim);
        for (i, nbr) in neighbors.iter().enumerate() {
            x.row_mut(i).copy_from_slice(nbr);
        }
        self.layer.lock().forward(&x)
    }
}

impl Aggregator for PoolNnAggregator {
    fn forward(&self, _target: &[f32], neighbors: &[&[f32]], out: &mut [f32]) {
        out.fill(0.0);
        if neighbors.is_empty() {
            return;
        }
        let t = self.transformed(neighbors);
        out.copy_from_slice(t.row(0));
        for i in 1..t.rows {
            for (o, &x) in out.iter_mut().zip(t.row(i)) {
                if x > *o {
                    *o = x;
                }
            }
        }
    }

    fn backward(
        &self,
        _target: &[f32],
        neighbors: &[&[f32]],
        grad_out: &[f32],
        grad_neighbors: &mut [Vec<f32>],
    ) {
        if neighbors.is_empty() {
            return;
        }
        // Route each component's gradient to the argmax neighbor, through
        // the dense layer (accumulating the layer's own gradients).
        let t = self.transformed(neighbors);
        let mut grad_t = Matrix::zeros(t.rows, t.cols);
        for (j, &go) in grad_out.iter().enumerate() {
            let mut best = 0usize;
            let mut best_val = t.get(0, j);
            for i in 1..t.rows {
                if t.get(i, j) > best_val {
                    best_val = t.get(i, j);
                    best = i;
                }
            }
            grad_t.set(best, j, go);
        }
        let mut x = Matrix::zeros(neighbors.len(), self.dim);
        for (i, nbr) in neighbors.iter().enumerate() {
            x.row_mut(i).copy_from_slice(nbr);
        }
        let dx = self.layer.lock().backward(&x, &t, &grad_t);
        for (i, g) in grad_neighbors.iter_mut().enumerate().take(dx.rows) {
            g.copy_from_slice(dx.row(i));
        }
    }

    fn name(&self) -> &'static str {
        "max-pool-nn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lstm_summarizes_sequences() {
        let agg = LstmAggregator::new(4, 1);
        let n1 = [1.0f32, 0.0, 0.0, 0.0];
        let n2 = [0.0f32, 1.0, 0.0, 0.0];
        let mut out_a = vec![0.0; 4];
        let mut out_b = vec![0.0; 4];
        agg.forward(&[0.0; 4], &[&n1, &n2], &mut out_a);
        agg.forward(&[0.0; 4], &[&n2, &n1], &mut out_b);
        // Sequence-sensitive (unlike mean), bounded by tanh·sigmoid.
        assert_ne!(out_a, out_b);
        assert!(out_a.iter().all(|x| x.abs() <= 1.0));
        // Deterministic for a fixed seed.
        let again = LstmAggregator::new(4, 1);
        let mut out_c = vec![0.0; 4];
        again.forward(&[0.0; 4], &[&n1, &n2], &mut out_c);
        assert_eq!(out_a, out_c);
    }

    #[test]
    fn lstm_empty_neighborhood_is_zero() {
        let agg = LstmAggregator::new(4, 2);
        let mut out = vec![9.0; 4];
        agg.forward(&[0.0; 4], &[], &mut out);
        assert_eq!(out, vec![0.0; 4]);
        let mut grads: Vec<Vec<f32>> = vec![];
        agg.backward(&[0.0; 4], &[], &[1.0; 4], &mut grads);
    }

    #[test]
    fn lstm_backward_distributes() {
        let agg = LstmAggregator::new(2, 3);
        let n1 = [1.0f32, 2.0];
        let n2 = [3.0f32, 4.0];
        let mut grads = vec![vec![0.0; 2]; 2];
        agg.backward(&[0.0; 2], &[&n1, &n2], &[1.0, 2.0], &mut grads);
        assert_eq!(grads[0], vec![0.5, 1.0]);
        assert_eq!(grads[1], vec![0.5, 1.0]);
    }

    #[test]
    fn pool_nn_forward_is_componentwise_max_of_transforms() {
        let agg = PoolNnAggregator::new(3, 0.01, 4);
        let n1 = [1.0f32, 0.0, 0.0];
        let n2 = [0.0f32, 1.0, 0.0];
        let mut out = vec![0.0; 3];
        agg.forward(&[0.0; 3], &[&n1, &n2], &mut out);
        // max of two ReLU outputs is >= each individually.
        let mut o1 = vec![0.0; 3];
        agg.forward(&[0.0; 3], &[&n1], &mut o1);
        for (m, s) in out.iter().zip(&o1) {
            assert!(m >= s);
        }
        assert!(out.iter().all(|&x| x >= 0.0), "ReLU output");
    }

    #[test]
    fn pool_nn_backward_trains_the_layer() {
        // Pick a seed whose ReLU output is alive for this input (a dead
        // ReLU has no gradient to train with).
        let n1 = [1.0f32, 1.0];
        let (agg, before) = (0..20u64)
            .map(|seed| {
                let agg = PoolNnAggregator::new(2, 0.05, seed);
                let mut out = vec![0.0; 2];
                agg.forward(&[0.0; 2], &[&n1], &mut out);
                (agg, out)
            })
            .find(|(_, out)| out.iter().any(|&x| x > 0.0))
            .expect("some seed activates");
        // Push the pooled output toward zero for a few steps.
        for _ in 0..50 {
            let mut cur = vec![0.0; 2];
            agg.forward(&[0.0; 2], &[&n1], &mut cur);
            let mut grads = vec![vec![0.0; 2]];
            agg.backward(&[0.0; 2], &[&n1], &cur, &mut grads);
            agg.step(1);
        }
        let mut after = vec![0.0; 2];
        agg.forward(&[0.0; 2], &[&n1], &mut after);
        let norm = |v: &[f32]| v.iter().map(|x| x * x).sum::<f32>();
        assert!(norm(&after) < norm(&before), "{before:?} -> {after:?}");
    }
}
