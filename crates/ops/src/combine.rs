//! COMBINE operators (paper §3.4): merge a vertex's previous-hop embedding
//! `h_v^(k-1)` with the aggregated neighborhood `h'_v` into `h_v^(k)`
//! through a trainable dense layer. Batch-oriented: rows are vertices.

use crate::layer::{Activation, DenseLayer};
use aligraph_tensor::Matrix;

/// A COMBINE plugin operating on batches.
pub trait Combiner: Send {
    /// Output embedding dimension.
    fn out_dim(&self) -> usize;

    /// Forward: `h_self` and `h_nbr` are `batch x d_in`; returns
    /// `batch x out_dim`.
    fn forward(&self, h_self: &Matrix, h_nbr: &Matrix) -> Matrix;

    /// Backward: accumulates parameter gradients and returns
    /// `(dL/dh_self, dL/dh_nbr)`.
    fn backward(
        &mut self,
        h_self: &Matrix,
        h_nbr: &Matrix,
        output: &Matrix,
        grad_out: &Matrix,
    ) -> (Matrix, Matrix);

    /// Applies accumulated gradients (mean over `batch`).
    fn step(&mut self, batch: usize);

    /// Operator name for reports.
    fn name(&self) -> &'static str;

    /// Trainable parameters flattened — what a distributed allreduce
    /// averages. Parameter-free combiners return an empty vector.
    fn param_vec(&self) -> Vec<f32> {
        Vec::new()
    }

    /// Overwrites parameters from the [`param_vec`](Self::param_vec) layout.
    fn load_param_vec(&mut self, params: &[f32]) -> Result<(), String> {
        if params.is_empty() {
            Ok(())
        } else {
            Err(format!("combiner {} has no parameters", self.name()))
        }
    }

    /// Parameters plus optimizer state, for checkpointing.
    fn state_vec(&self) -> Vec<f32> {
        Vec::new()
    }

    /// Restores state captured by [`state_vec`](Self::state_vec).
    fn load_state_vec(&mut self, state: &[f32]) -> Result<(), String> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(format!("combiner {} has no state", self.name()))
        }
    }
}

/// GraphSAGE combine: `h^(k) = act(W [h_self ; h_nbr] + b)`.
#[derive(Debug, Clone)]
pub struct ConcatCombiner {
    layer: DenseLayer,
    in_dim: usize,
}

impl ConcatCombiner {
    /// Combiner mapping `2 * in_dim -> out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, act: Activation, lr: f32, seed: u64) -> Self {
        ConcatCombiner { layer: DenseLayer::new(2 * in_dim, out_dim, act, lr, seed), in_dim }
    }
}

impl Combiner for ConcatCombiner {
    fn out_dim(&self) -> usize {
        self.layer.out_dim()
    }

    fn forward(&self, h_self: &Matrix, h_nbr: &Matrix) -> Matrix {
        self.layer.forward(&h_self.hcat(h_nbr))
    }

    fn backward(
        &mut self,
        h_self: &Matrix,
        h_nbr: &Matrix,
        output: &Matrix,
        grad_out: &Matrix,
    ) -> (Matrix, Matrix) {
        let x = h_self.hcat(h_nbr);
        let dx = self.layer.backward(&x, output, grad_out);
        dx.hsplit(self.in_dim)
    }

    fn step(&mut self, batch: usize) {
        self.layer.step(batch);
    }

    fn name(&self) -> &'static str {
        "concat"
    }

    fn param_vec(&self) -> Vec<f32> {
        self.layer.param_vec()
    }

    fn load_param_vec(&mut self, params: &[f32]) -> Result<(), String> {
        self.layer.load_param_vec(params)
    }

    fn state_vec(&self) -> Vec<f32> {
        self.layer.state_vec()
    }

    fn load_state_vec(&mut self, state: &[f32]) -> Result<(), String> {
        self.layer.load_state_vec(state)
    }
}

/// GCN-style combine: `h^(k) = act(W (h_self + h_nbr) + b)` — "usually,
/// h^(k-1)_v and h'_v are summed together to [be] fed into a deep neural
/// network" (paper §3.4).
#[derive(Debug, Clone)]
pub struct GcnCombiner {
    layer: DenseLayer,
}

impl GcnCombiner {
    /// Combiner mapping `in_dim -> out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, act: Activation, lr: f32, seed: u64) -> Self {
        GcnCombiner { layer: DenseLayer::new(in_dim, out_dim, act, lr, seed) }
    }
}

impl Combiner for GcnCombiner {
    fn out_dim(&self) -> usize {
        self.layer.out_dim()
    }

    fn forward(&self, h_self: &Matrix, h_nbr: &Matrix) -> Matrix {
        let mut x = h_self.clone();
        x.add_assign(h_nbr);
        self.layer.forward(&x)
    }

    fn backward(
        &mut self,
        h_self: &Matrix,
        h_nbr: &Matrix,
        output: &Matrix,
        grad_out: &Matrix,
    ) -> (Matrix, Matrix) {
        let mut x = h_self.clone();
        x.add_assign(h_nbr);
        let dx = self.layer.backward(&x, output, grad_out);
        (dx.clone(), dx)
    }

    fn step(&mut self, batch: usize) {
        self.layer.step(batch);
    }

    fn name(&self) -> &'static str {
        "gcn-sum"
    }

    fn param_vec(&self) -> Vec<f32> {
        self.layer.param_vec()
    }

    fn load_param_vec(&mut self, params: &[f32]) -> Result<(), String> {
        self.layer.load_param_vec(params)
    }

    fn state_vec(&self) -> Vec<f32> {
        self.layer.state_vec()
    }

    fn load_state_vec(&mut self, state: &[f32]) -> Result<(), String> {
        self.layer.load_state_vec(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aligraph_tensor::init::seeded_rng;

    #[test]
    fn concat_shapes() {
        let c = ConcatCombiner::new(8, 16, Activation::Relu, 0.01, 1);
        let h_self = Matrix::zeros(4, 8);
        let h_nbr = Matrix::zeros(4, 8);
        let y = c.forward(&h_self, &h_nbr);
        assert_eq!((y.rows, y.cols), (4, 16));
        assert_eq!(c.out_dim(), 16);
    }

    #[test]
    fn gcn_shapes_and_shared_gradient() {
        let mut c = GcnCombiner::new(8, 8, Activation::Linear, 0.01, 2);
        let mut rng = seeded_rng(3);
        let h_self = Matrix::uniform(2, 8, 1.0, &mut rng);
        let h_nbr = Matrix::uniform(2, 8, 1.0, &mut rng);
        let y = c.forward(&h_self, &h_nbr);
        let g = Matrix::uniform(2, 8, 1.0, &mut rng);
        let (ds, dn) = c.backward(&h_self, &h_nbr, &y, &g);
        // Sum combine: both inputs receive the same upstream gradient.
        assert_eq!(ds.as_slice(), dn.as_slice());
    }

    #[test]
    fn concat_split_gradients_differ() {
        let mut c = ConcatCombiner::new(4, 4, Activation::Linear, 0.01, 4);
        let mut rng = seeded_rng(5);
        let h_self = Matrix::uniform(3, 4, 1.0, &mut rng);
        let h_nbr = Matrix::uniform(3, 4, 1.0, &mut rng);
        let y = c.forward(&h_self, &h_nbr);
        let g = Matrix::uniform(3, 4, 1.0, &mut rng);
        let (ds, dn) = c.backward(&h_self, &h_nbr, &y, &g);
        assert_eq!((ds.rows, ds.cols), (3, 4));
        assert_eq!((dn.rows, dn.cols), (3, 4));
        assert_ne!(ds.as_slice(), dn.as_slice());
    }

    #[test]
    fn combiner_param_roundtrip_across_seeds() {
        let a = ConcatCombiner::new(3, 2, Activation::Relu, 0.01, 8);
        let mut b = ConcatCombiner::new(3, 2, Activation::Relu, 0.01, 9);
        assert_ne!(a.param_vec(), b.param_vec());
        b.load_param_vec(&a.param_vec()).unwrap();
        assert_eq!(a.param_vec(), b.param_vec());
        let mut g = GcnCombiner::new(3, 2, Activation::Relu, 0.01, 10);
        g.load_state_vec(&g.state_vec()).unwrap();
        assert!(g.load_param_vec(&[0.0]).is_err());
    }

    #[test]
    fn combiner_trains_to_separate_signal() {
        // Learn to output h_self and ignore h_nbr noise: L = ||y - h_self||^2.
        let mut c = ConcatCombiner::new(2, 2, Activation::Linear, 0.05, 6);
        let mut rng = seeded_rng(7);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..300 {
            let h_self = Matrix::uniform(8, 2, 1.0, &mut rng);
            let h_nbr = Matrix::uniform(8, 2, 1.0, &mut rng);
            let y = c.forward(&h_self, &h_nbr);
            let mut g = y.clone();
            g.add_scaled(-1.0, &h_self);
            let loss = g.frobenius_norm();
            c.backward(&h_self, &h_nbr, &y, &g);
            c.step(8);
            first.get_or_insert(loss);
            last = loss;
        }
        assert!(last < first.unwrap() * 0.5, "loss {last} from {:?}", first);
    }
}
