//! AGGREGATE operators (paper §3.4): collapse the sampled neighborhood of a
//! vertex into one vector — "the convolution operation" of a GNN. Each
//! aggregator is a plugin with forward and backward passes.

use aligraph_tensor::activations::softmax;

/// An AGGREGATE plugin: `h'_v = AGG({h_u : u ∈ S_v})`.
pub trait Aggregator: Send + Sync {
    /// Forward: writes the aggregate of `neighbors` (each a `d`-dim row)
    /// into `out` (also `d`-dim). `target` is the aggregating vertex's own
    /// embedding, used by attention-style aggregators. With no neighbors,
    /// `out` is zeroed.
    fn forward(&self, target: &[f32], neighbors: &[&[f32]], out: &mut [f32]);

    /// Backward: given `dL/dout`, writes `dL/dh_u` for every neighbor into
    /// `grad_neighbors[u]` (pre-sized `d`-dim buffers).
    fn backward(
        &self,
        target: &[f32],
        neighbors: &[&[f32]],
        grad_out: &[f32],
        grad_neighbors: &mut [Vec<f32>],
    );

    /// Operator name for reports.
    fn name(&self) -> &'static str;
}

/// Element-wise mean — GraphSAGE's default.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanAggregator;

impl Aggregator for MeanAggregator {
    fn forward(&self, _target: &[f32], neighbors: &[&[f32]], out: &mut [f32]) {
        out.fill(0.0);
        if neighbors.is_empty() {
            return;
        }
        for nbr in neighbors {
            for (o, &x) in out.iter_mut().zip(*nbr) {
                *o += x;
            }
        }
        let inv = 1.0 / neighbors.len() as f32;
        for o in out.iter_mut() {
            *o *= inv;
        }
    }

    fn backward(
        &self,
        _target: &[f32],
        neighbors: &[&[f32]],
        grad_out: &[f32],
        grad_neighbors: &mut [Vec<f32>],
    ) {
        if neighbors.is_empty() {
            return;
        }
        let inv = 1.0 / neighbors.len() as f32;
        for g in grad_neighbors.iter_mut() {
            for (gn, &go) in g.iter_mut().zip(grad_out) {
                *gn = go * inv;
            }
        }
    }

    fn name(&self) -> &'static str {
        "mean"
    }
}

/// Element-wise sum (GCN-style unnormalized).
#[derive(Debug, Clone, Copy, Default)]
pub struct SumAggregator;

impl Aggregator for SumAggregator {
    fn forward(&self, _target: &[f32], neighbors: &[&[f32]], out: &mut [f32]) {
        out.fill(0.0);
        for nbr in neighbors {
            for (o, &x) in out.iter_mut().zip(*nbr) {
                *o += x;
            }
        }
    }

    fn backward(
        &self,
        _target: &[f32],
        neighbors: &[&[f32]],
        grad_out: &[f32],
        grad_neighbors: &mut [Vec<f32>],
    ) {
        for g in grad_neighbors.iter_mut().take(neighbors.len()) {
            g.copy_from_slice(grad_out);
        }
    }

    fn name(&self) -> &'static str {
        "sum"
    }
}

/// Element-wise max pooling; backward routes each component's gradient to
/// the argmax neighbor.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxPoolAggregator;

impl Aggregator for MaxPoolAggregator {
    fn forward(&self, _target: &[f32], neighbors: &[&[f32]], out: &mut [f32]) {
        out.fill(0.0);
        if neighbors.is_empty() {
            return;
        }
        out.copy_from_slice(neighbors[0]);
        for nbr in &neighbors[1..] {
            for (o, &x) in out.iter_mut().zip(*nbr) {
                if x > *o {
                    *o = x;
                }
            }
        }
    }

    fn backward(
        &self,
        _target: &[f32],
        neighbors: &[&[f32]],
        grad_out: &[f32],
        grad_neighbors: &mut [Vec<f32>],
    ) {
        if neighbors.is_empty() {
            return;
        }
        for g in grad_neighbors.iter_mut() {
            g.iter_mut().for_each(|x| *x = 0.0);
        }
        for j in 0..grad_out.len() {
            let mut best = 0usize;
            let mut best_val = neighbors[0][j];
            for (i, nbr) in neighbors.iter().enumerate().skip(1) {
                if nbr[j] > best_val {
                    best_val = nbr[j];
                    best = i;
                }
            }
            grad_neighbors[best][j] = grad_out[j];
        }
    }

    fn name(&self) -> &'static str {
        "max-pool"
    }
}

/// Mean weighted by caller-supplied per-neighbor weights (edge weights);
/// the "weighted element-wise mean" the paper names for GraphSAGE.
#[derive(Debug, Clone, Default)]
pub struct WeightedMeanAggregator {
    /// Per-neighbor weights, set per call site (aligned with `neighbors`).
    pub weights: Vec<f32>,
}

impl Aggregator for WeightedMeanAggregator {
    fn forward(&self, _target: &[f32], neighbors: &[&[f32]], out: &mut [f32]) {
        out.fill(0.0);
        if neighbors.is_empty() {
            return;
        }
        debug_assert_eq!(self.weights.len(), neighbors.len());
        let total: f32 = self.weights.iter().sum();
        let norm = if total > 0.0 { 1.0 / total } else { 1.0 / neighbors.len() as f32 };
        for (nbr, &w) in neighbors.iter().zip(&self.weights) {
            let scale = w * norm;
            for (o, &x) in out.iter_mut().zip(*nbr) {
                *o += scale * x;
            }
        }
    }

    fn backward(
        &self,
        _target: &[f32],
        neighbors: &[&[f32]],
        grad_out: &[f32],
        grad_neighbors: &mut [Vec<f32>],
    ) {
        if neighbors.is_empty() {
            return;
        }
        let total: f32 = self.weights.iter().sum();
        let norm = if total > 0.0 { 1.0 / total } else { 1.0 / neighbors.len() as f32 };
        for (g, &w) in grad_neighbors.iter_mut().zip(&self.weights) {
            let scale = w * norm;
            for (gn, &go) in g.iter_mut().zip(grad_out) {
                *gn = go * scale;
            }
        }
    }

    fn name(&self) -> &'static str {
        "weighted-mean"
    }
}

/// Dot-product self-attention over neighbors: weights are
/// `softmax(h_v · h_u / sqrt(d))`. Backward treats the attention weights as
/// constants (stop-gradient through the softmax), the standard cheap
/// approximation for sampled-neighborhood attention.
#[derive(Debug, Clone, Copy, Default)]
pub struct AttentionAggregator;

impl AttentionAggregator {
    fn scores(&self, target: &[f32], neighbors: &[&[f32]]) -> Vec<f32> {
        let scale = 1.0 / (target.len() as f32).sqrt();
        let mut s: Vec<f32> =
            neighbors.iter().map(|n| aligraph_tensor::dot(target, n) * scale).collect();
        softmax(&mut s);
        s
    }
}

impl Aggregator for AttentionAggregator {
    fn forward(&self, target: &[f32], neighbors: &[&[f32]], out: &mut [f32]) {
        out.fill(0.0);
        if neighbors.is_empty() {
            return;
        }
        let attn = self.scores(target, neighbors);
        for (nbr, &a) in neighbors.iter().zip(&attn) {
            for (o, &x) in out.iter_mut().zip(*nbr) {
                *o += a * x;
            }
        }
    }

    fn backward(
        &self,
        target: &[f32],
        neighbors: &[&[f32]],
        grad_out: &[f32],
        grad_neighbors: &mut [Vec<f32>],
    ) {
        if neighbors.is_empty() {
            return;
        }
        let attn = self.scores(target, neighbors);
        for (g, &a) in grad_neighbors.iter_mut().zip(&attn) {
            for (gn, &go) in g.iter_mut().zip(grad_out) {
                *gn = go * a;
            }
        }
    }

    fn name(&self) -> &'static str {
        "attention"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: [f32; 2] = [1.0, 0.0];

    fn run(agg: &dyn Aggregator, nbrs: &[&[f32]]) -> Vec<f32> {
        let mut out = vec![0.0; 2];
        agg.forward(&T, nbrs, &mut out);
        out
    }

    #[test]
    fn mean_forward_backward() {
        let n1 = [2.0f32, 0.0];
        let n2 = [0.0f32, 4.0];
        let out = run(&MeanAggregator, &[&n1, &n2]);
        assert_eq!(out, vec![1.0, 2.0]);
        let mut grads = vec![vec![0.0; 2]; 2];
        MeanAggregator.backward(&T, &[&n1, &n2], &[1.0, 1.0], &mut grads);
        assert_eq!(grads[0], vec![0.5, 0.5]);
        assert_eq!(grads[1], vec![0.5, 0.5]);
    }

    #[test]
    fn sum_forward_backward() {
        let n1 = [2.0f32, 1.0];
        let n2 = [3.0f32, -1.0];
        assert_eq!(run(&SumAggregator, &[&n1, &n2]), vec![5.0, 0.0]);
        let mut grads = vec![vec![0.0; 2]; 2];
        SumAggregator.backward(&T, &[&n1, &n2], &[2.0, 3.0], &mut grads);
        assert_eq!(grads[0], vec![2.0, 3.0]);
        assert_eq!(grads[1], vec![2.0, 3.0]);
    }

    #[test]
    fn maxpool_routes_gradient_to_argmax() {
        let n1 = [5.0f32, 0.0];
        let n2 = [1.0f32, 7.0];
        assert_eq!(run(&MaxPoolAggregator, &[&n1, &n2]), vec![5.0, 7.0]);
        let mut grads = vec![vec![0.0; 2]; 2];
        MaxPoolAggregator.backward(&T, &[&n1, &n2], &[1.0, 1.0], &mut grads);
        assert_eq!(grads[0], vec![1.0, 0.0]);
        assert_eq!(grads[1], vec![0.0, 1.0]);
    }

    #[test]
    fn weighted_mean_respects_weights() {
        let n1 = [1.0f32, 0.0];
        let n2 = [0.0f32, 1.0];
        let agg = WeightedMeanAggregator { weights: vec![3.0, 1.0] };
        let mut out = vec![0.0; 2];
        agg.forward(&T, &[&n1, &n2], &mut out);
        assert!((out[0] - 0.75).abs() < 1e-6);
        assert!((out[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn attention_prefers_similar_neighbors() {
        let similar = [1.0f32, 0.0];
        let orthogonal = [0.0f32, 1.0];
        let out = run(&AttentionAggregator, &[&similar, &orthogonal]);
        // Output leans toward the neighbor aligned with the target.
        assert!(out[0] > out[1], "out {out:?}");
        // Attention weights sum to 1 => output is a convex combination.
        assert!((out[0] + out[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_neighborhood_zeroes_out() {
        for agg in [
            &MeanAggregator as &dyn Aggregator,
            &SumAggregator,
            &MaxPoolAggregator,
            &AttentionAggregator,
        ] {
            let mut out = vec![9.0; 2];
            agg.forward(&T, &[], &mut out);
            assert_eq!(out, vec![0.0, 0.0], "{}", agg.name());
        }
    }

    #[test]
    fn names_distinct() {
        let names = [
            MeanAggregator.name(),
            SumAggregator.name(),
            MaxPoolAggregator.name(),
            AttentionAggregator.name(),
            WeightedMeanAggregator::default().name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
