//! A trainable dense layer with explicit forward/backward, the building
//! block of every COMBINE operator and of the model heads in the algorithm
//! layer.

use aligraph_tensor::activations;
use aligraph_tensor::init::{seeded_rng, xavier_uniform};
use aligraph_tensor::{Adam, Matrix, Optimizer};

/// Activation applied after the affine map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity.
    Linear,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

/// `y = act(x @ W + b)` with accumulated gradients and an owned Adam
/// optimizer per parameter tensor.
#[derive(Debug, Clone)]
pub struct DenseLayer {
    w: Matrix,
    b: Vec<f32>,
    act: Activation,
    grad_w: Matrix,
    grad_b: Vec<f32>,
    opt_w: Adam,
    opt_b: Adam,
}

impl DenseLayer {
    /// Xavier-initialized layer `in_dim -> out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, act: Activation, lr: f32, seed: u64) -> Self {
        let mut rng = seeded_rng(seed);
        DenseLayer {
            w: xavier_uniform(in_dim, out_dim, &mut rng),
            b: vec![0.0; out_dim],
            act,
            grad_w: Matrix::zeros(in_dim, out_dim),
            grad_b: vec![0.0; out_dim],
            opt_w: Adam::new(lr),
            opt_b: Adam::new(lr),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.rows
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.cols
    }

    /// Forward pass over a batch (rows = samples). Returns the activated
    /// output; keep it around for the backward pass.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        y.add_row_vector(&self.b);
        match self.act {
            Activation::Linear => {}
            Activation::Relu => activations::relu(&mut y),
            Activation::Tanh => activations::tanh_inplace(&mut y),
            Activation::Sigmoid => activations::sigmoid_inplace(&mut y),
        }
        y
    }

    /// Backward pass: given the batch input `x`, the forward output
    /// `activated`, and `grad_out = dL/dy`, accumulates parameter gradients
    /// and returns `dL/dx`.
    pub fn backward(&mut self, x: &Matrix, activated: &Matrix, grad_out: &Matrix) -> Matrix {
        let mut g = grad_out.clone();
        match self.act {
            Activation::Linear => {}
            Activation::Relu => activations::relu_backward(&mut g, activated),
            Activation::Tanh => activations::tanh_backward(&mut g, activated),
            Activation::Sigmoid => activations::sigmoid_backward(&mut g, activated),
        }
        // dW = x^T g ; db = column sums of g ; dx = g W^T.
        self.grad_w.add_assign(&x.transpose_matmul(&g));
        for (gb, s) in self.grad_b.iter_mut().zip(g.column_sums()) {
            *gb += s;
        }
        g.matmul_transpose(&self.w)
    }

    /// Applies accumulated gradients (scaled by `1/batch`) and clears them.
    pub fn step(&mut self, batch: usize) {
        let scale = 1.0 / batch.max(1) as f32;
        self.grad_w.scale(scale);
        for gb in &mut self.grad_b {
            *gb *= scale;
        }
        self.grad_w.clip(5.0);
        self.opt_w.step(self.w.as_mut_slice(), self.grad_w.as_slice());
        self.opt_b.step(&mut self.b, &self.grad_b);
        self.grad_w.scale(0.0);
        self.grad_b.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Read-only weights (tests, serialization).
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Trainable parameters flattened (`W` row-major, then `b`) — the unit
    /// the distributed runtime averages in its epoch-boundary allreduce.
    pub fn param_vec(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.w.as_slice().len() + self.b.len());
        out.extend_from_slice(self.w.as_slice());
        out.extend_from_slice(&self.b);
        out
    }

    /// Overwrites parameters from the [`param_vec`](Self::param_vec) layout.
    pub fn load_param_vec(&mut self, params: &[f32]) -> Result<(), String> {
        let wn = self.w.as_slice().len();
        if params.len() != wn + self.b.len() {
            return Err(format!(
                "dense param buffer {} != {} weights + {} biases",
                params.len(),
                wn,
                self.b.len()
            ));
        }
        self.w.as_mut_slice().copy_from_slice(&params[..wn]);
        self.b.copy_from_slice(&params[wn..]);
        Ok(())
    }

    /// Full state — parameters plus both Adam optimizers — for
    /// checkpointing. Optimizer sections are length-prefixed (the length is
    /// bit-stored in an `f32`) because the moments are lazily allocated.
    pub fn state_vec(&self) -> Vec<f32> {
        let mut out = self.param_vec();
        for s in [self.opt_w.state_vec(), self.opt_b.state_vec()] {
            out.push(f32::from_bits(s.len() as u32));
            out.extend_from_slice(&s);
        }
        out
    }

    /// Restores state captured by [`state_vec`](Self::state_vec).
    pub fn load_state_vec(&mut self, state: &[f32]) -> Result<(), String> {
        let np = self.w.as_slice().len() + self.b.len();
        if state.len() < np {
            return Err(format!("dense state buffer {} shorter than {np} params", state.len()));
        }
        self.load_param_vec(&state[..np])?;
        let mut rest = &state[np..];
        for opt in [&mut self.opt_w, &mut self.opt_b] {
            let (len, tail) =
                rest.split_first().ok_or_else(|| "dense state missing optimizer".to_string())?;
            let len = len.to_bits() as usize;
            if tail.len() < len {
                return Err(format!("optimizer section {} > remaining {}", len, tail.len()));
            }
            opt.load_state_vec(&tail[..len])?;
            rest = &tail[len..];
        }
        if !rest.is_empty() {
            return Err(format!("{} trailing values in dense state", rest.len()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let l = DenseLayer::new(4, 3, Activation::Relu, 0.01, 1);
        let x = Matrix::zeros(5, 4);
        let y = l.forward(&x);
        assert_eq!((y.rows, y.cols), (5, 3));
        assert_eq!(l.in_dim(), 4);
        assert_eq!(l.out_dim(), 3);
    }

    #[test]
    fn gradient_check_linear_layer() {
        // Numerical gradient check of dL/dx for L = sum(y), linear act.
        let mut l = DenseLayer::new(3, 2, Activation::Linear, 0.01, 2);
        let x = Matrix::from_vec(1, 3, vec![0.3, -0.2, 0.5]);
        let y = l.forward(&x);
        let grad_out = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let dx = l.backward(&x, &y, &grad_out);
        let eps = 1e-3;
        for j in 0..3 {
            let mut xp = x.clone();
            xp.set(0, j, x.get(0, j) + eps);
            let mut xm = x.clone();
            xm.set(0, j, x.get(0, j) - eps);
            let lp: f32 = l.forward(&xp).as_slice().iter().sum();
            let lm: f32 = l.forward(&xm).as_slice().iter().sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!((dx.get(0, j) - fd).abs() < 1e-2, "j={j}: {} vs {}", dx.get(0, j), fd);
        }
    }

    #[test]
    fn training_reduces_regression_loss() {
        // Fit y = 2x (1-D) with a linear layer.
        let mut l = DenseLayer::new(1, 1, Activation::Linear, 0.05, 3);
        let xs: Vec<f32> = (0..16).map(|i| i as f32 / 8.0 - 1.0).collect();
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..200 {
            let x = Matrix::from_vec(16, 1, xs.clone());
            let y = l.forward(&x);
            // L = 0.5 * sum (y - 2x)^2 ; dL/dy = y - 2x.
            let mut loss = 0.0;
            let mut g = Matrix::zeros(16, 1);
            for (i, &xi) in xs.iter().enumerate() {
                let diff = y.get(i, 0) - 2.0 * xi;
                loss += 0.5 * diff * diff;
                g.set(i, 0, diff);
            }
            l.backward(&x, &y, &g);
            l.step(16);
            first.get_or_insert(loss);
            last = loss;
        }
        assert!(last < first.unwrap() * 0.05, "loss {last} from {}", first.unwrap());
        assert!((l.weights().get(0, 0) - 2.0).abs() < 0.2);
    }

    #[test]
    fn param_and_state_roundtrip() {
        let mut a = DenseLayer::new(3, 2, Activation::Tanh, 0.05, 9);
        let x = Matrix::from_vec(2, 3, vec![0.1, -0.4, 0.2, 0.7, 0.0, -0.3]);
        for _ in 0..3 {
            let y = a.forward(&x);
            let g = Matrix::from_vec(2, 2, vec![1.0, -1.0, 0.5, 0.5]);
            a.backward(&x, &y, &g);
            a.step(2);
        }
        // param_vec/load_param_vec copy exactly.
        let mut fresh = DenseLayer::new(3, 2, Activation::Tanh, 0.05, 10);
        fresh.load_param_vec(&a.param_vec()).unwrap();
        assert_eq!(fresh.weights().as_slice(), a.weights().as_slice());
        // Full state restore makes the next optimizer step bit-identical.
        let mut b = DenseLayer::new(3, 2, Activation::Tanh, 0.05, 11);
        b.load_state_vec(&a.state_vec()).unwrap();
        let (ya, yb) = (a.forward(&x), b.forward(&x));
        let g = Matrix::from_vec(2, 2, vec![0.3, 0.3, -0.2, 0.1]);
        a.backward(&x, &ya, &g);
        b.backward(&x, &yb, &g);
        a.step(2);
        b.step(2);
        for (pa, pb) in a.param_vec().iter().zip(b.param_vec()) {
            assert_eq!(pa.to_bits(), pb.to_bits());
        }
        // Shape errors, no panics.
        assert!(b.load_param_vec(&[0.0; 3]).is_err());
        assert!(b.load_state_vec(&[0.0; 4]).is_err());
        let mut truncated = a.state_vec();
        truncated.pop();
        assert!(b.load_state_vec(&truncated).is_err());
    }

    #[test]
    fn relu_backward_masks() {
        let mut l = DenseLayer::new(2, 2, Activation::Relu, 0.01, 4);
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let y = l.forward(&x);
        let g = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let dx = l.backward(&x, &y, &g);
        // Wherever y == 0 the gradient contribution through that unit is 0.
        assert_eq!((dx.rows, dx.cols), (1, 2));
    }
}
