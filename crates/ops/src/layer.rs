//! A trainable dense layer with explicit forward/backward, the building
//! block of every COMBINE operator and of the model heads in the algorithm
//! layer.

use aligraph_tensor::activations;
use aligraph_tensor::init::{seeded_rng, xavier_uniform};
use aligraph_tensor::{Adam, Matrix, Optimizer};

/// Activation applied after the affine map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity.
    Linear,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

/// `y = act(x @ W + b)` with accumulated gradients and an owned Adam
/// optimizer per parameter tensor.
#[derive(Debug, Clone)]
pub struct DenseLayer {
    w: Matrix,
    b: Vec<f32>,
    act: Activation,
    grad_w: Matrix,
    grad_b: Vec<f32>,
    opt_w: Adam,
    opt_b: Adam,
}

impl DenseLayer {
    /// Xavier-initialized layer `in_dim -> out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, act: Activation, lr: f32, seed: u64) -> Self {
        let mut rng = seeded_rng(seed);
        DenseLayer {
            w: xavier_uniform(in_dim, out_dim, &mut rng),
            b: vec![0.0; out_dim],
            act,
            grad_w: Matrix::zeros(in_dim, out_dim),
            grad_b: vec![0.0; out_dim],
            opt_w: Adam::new(lr),
            opt_b: Adam::new(lr),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.rows
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.cols
    }

    /// Forward pass over a batch (rows = samples). Returns the activated
    /// output; keep it around for the backward pass.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        y.add_row_vector(&self.b);
        match self.act {
            Activation::Linear => {}
            Activation::Relu => activations::relu(&mut y),
            Activation::Tanh => activations::tanh_inplace(&mut y),
            Activation::Sigmoid => activations::sigmoid_inplace(&mut y),
        }
        y
    }

    /// Backward pass: given the batch input `x`, the forward output
    /// `activated`, and `grad_out = dL/dy`, accumulates parameter gradients
    /// and returns `dL/dx`.
    pub fn backward(&mut self, x: &Matrix, activated: &Matrix, grad_out: &Matrix) -> Matrix {
        let mut g = grad_out.clone();
        match self.act {
            Activation::Linear => {}
            Activation::Relu => activations::relu_backward(&mut g, activated),
            Activation::Tanh => activations::tanh_backward(&mut g, activated),
            Activation::Sigmoid => activations::sigmoid_backward(&mut g, activated),
        }
        // dW = x^T g ; db = column sums of g ; dx = g W^T.
        self.grad_w.add_assign(&x.transpose_matmul(&g));
        for (gb, s) in self.grad_b.iter_mut().zip(g.column_sums()) {
            *gb += s;
        }
        g.matmul_transpose(&self.w)
    }

    /// Applies accumulated gradients (scaled by `1/batch`) and clears them.
    pub fn step(&mut self, batch: usize) {
        let scale = 1.0 / batch.max(1) as f32;
        self.grad_w.scale(scale);
        for gb in &mut self.grad_b {
            *gb *= scale;
        }
        self.grad_w.clip(5.0);
        self.opt_w.step(self.w.as_mut_slice(), self.grad_w.as_slice());
        self.opt_b.step(&mut self.b, &self.grad_b);
        self.grad_w.scale(0.0);
        self.grad_b.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Read-only weights (tests, serialization).
    pub fn weights(&self) -> &Matrix {
        &self.w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let l = DenseLayer::new(4, 3, Activation::Relu, 0.01, 1);
        let x = Matrix::zeros(5, 4);
        let y = l.forward(&x);
        assert_eq!((y.rows, y.cols), (5, 3));
        assert_eq!(l.in_dim(), 4);
        assert_eq!(l.out_dim(), 3);
    }

    #[test]
    fn gradient_check_linear_layer() {
        // Numerical gradient check of dL/dx for L = sum(y), linear act.
        let mut l = DenseLayer::new(3, 2, Activation::Linear, 0.01, 2);
        let x = Matrix::from_vec(1, 3, vec![0.3, -0.2, 0.5]);
        let y = l.forward(&x);
        let grad_out = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let dx = l.backward(&x, &y, &grad_out);
        let eps = 1e-3;
        for j in 0..3 {
            let mut xp = x.clone();
            xp.set(0, j, x.get(0, j) + eps);
            let mut xm = x.clone();
            xm.set(0, j, x.get(0, j) - eps);
            let lp: f32 = l.forward(&xp).as_slice().iter().sum();
            let lm: f32 = l.forward(&xm).as_slice().iter().sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!((dx.get(0, j) - fd).abs() < 1e-2, "j={j}: {} vs {}", dx.get(0, j), fd);
        }
    }

    #[test]
    fn training_reduces_regression_loss() {
        // Fit y = 2x (1-D) with a linear layer.
        let mut l = DenseLayer::new(1, 1, Activation::Linear, 0.05, 3);
        let xs: Vec<f32> = (0..16).map(|i| i as f32 / 8.0 - 1.0).collect();
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..200 {
            let x = Matrix::from_vec(16, 1, xs.clone());
            let y = l.forward(&x);
            // L = 0.5 * sum (y - 2x)^2 ; dL/dy = y - 2x.
            let mut loss = 0.0;
            let mut g = Matrix::zeros(16, 1);
            for (i, &xi) in xs.iter().enumerate() {
                let diff = y.get(i, 0) - 2.0 * xi;
                loss += 0.5 * diff * diff;
                g.set(i, 0, diff);
            }
            l.backward(&x, &y, &g);
            l.step(16);
            first.get_or_insert(loss);
            last = loss;
        }
        assert!(last < first.unwrap() * 0.05, "loss {last} from {}", first.unwrap());
        assert!((l.weights().get(0, 0) - 2.0).abs() < 0.2);
    }

    #[test]
    fn relu_backward_masks() {
        let mut l = DenseLayer::new(2, 2, Activation::Relu, 0.01, 4);
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let y = l.forward(&x);
        let g = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let dx = l.backward(&x, &y, &g);
        // Wherever y == 0 the gradient contribution through that unit is 0.
        assert_eq!((dx.rows, dx.cols), (1, 2));
    }
}
