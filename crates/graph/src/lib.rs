//! # aligraph-graph
//!
//! The graph substrate of the AliGraph reproduction: an **Attributed
//! Heterogeneous Graph** (AHG) data model matching Section 2 of the paper,
//! plus everything the upper layers need from it:
//!
//! * typed vertices and edges with weights (`G = (V, E, W, T_V, T_E, A_V, A_E)`),
//! * **separate attribute storage** through interning indices `I_V` / `I_E`
//!   (paper §3.2 — adjacency rows store a compact attribute index instead of
//!   the attribute payload),
//! * k-hop in/out degree counting and the vertex importance metric
//!   `Imp^(k)(v) = D_i^(k)(v) / D_o^(k)(v)` (paper Eq. 1),
//! * seeded synthetic generators standing in for the proprietary Taobao and
//!   Amazon datasets (see `DESIGN.md` §1 for the substitution argument),
//! * dynamic graph snapshot series with normal/burst evolution for the
//!   Evolving GNN experiments,
//! * power-law exponent estimation used to validate Theorems 1 and 2.
//!
//! The in-memory layout is CSR-like: per-vertex contiguous out/in neighbor
//! slices sorted by edge type, so per-edge-type neighborhoods are contiguous
//! sub-slices found by binary search.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod attr;
pub mod degrees;
pub mod dynamic;
pub mod error;
pub mod features;
pub mod generate;
pub mod graph;
pub mod ids;
pub mod io;
pub mod powerlaw;

pub use attr::{AttrId, AttrIndex, AttrValue, AttrVector};
pub use degrees::{DegreeTable, ImportanceTable, KhopCounter};
pub use dynamic::{DynamicGraph, EdgeEvent, EvolutionKind, SnapshotDelta};
pub use error::GraphError;
pub use features::{FeatureMatrix, Featurizer};
pub use generate::{amazon_sim, barabasi_albert, erdos_renyi, DynamicConfig, TaobaoConfig};
pub use graph::{AdjacencySlice, AttributedHeterogeneousGraph, EdgeRecord, GraphBuilder, Neighbor};
pub use ids::{EdgeId, EdgeType, VertexId, VertexType};
pub use io::{read_graph, read_graph_parts, write_graph};

/// Result alias used throughout the graph crate.
pub type Result<T> = std::result::Result<T, GraphError>;
