//! Dense vertex features from AHG attributes.
//!
//! The GNN framework (Algorithm 1) initializes `h_v^(0) = x_v` from a vertex
//! feature vector. Production systems learn or engineer those features; here
//! a deterministic **feature hashing** scheme maps arbitrary attribute
//! records into a fixed `f32` dimension so every model sees consistent,
//! attribute-derived inputs regardless of schema:
//!
//! * categorical/text fields switch on hashed indicator buckets,
//! * numeric fields contribute their (squashed) magnitude to hashed buckets,
//! * rows are L2-normalized, matching the normalization step of Algorithm 1.

use crate::attr::AttrValue;
use crate::graph::AttributedHeterogeneousGraph;
use crate::ids::VertexId;

/// A dense `n x dim` row-major feature matrix.
#[derive(Debug, Clone)]
pub struct FeatureMatrix {
    /// Feature dimension per vertex.
    pub dim: usize,
    data: Vec<f32>,
}

impl FeatureMatrix {
    /// Creates a zero matrix.
    pub fn zeros(n: usize, dim: usize) -> Self {
        FeatureMatrix { dim, data: vec![0.0; n * dim] }
    }

    /// Number of rows (vertices).
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// True when the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Feature row of a vertex.
    #[inline]
    pub fn row(&self, v: VertexId) -> &[f32] {
        let d = self.dim;
        &self.data[v.index() * d..(v.index() + 1) * d]
    }

    /// Mutable feature row.
    #[inline]
    pub fn row_mut(&mut self, v: VertexId) -> &mut [f32] {
        let d = self.dim;
        &mut self.data[v.index() * d..(v.index() + 1) * d]
    }

    /// Raw backing slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }
}

/// Deterministic attribute-to-feature hasher.
#[derive(Debug, Clone, Copy)]
pub struct Featurizer {
    /// Output feature dimension.
    pub dim: usize,
    salt: u64,
    identity: bool,
}

impl Featurizer {
    /// A featurizer producing `dim`-dimensional vectors.
    pub fn new(dim: usize) -> Self {
        Featurizer { dim, salt: 0x9e37_79b9_7f4a_7c15, identity: false }
    }

    /// Uses a custom hash salt (distinct feature spaces for ablations).
    pub fn with_salt(dim: usize, salt: u64) -> Self {
        Featurizer { dim, salt, identity: false }
    }

    /// Also mixes hashed per-vertex identity probes into every vector —
    /// attribute profiles are interned and shared by many vertices (paper
    /// §3.2), so without identity signal a GNN cannot tell profile-sharing
    /// vertices apart. This is the standard identity-feature augmentation.
    pub fn with_identity(mut self) -> Self {
        self.identity = true;
        self
    }

    /// Features for one vertex, L2-normalized. Vertices with no attributes
    /// get a deterministic type-dependent basis vector so the GNN input is
    /// never all-zero.
    pub fn featurize_vertex(&self, graph: &AttributedHeterogeneousGraph, v: VertexId) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        self.featurize_into(graph, v, &mut out);
        out
    }

    /// As [`featurize_vertex`](Self::featurize_vertex) but writing into a
    /// caller-provided buffer.
    pub fn featurize_into(
        &self,
        graph: &AttributedHeterogeneousGraph,
        v: VertexId,
        out: &mut [f32],
    ) {
        debug_assert_eq!(out.len(), self.dim);
        out.fill(0.0);
        let attrs = graph.vertex_attrs(v);
        if attrs.is_empty() {
            // Structural fallback: vertex-type indicator + degree signal +
            // hashed identity buckets (without attributes, identity features
            // are what lets a GNN tell structurally similar vertices apart —
            // the standard featureless-GNN input).
            let t = graph.vertex_type(v).0 as u64;
            let b = (splitmix64(self.salt ^ t.wrapping_mul(0x517c_c1b7)) as usize) % self.dim;
            out[b] = 1.0;
            let deg_bucket =
                (splitmix64(self.salt ^ 0xdead ^ t) as usize).wrapping_add(1) % self.dim;
            out[deg_bucket] += squash(graph.out_degree(v) as f32);
            for probe in 0..2u64 {
                let h = splitmix64(self.salt ^ mix(probe, v.0 as u64));
                out[(h as usize) % self.dim] += if h & (1 << 61) == 0 { 0.7 } else { -0.7 };
            }
        } else {
            for (field, value) in attrs.0.iter().enumerate() {
                let field = field as u64;
                match value {
                    AttrValue::Categorical(c) => {
                        let h = splitmix64(self.salt ^ mix(field, *c as u64));
                        let b = (h as usize) % self.dim;
                        out[b] += if h & (1 << 63) == 0 { 1.0 } else { -1.0 };
                    }
                    AttrValue::Text(s) => {
                        let mut h = self.salt ^ field.wrapping_mul(0x100_0193);
                        for byte in s.bytes() {
                            h = splitmix64(h ^ byte as u64);
                        }
                        let b = (h as usize) % self.dim;
                        out[b] += if h & (1 << 62) == 0 { 1.0 } else { -1.0 };
                    }
                    AttrValue::Blob(bts) => {
                        let h = splitmix64(self.salt ^ mix(field, bts.len() as u64));
                        out[(h as usize) % self.dim] += 0.5;
                    }
                    AttrValue::Int(i) => {
                        let h = splitmix64(self.salt ^ field.wrapping_mul(0xabcd_ef12));
                        out[(h as usize) % self.dim] += squash(*i as f32);
                    }
                    AttrValue::Float(x) => {
                        let h = splitmix64(self.salt ^ field.wrapping_mul(0x0001_2345_6789));
                        out[(h as usize) % self.dim] += squash(*x);
                    }
                }
            }
        }
        if self.identity {
            for probe in 0..2u64 {
                let h = splitmix64(self.salt ^ mix(probe ^ 0x1d, v.0 as u64));
                out[(h as usize) % self.dim] += if h & (1 << 61) == 0 { 0.7 } else { -0.7 };
            }
        }
        l2_normalize(out);
    }

    /// Feature matrix for all vertices.
    pub fn matrix(&self, graph: &AttributedHeterogeneousGraph) -> FeatureMatrix {
        let mut m = FeatureMatrix::zeros(graph.num_vertices(), self.dim);
        for v in graph.vertices() {
            let d = self.dim;
            let row = &mut m.data[v.index() * d..(v.index() + 1) * d];
            self.featurize_into(graph, v, row);
        }
        m
    }
}

/// Signed log squash keeping magnitudes comparable across attribute scales.
fn squash(x: f32) -> f32 {
    x.signum() * (1.0 + x.abs()).ln()
}

fn l2_normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[inline]
fn mix(a: u64, b: u64) -> u64 {
    a.wrapping_mul(0x9e37_79b9).wrapping_add(b).rotate_left(17)
}

/// splitmix64: cheap, well-distributed 64-bit mixer.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrVector;
    use crate::generate::TaobaoConfig;
    use crate::graph::GraphBuilder;
    use crate::ids::well_known::*;

    #[test]
    fn rows_are_unit_norm_and_deterministic() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let f = Featurizer::new(16);
        let m1 = f.matrix(&g);
        let m2 = f.matrix(&g);
        for v in g.vertices() {
            let row = m1.row(v);
            let norm: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-4, "norm {norm}");
            assert_eq!(row, m2.row(v));
        }
    }

    #[test]
    fn same_attrs_same_features() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let f = Featurizer::new(8);
        // Two vertices sharing an interned profile must share features.
        let mut by_attr: std::collections::HashMap<_, Vec<VertexId>> = Default::default();
        for v in g.vertices() {
            by_attr.entry(g.vertex_attr_id(v)).or_default().push(v);
        }
        let group = by_attr.values().find(|vs| vs.len() >= 2).expect("profiles repeat");
        assert_eq!(f.featurize_vertex(&g, group[0]), f.featurize_vertex(&g, group[1]));
    }

    #[test]
    fn attr_free_vertices_get_type_indicator() {
        let mut b = GraphBuilder::directed();
        let u = b.add_vertex(USER, AttrVector::empty());
        let i = b.add_vertex(ITEM, AttrVector::empty());
        let g = b.build();
        let f = Featurizer::new(32);
        let fu = f.featurize_vertex(&g, u);
        let fi = f.featurize_vertex(&g, i);
        assert!(fu.iter().any(|&x| x != 0.0));
        assert_ne!(fu, fi, "different types must separate");
    }

    #[test]
    fn salt_changes_feature_space() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let a = Featurizer::with_salt(16, 1).featurize_vertex(&g, VertexId(0));
        let b = Featurizer::with_salt(16, 2).featurize_vertex(&g, VertexId(0));
        assert_ne!(a, b);
    }

    #[test]
    fn matrix_shape() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let m = Featurizer::new(12).matrix(&g);
        assert_eq!(m.len(), g.num_vertices());
        assert_eq!(m.dim, 12);
        assert_eq!(m.as_slice().len(), g.num_vertices() * 12);
    }

    #[test]
    fn row_mut_writes() {
        let mut m = FeatureMatrix::zeros(3, 4);
        m.row_mut(VertexId(1))[2] = 5.0;
        assert_eq!(m.row(VertexId(1))[2], 5.0);
        assert_eq!(m.row(VertexId(0))[2], 0.0);
    }
}
