//! Text-based graph ingestion and export.
//!
//! The paper's graph-building experiment (Figure 7) starts from raw files:
//! "AliGraph supports various kinds of raw data from different file
//! systems, partitioned or not". This module provides that interface for
//! the reproduction: a line-oriented, tab-separated format that round-trips
//! a full AHG (types, weights, and attributes), and a multi-part reader for
//! pre-partitioned inputs.
//!
//! Format (one record per line, `#`-prefixed comments ignored):
//!
//! ```text
//! v<TAB><vertex_type><TAB><attrs>
//! e<TAB><src_id><TAB><dst_id><TAB><edge_type><TAB><weight><TAB><attrs>
//! ```
//!
//! Vertices are implicitly numbered in file order (ids `0..n`, matching the
//! dense [`VertexId`] space); `attrs` is a `|`-separated list of typed
//! fields: `i:<int>`, `f:<float>`, `c:<code>`, `t:<escaped text>`,
//! `b:<len>` (blob payloads are preserved by length only — the simulators
//! never depend on blob contents). `-` denotes an empty record.

use crate::attr::{AttrValue, AttrVector};
use crate::error::GraphError;
use crate::graph::{AttributedHeterogeneousGraph, GraphBuilder};
use crate::ids::{EdgeType, VertexId, VertexType};
use crate::Result;
use std::io::{BufRead, BufReader, Read, Write};

/// Serializes a graph to the edge-list text format.
pub fn write_graph<W: Write>(
    graph: &AttributedHeterogeneousGraph,
    out: &mut W,
) -> std::io::Result<()> {
    let mut w = std::io::BufWriter::new(out);
    writeln!(w, "# aligraph edge-list v1")?;
    writeln!(
        w,
        "# {} vertices, {} edge records, directed={}",
        graph.num_vertices(),
        graph.num_edge_records(),
        graph.is_directed()
    )?;
    for v in graph.vertices() {
        writeln!(w, "v\t{}\t{}", graph.vertex_type(v).0, encode_attrs(graph.vertex_attrs(v)))?;
    }
    for v in graph.vertices() {
        for nb in graph.out_neighbors(v) {
            let attrs =
                graph.edge_attr_index().get(nb.attr).cloned().unwrap_or_else(AttrVector::empty);
            writeln!(
                w,
                "e\t{}\t{}\t{}\t{}\t{}",
                v.0,
                nb.vertex.0,
                nb.etype.0,
                nb.weight,
                encode_attrs(&attrs)
            )?;
        }
    }
    w.flush()
}

/// Reads a graph from one reader.
pub fn read_graph<R: Read>(input: R) -> Result<AttributedHeterogeneousGraph> {
    read_graph_parts(vec![input])
}

/// Reads a graph from multiple pre-partitioned parts.
///
/// Every part may contain vertex and edge lines; vertex lines are numbered
/// globally in part order (part 0's vertices first), matching how a
/// partitioned export concatenates.
pub fn read_graph_parts<R: Read>(parts: Vec<R>) -> Result<AttributedHeterogeneousGraph> {
    let mut builder = GraphBuilder::directed();
    // Two passes are avoided by buffering edges until all vertices exist —
    // partitioned inputs may reference vertices declared in later parts.
    let mut pending_edges: Vec<(u32, u32, u8, f32, AttrVector)> = Vec::new();

    for part in parts {
        let reader = BufReader::new(part);
        for (lineno, line) in reader.lines().enumerate() {
            let line = line.map_err(|e| GraphError::InvalidConfig(format!("io error: {e}")))?;
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split('\t');
            match fields.next() {
                Some("v") => {
                    let vtype = parse_u8(fields.next(), lineno, "vertex type")?;
                    let attrs = decode_attrs(fields.next().unwrap_or("-"), lineno)?;
                    builder.add_vertex(VertexType(vtype), attrs);
                }
                Some("e") => {
                    let src = parse_u32(fields.next(), lineno, "src")?;
                    let dst = parse_u32(fields.next(), lineno, "dst")?;
                    let etype = parse_u8(fields.next(), lineno, "edge type")?;
                    let weight: f32 = fields
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad(lineno, "weight"))?;
                    let attrs = decode_attrs(fields.next().unwrap_or("-"), lineno)?;
                    pending_edges.push((src, dst, etype, weight, attrs));
                }
                other => {
                    return Err(GraphError::InvalidConfig(format!(
                        "line {}: unknown record kind {:?}",
                        lineno + 1,
                        other
                    )))
                }
            }
        }
    }
    for (src, dst, etype, weight, attrs) in pending_edges {
        builder.add_edge_with_attrs(
            VertexId(src),
            VertexId(dst),
            EdgeType(etype),
            weight,
            attrs,
        )?;
    }
    Ok(builder.build())
}

fn encode_attrs(attrs: &AttrVector) -> String {
    if attrs.is_empty() {
        return "-".to_string();
    }
    attrs
        .0
        .iter()
        .map(|a| match a {
            AttrValue::Int(v) => format!("i:{v}"),
            AttrValue::Float(v) => format!("f:{v}"),
            AttrValue::Categorical(v) => format!("c:{v}"),
            AttrValue::Text(s) => format!("t:{}", escape(s)),
            AttrValue::Blob(b) => format!("b:{}", b.len()),
        })
        .collect::<Vec<_>>()
        .join("|")
}

fn decode_attrs(field: &str, lineno: usize) -> Result<AttrVector> {
    if field == "-" || field.is_empty() {
        return Ok(AttrVector::empty());
    }
    let mut vals = Vec::new();
    for part in split_unescaped(field, '|') {
        let (kind, payload) = part.split_once(':').ok_or_else(|| bad(lineno, "attribute field"))?;
        let value = match kind {
            "i" => AttrValue::Int(payload.parse().map_err(|_| bad(lineno, "int attr"))?),
            "f" => AttrValue::Float(payload.parse().map_err(|_| bad(lineno, "float attr"))?),
            "c" => AttrValue::Categorical(
                payload.parse().map_err(|_| bad(lineno, "categorical attr"))?,
            ),
            "t" => AttrValue::Text(unescape(payload)),
            "b" => {
                let len: usize = payload.parse().map_err(|_| bad(lineno, "blob attr"))?;
                AttrValue::Blob(bytes::Bytes::from(vec![0u8; len]))
            }
            _ => return Err(bad(lineno, "attribute kind")),
        };
        vals.push(value);
    }
    Ok(AttrVector(vals))
}

/// Escapes `\`, `|`, tab and newline.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '|' => out.push_str("\\p"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('p') => out.push('|'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Splits on `sep` but not on escaped separators.
fn split_unescaped(s: &str, sep: char) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        if c == '\\' {
            escaped = true;
        } else if c == sep {
            parts.push(&s[start..i]);
            start = i + sep.len_utf8();
        }
    }
    parts.push(&s[start..]);
    parts
}

fn parse_u32(field: Option<&str>, lineno: usize, what: &str) -> Result<u32> {
    field.and_then(|s| s.parse().ok()).ok_or_else(|| bad(lineno, what))
}

fn parse_u8(field: Option<&str>, lineno: usize, what: &str) -> Result<u8> {
    field.and_then(|s| s.parse().ok()).ok_or_else(|| bad(lineno, what))
}

fn bad(lineno: usize, what: &str) -> GraphError {
    GraphError::InvalidConfig(format!("line {}: malformed {what}", lineno + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::TaobaoConfig;

    fn roundtrip(g: &AttributedHeterogeneousGraph) -> AttributedHeterogeneousGraph {
        let mut buf = Vec::new();
        write_graph(g, &mut buf).unwrap();
        read_graph(buf.as_slice()).unwrap()
    }

    #[test]
    fn full_roundtrip_preserves_everything() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let back = roundtrip(&g);
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert_eq!(back.num_edge_records(), g.num_edge_records());
        assert_eq!(back.num_vertex_types(), g.num_vertex_types());
        assert_eq!(back.num_edge_types(), g.num_edge_types());
        for v in g.vertices() {
            assert_eq!(back.vertex_type(v), g.vertex_type(v));
            assert_eq!(back.vertex_attrs(v), g.vertex_attrs(v));
            let a: Vec<_> = g.out_neighbors(v).iter().map(|n| (n.vertex, n.etype)).collect();
            let b: Vec<_> = back.out_neighbors(v).iter().map(|n| (n.vertex, n.etype)).collect();
            assert_eq!(a, b, "adjacency of {v}");
        }
    }

    #[test]
    fn text_attrs_with_special_characters() {
        let mut b = GraphBuilder::directed();
        let v =
            b.add_vertex(VertexType(0), AttrVector(vec![AttrValue::Text("a|b\tc\\d\ne".into())]));
        let u = b.add_vertex(VertexType(0), AttrVector::empty());
        b.add_edge_with_attrs(
            v,
            u,
            EdgeType(0),
            2.5,
            AttrVector(vec![AttrValue::Text("x|y".into()), AttrValue::Int(-7)]),
        )
        .unwrap();
        let g = b.build();
        let back = roundtrip(&g);
        assert_eq!(back.vertex_attrs(v), g.vertex_attrs(v));
        let attr = back.out_neighbors(v)[0].attr;
        assert_eq!(
            back.edge_attr_index().get(attr),
            g.edge_attr_index().get(g.out_neighbors(v)[0].attr)
        );
        assert!((back.out_neighbors(v)[0].weight - 2.5).abs() < 1e-6);
    }

    #[test]
    fn partitioned_parts_concatenate() {
        // Part 0 declares the vertices, part 1 the edges (a common split).
        let part0 = "v\t0\t-\nv\t1\ti:9\n";
        let part1 = "e\t0\t1\t2\t1.5\t-\n";
        let g = read_graph_parts(vec![part0.as_bytes(), part1.as_bytes()]).unwrap();
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_neighbors(VertexId(0))[0].etype, EdgeType(2));
    }

    #[test]
    fn forward_references_are_fine() {
        // Edge lines may precede the vertex declarations they reference.
        let text = "e\t0\t1\t0\t1\t-\nv\t0\t-\nv\t0\t-\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(read_graph("x\t1\n".as_bytes()).is_err());
        assert!(read_graph("v\tnope\t-\n".as_bytes()).is_err());
        assert!(read_graph("e\t0\t1\t0\tNaNish\t-\nv\t0\t-\nv\t0\t-\n".as_bytes()).is_err());
        // Dangling edge: references a vertex that never appears.
        assert!(read_graph("e\t0\t5\t0\t1\t-\nv\t0\t-\n".as_bytes()).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\nv\t0\t-\n# trailing\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 1);
    }

    #[test]
    fn escape_roundtrip() {
        for s in ["plain", "pipe|here", "tab\there", "back\\slash", "multi\nline", "\\"] {
            assert_eq!(unescape(&escape(s)), s);
        }
    }
}
