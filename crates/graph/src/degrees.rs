//! k-hop degree counting and the vertex importance metric (paper Eq. 1).
//!
//! `D_o^(k)(v)` is the number of distinct vertices reachable from `v` within
//! `k` hops following out-edges (excluding `v` itself); `D_i^(k)(v)` is the
//! mirror along in-edges. The importance
//! `Imp^(k)(v) = D_i^(k)(v) / D_o^(k)(v)` drives the storage layer's
//! neighbor-caching decision (Algorithm 2 lines 5–9): a vertex that many
//! others reach (large `D_i`) but whose neighborhood is cheap to replicate
//! (small `D_o`) is worth caching.

use crate::graph::AttributedHeterogeneousGraph;
use crate::ids::VertexId;

/// Reusable BFS scratch for exact k-hop neighbor counting.
///
/// Holds an epoch-stamped visited array so repeated queries on the same graph
/// do not reallocate or clear `O(n)` state.
#[derive(Debug)]
pub struct KhopCounter {
    visited_epoch: Vec<u32>,
    epoch: u32,
    frontier: Vec<VertexId>,
    next: Vec<VertexId>,
}

impl KhopCounter {
    /// Creates scratch space sized for `graph`.
    pub fn new(graph: &AttributedHeterogeneousGraph) -> Self {
        KhopCounter {
            visited_epoch: vec![0; graph.num_vertices()],
            epoch: 0,
            frontier: Vec::new(),
            next: Vec::new(),
        }
    }

    /// Exact `D_o^(k)(v)`: distinct vertices within `k` out-hops of `v`.
    pub fn khop_out(
        &mut self,
        graph: &AttributedHeterogeneousGraph,
        v: VertexId,
        k: usize,
    ) -> usize {
        self.khop(graph, v, k, Direction::Out)
    }

    /// Exact `D_i^(k)(v)`: distinct vertices within `k` in-hops of `v`.
    pub fn khop_in(
        &mut self,
        graph: &AttributedHeterogeneousGraph,
        v: VertexId,
        k: usize,
    ) -> usize {
        self.khop(graph, v, k, Direction::In)
    }

    fn khop(
        &mut self,
        graph: &AttributedHeterogeneousGraph,
        v: VertexId,
        k: usize,
        dir: Direction,
    ) -> usize {
        if k == 0 {
            return 0;
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped; reset stamps so stale marks cannot alias.
            self.visited_epoch.fill(0);
            self.epoch = 1;
        }
        let epoch = self.epoch;
        self.visited_epoch[v.index()] = epoch;
        self.frontier.clear();
        self.frontier.push(v);
        let mut count = 0usize;
        for _ in 0..k {
            self.next.clear();
            for &u in &self.frontier {
                let nbrs = match dir {
                    Direction::Out => graph.out_neighbors(u),
                    Direction::In => graph.in_neighbors(u),
                };
                for n in nbrs {
                    let w = n.vertex;
                    if self.visited_epoch[w.index()] != epoch {
                        self.visited_epoch[w.index()] = epoch;
                        count += 1;
                        self.next.push(w);
                    }
                }
            }
            std::mem::swap(&mut self.frontier, &mut self.next);
            if self.frontier.is_empty() {
                break;
            }
        }
        count
    }
}

#[derive(Clone, Copy)]
enum Direction {
    Out,
    In,
}

/// Precomputed `D_i^(k)` / `D_o^(k)` for every vertex at hops `1..=h`.
#[derive(Debug, Clone)]
pub struct DegreeTable {
    /// Maximum hop depth `h`.
    pub max_hop: usize,
    /// `d_in[k-1][v]` = `D_i^(k)(v)`.
    pub d_in: Vec<Vec<u32>>,
    /// `d_out[k-1][v]` = `D_o^(k)(v)`.
    pub d_out: Vec<Vec<u32>>,
}

impl DegreeTable {
    /// Computes the table with exact BFS counts. `h` is typically 2: the
    /// paper notes "setting h to a small number, usually 2, is enough".
    pub fn compute(graph: &AttributedHeterogeneousGraph, max_hop: usize) -> Self {
        let n = graph.num_vertices();
        let mut counter = KhopCounter::new(graph);
        let mut d_in = vec![vec![0u32; n]; max_hop];
        let mut d_out = vec![vec![0u32; n]; max_hop];
        for v in graph.vertices() {
            for k in 1..=max_hop {
                d_in[k - 1][v.index()] = counter.khop_in(graph, v, k) as u32;
                d_out[k - 1][v.index()] = counter.khop_out(graph, v, k) as u32;
            }
        }
        DegreeTable { max_hop, d_in, d_out }
    }

    /// `D_i^(k)(v)`.
    #[inline]
    pub fn khop_in(&self, v: VertexId, k: usize) -> u32 {
        self.d_in[k - 1][v.index()]
    }

    /// `D_o^(k)(v)`.
    #[inline]
    pub fn khop_out(&self, v: VertexId, k: usize) -> u32 {
        self.d_out[k - 1][v.index()]
    }
}

/// Importance values `Imp^(k)(v)` for all vertices at hops `1..=h`.
#[derive(Debug, Clone)]
pub struct ImportanceTable {
    /// `imp[k-1][v]` = `Imp^(k)(v)`.
    pub imp: Vec<Vec<f64>>,
}

impl ImportanceTable {
    /// Derives importance from a degree table. A vertex with `D_o^(k) = 0`
    /// gets importance 0 (nothing to cache, so it is never worth caching).
    pub fn from_degrees(degrees: &DegreeTable) -> Self {
        let imp = (1..=degrees.max_hop)
            .map(|k| {
                degrees.d_in[k - 1]
                    .iter()
                    .zip(&degrees.d_out[k - 1])
                    .map(|(&di, &dy)| if dy == 0 { 0.0 } else { di as f64 / dy as f64 })
                    .collect()
            })
            .collect();
        ImportanceTable { imp }
    }

    /// `Imp^(k)(v)`.
    #[inline]
    pub fn importance(&self, v: VertexId, k: usize) -> f64 {
        self.imp[k - 1][v.index()]
    }

    /// Fraction of vertices with `Imp^(k) >= threshold` — the y-axis of the
    /// paper's Figure 8.
    pub fn cache_rate(&self, k: usize, threshold: f64) -> f64 {
        let row = &self.imp[k - 1];
        if row.is_empty() {
            return 0.0;
        }
        row.iter().filter(|&&x| x >= threshold).count() as f64 / row.len() as f64
    }

    /// Vertices sorted by descending `Imp^(k)` — used by the cache-budget
    /// experiments (Figure 9).
    pub fn ranked(&self, k: usize) -> Vec<VertexId> {
        let row = &self.imp[k - 1];
        let mut ids: Vec<VertexId> = (0..row.len() as u32).map(VertexId).collect();
        ids.sort_by(|a, b| {
            row[b.index()].partial_cmp(&row[a.index()]).unwrap_or(std::cmp::Ordering::Equal)
        });
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrVector;
    use crate::graph::GraphBuilder;
    use crate::ids::well_known::*;

    /// A path 0 -> 1 -> 2 -> 3.
    fn path4() -> AttributedHeterogeneousGraph {
        let mut b = GraphBuilder::directed();
        let v: Vec<_> = (0..4).map(|_| b.add_vertex(USER, AttrVector::empty())).collect();
        for w in v.windows(2) {
            b.add_edge(w[0], w[1], CLICK, 1.0).unwrap();
        }
        b.build()
    }

    #[test]
    fn khop_counts_on_path() {
        let g = path4();
        let mut c = KhopCounter::new(&g);
        assert_eq!(c.khop_out(&g, VertexId(0), 1), 1);
        assert_eq!(c.khop_out(&g, VertexId(0), 2), 2);
        assert_eq!(c.khop_out(&g, VertexId(0), 3), 3);
        assert_eq!(c.khop_out(&g, VertexId(0), 10), 3);
        assert_eq!(c.khop_in(&g, VertexId(3), 2), 2);
        assert_eq!(c.khop_out(&g, VertexId(3), 2), 0);
        assert_eq!(c.khop_out(&g, VertexId(0), 0), 0);
    }

    #[test]
    fn khop_does_not_double_count_on_diamond() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3: D_o^(2)(0) must count 3 once.
        let mut b = GraphBuilder::directed();
        let v: Vec<_> = (0..4).map(|_| b.add_vertex(USER, AttrVector::empty())).collect();
        b.add_edge(v[0], v[1], CLICK, 1.0).unwrap();
        b.add_edge(v[0], v[2], CLICK, 1.0).unwrap();
        b.add_edge(v[1], v[3], CLICK, 1.0).unwrap();
        b.add_edge(v[2], v[3], CLICK, 1.0).unwrap();
        let g = b.build();
        let mut c = KhopCounter::new(&g);
        assert_eq!(c.khop_out(&g, VertexId(0), 2), 3);
    }

    #[test]
    fn cycle_does_not_count_self() {
        // 0 -> 1 -> 0.
        let mut b = GraphBuilder::directed();
        let a = b.add_vertex(USER, AttrVector::empty());
        let c2 = b.add_vertex(USER, AttrVector::empty());
        b.add_edge(a, c2, CLICK, 1.0).unwrap();
        b.add_edge(c2, a, CLICK, 1.0).unwrap();
        let g = b.build();
        let mut c = KhopCounter::new(&g);
        assert_eq!(c.khop_out(&g, a, 2), 1);
    }

    #[test]
    fn degree_table_matches_counter() {
        let g = path4();
        let t = DegreeTable::compute(&g, 2);
        let mut c = KhopCounter::new(&g);
        for v in g.vertices() {
            for k in 1..=2 {
                assert_eq!(t.khop_out(v, k) as usize, c.khop_out(&g, v, k));
                assert_eq!(t.khop_in(v, k) as usize, c.khop_in(&g, v, k));
            }
        }
    }

    #[test]
    fn importance_star_hub() {
        // Many spokes point at a hub; hub points at one sink.
        // Hub: D_i large, D_o small => high importance, worth caching.
        let mut b = GraphBuilder::directed();
        let hub = b.add_vertex(ITEM, AttrVector::empty());
        let sink = b.add_vertex(ITEM, AttrVector::empty());
        b.add_edge(hub, sink, CLICK, 1.0).unwrap();
        for _ in 0..50 {
            let s = b.add_vertex(USER, AttrVector::empty());
            b.add_edge(s, hub, CLICK, 1.0).unwrap();
        }
        let g = b.build();
        let t = DegreeTable::compute(&g, 1);
        let imp = ImportanceTable::from_degrees(&t);
        assert!(imp.importance(hub, 1) >= 50.0);
        assert_eq!(imp.importance(sink, 1), 0.0); // D_o = 0 guard
        assert_eq!(imp.ranked(1)[0], hub);
    }

    #[test]
    fn cache_rate_monotone_in_threshold() {
        let g = path4();
        let t = DegreeTable::compute(&g, 2);
        let imp = ImportanceTable::from_degrees(&t);
        let r1 = imp.cache_rate(1, 0.0);
        let r2 = imp.cache_rate(1, 0.5);
        let r3 = imp.cache_rate(1, 2.0);
        assert!(r1 >= r2 && r2 >= r3);
        assert!(r1 <= 1.0 && r3 >= 0.0);
    }
}
