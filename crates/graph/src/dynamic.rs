//! Dynamic graphs: snapshot series `G(1), G(2), ..., G(T)` (paper §2) with
//! per-step deltas labelled *normal evolution* vs *burst links* — the split
//! the Evolving GNN (paper §4.2) learns from.

use crate::error::GraphError;
use crate::graph::AttributedHeterogeneousGraph;
use crate::ids::{EdgeType, VertexId};
use crate::Result;

/// Whether an edge change belongs to the normal drift of the graph or to a
/// rare, abnormal burst (paper §4.2: "burst links representing rare and
/// abnormal evolving edges").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvolutionKind {
    /// Ordinary churn (the majority of reasonable changes).
    Normal,
    /// Abnormal burst change.
    Burst,
}

/// One edge addition or removal in a snapshot delta.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeEvent {
    /// Source endpoint.
    pub src: VertexId,
    /// Destination endpoint.
    pub dst: VertexId,
    /// Edge type.
    pub etype: EdgeType,
    /// Normal or burst evolution.
    pub kind: EvolutionKind,
}

/// The changes between snapshot `t-1` and snapshot `t`.
#[derive(Debug, Clone, Default)]
pub struct SnapshotDelta {
    /// Edges present in `G(t)` but not `G(t-1)`.
    pub added: Vec<EdgeEvent>,
    /// Edges present in `G(t-1)` but not `G(t)`.
    pub removed: Vec<EdgeEvent>,
}

impl SnapshotDelta {
    /// Added events of one evolution kind.
    pub fn added_of(&self, kind: EvolutionKind) -> impl Iterator<Item = &EdgeEvent> {
        self.added.iter().filter(move |e| e.kind == kind)
    }
}

/// A series of graph snapshots with aligned deltas.
///
/// Invariant: `deltas.len() == snapshots.len()`, and `deltas[0]` is empty
/// (there is nothing before the first snapshot).
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    snapshots: Vec<AttributedHeterogeneousGraph>,
    deltas: Vec<SnapshotDelta>,
}

impl DynamicGraph {
    /// Builds a dynamic graph, validating the snapshot/delta alignment.
    pub fn new(
        snapshots: Vec<AttributedHeterogeneousGraph>,
        deltas: Vec<SnapshotDelta>,
    ) -> Result<Self> {
        if snapshots.is_empty() {
            return Err(GraphError::InvalidConfig("dynamic graph needs >= 1 snapshot".into()));
        }
        if snapshots.len() != deltas.len() {
            return Err(GraphError::InvalidConfig(format!(
                "snapshot/delta mismatch: {} snapshots vs {} deltas",
                snapshots.len(),
                deltas.len()
            )));
        }
        Ok(DynamicGraph { snapshots, deltas })
    }

    /// Number of timestamps `T`.
    pub fn num_snapshots(&self) -> usize {
        self.snapshots.len()
    }

    /// The graph at timestamp `t` (0-based).
    pub fn snapshot(&self, t: usize) -> Result<&AttributedHeterogeneousGraph> {
        self.snapshots.get(t).ok_or(GraphError::SnapshotOutOfRange { t, len: self.snapshots.len() })
    }

    /// All snapshots in order.
    pub fn snapshots(&self) -> &[AttributedHeterogeneousGraph] {
        &self.snapshots
    }

    /// All deltas in order (`deltas()[t]` transforms `t-1` into `t`).
    pub fn deltas(&self) -> &[SnapshotDelta] {
        &self.deltas
    }

    /// The delta leading into snapshot `t`.
    pub fn delta(&self, t: usize) -> Result<&SnapshotDelta> {
        self.deltas.get(t).ok_or(GraphError::SnapshotOutOfRange { t, len: self.deltas.len() })
    }

    /// Total burst events across the whole series.
    pub fn total_burst_events(&self) -> usize {
        self.deltas
            .iter()
            .map(|d| {
                d.added.iter().filter(|e| e.kind == EvolutionKind::Burst).count()
                    + d.removed.iter().filter(|e| e.kind == EvolutionKind::Burst).count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::erdos_renyi;

    #[test]
    fn validates_alignment() {
        let g = erdos_renyi(10, 20, 0).unwrap();
        assert!(DynamicGraph::new(vec![], vec![]).is_err());
        assert!(DynamicGraph::new(vec![g.clone()], vec![]).is_err());
        let d = DynamicGraph::new(vec![g], vec![SnapshotDelta::default()]).unwrap();
        assert_eq!(d.num_snapshots(), 1);
    }

    #[test]
    fn snapshot_access_and_errors() {
        let g = erdos_renyi(10, 20, 0).unwrap();
        let d = DynamicGraph::new(
            vec![g.clone(), g],
            vec![SnapshotDelta::default(), SnapshotDelta::default()],
        )
        .unwrap();
        assert!(d.snapshot(1).is_ok());
        assert!(matches!(d.snapshot(2), Err(GraphError::SnapshotOutOfRange { .. })));
        assert!(d.delta(1).is_ok());
    }

    #[test]
    fn burst_filter() {
        let ev = |kind| EdgeEvent { src: VertexId(0), dst: VertexId(1), etype: EdgeType(0), kind };
        let delta = SnapshotDelta {
            added: vec![ev(EvolutionKind::Normal), ev(EvolutionKind::Burst)],
            removed: vec![],
        };
        assert_eq!(delta.added_of(EvolutionKind::Burst).count(), 1);
        assert_eq!(delta.added_of(EvolutionKind::Normal).count(), 1);
        let g = erdos_renyi(4, 4, 0).unwrap();
        let d = DynamicGraph::new(vec![g], vec![delta]).unwrap();
        assert_eq!(d.total_burst_events(), 1);
    }
}
