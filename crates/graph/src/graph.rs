//! The Attributed Heterogeneous Graph and its builder.
//!
//! Layout is a sorted CSR: for each vertex the out-neighbors (and separately
//! the in-neighbors) live in one contiguous slice, internally sorted by edge
//! type. A per-edge-type neighborhood is therefore a contiguous sub-slice
//! located with two binary searches — the access pattern the NEIGHBORHOOD
//! samplers (paper §3.3) rely on.
//!
//! Attribute payloads are **not** stored in the adjacency records; both the
//! vertex table and the neighbor records carry only an [`AttrId`] into the
//! interning indices `I_V` / `I_E` (paper §3.2, Figure 4).

use crate::attr::{AttrId, AttrIndex, AttrVector};
use crate::error::GraphError;
use crate::ids::{EdgeId, EdgeType, VertexId, VertexType};
use crate::Result;

/// One adjacency record: the far endpoint of an edge plus the edge's type,
/// weight and interned attribute id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The far endpoint (destination for out-records, source for in-records).
    pub vertex: VertexId,
    /// Edge type.
    pub etype: EdgeType,
    /// Edge weight `W(u, v) > 0`.
    pub weight: f32,
    /// Interned edge attribute record in `I_E`.
    pub attr: AttrId,
    /// Stable id of the underlying edge (shared by the out- and in-record).
    pub edge: EdgeId,
}

/// A full edge record as returned by [`AttributedHeterogeneousGraph::edge`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeRecord {
    /// Source endpoint.
    pub src: VertexId,
    /// Destination endpoint.
    pub dst: VertexId,
    /// Edge type.
    pub etype: EdgeType,
    /// Edge weight.
    pub weight: f32,
    /// Interned edge attributes.
    pub attr: AttrId,
}

/// A borrowed per-edge-type view over a vertex's adjacency.
pub type AdjacencySlice<'a> = &'a [Neighbor];

/// The AHG `G = (V, E, W, T_V, T_E, A_V, A_E)` of paper Section 2.
///
/// Immutable once built (the dynamic-graph layer composes snapshots instead
/// of mutating, matching the paper's snapshot formulation `G(1..T)`).
#[derive(Debug, Clone)]
pub struct AttributedHeterogeneousGraph {
    // Vertex tables (dense, indexed by VertexId).
    vtypes: Vec<VertexType>,
    vattrs: Vec<AttrId>,
    // Out-adjacency CSR, records sorted by (src, etype, dst).
    out_offsets: Vec<usize>,
    out_nbrs: Vec<Neighbor>,
    // In-adjacency CSR, records sorted by (dst, etype, src).
    in_offsets: Vec<usize>,
    in_nbrs: Vec<Neighbor>,
    // Edge lookup: EdgeId -> position in `out_nbrs`, plus the source vertex.
    edge_src: Vec<VertexId>,
    // Attribute interning indices.
    vertex_attr_index: AttrIndex,
    edge_attr_index: AttrIndex,
    // Type universes and per-type rosters.
    num_vertex_types: u8,
    num_edge_types: u8,
    vertices_by_type: Vec<Vec<VertexId>>,
    edges_by_type: Vec<Vec<EdgeId>>,
    directed: bool,
    logical_edges: usize,
}

impl AttributedHeterogeneousGraph {
    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vtypes.len()
    }

    /// Number of *logical* edges `m` (an undirected edge counts once even
    /// though it is stored as two directed records).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.logical_edges
    }

    /// Number of stored directed edge records.
    #[inline]
    pub fn num_edge_records(&self) -> usize {
        self.out_nbrs.len()
    }

    /// Whether edges were added as directed records.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Size of the vertex type universe `|F_V|`.
    #[inline]
    pub fn num_vertex_types(&self) -> u8 {
        self.num_vertex_types
    }

    /// Size of the edge type universe `|F_E|`.
    #[inline]
    pub fn num_edge_types(&self) -> u8 {
        self.num_edge_types
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vtypes.len() as u32).map(VertexId)
    }

    /// Checks a vertex id, returning a typed error for out-of-range ids.
    #[inline]
    pub fn check_vertex(&self, v: VertexId) -> Result<()> {
        if v.index() < self.vtypes.len() {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfRange { vertex: v, len: self.vtypes.len() })
        }
    }

    /// Type of a vertex (`T_V`).
    #[inline]
    pub fn vertex_type(&self, v: VertexId) -> VertexType {
        self.vtypes[v.index()]
    }

    /// Interned vertex attribute id.
    #[inline]
    pub fn vertex_attr_id(&self, v: VertexId) -> AttrId {
        self.vattrs[v.index()]
    }

    /// The vertex attribute record `A_V(v)`, resolved through `I_V`.
    #[inline]
    pub fn vertex_attrs(&self, v: VertexId) -> &AttrVector {
        self.vertex_attr_index
            .get(self.vattrs[v.index()])
            // invariant: vattrs entries are produced by interning during
            // build, so the id is always present
            .expect("vertex attr ids are always interned at build time")
    }

    /// The vertex attribute interning index `I_V`.
    #[inline]
    pub fn vertex_attr_index(&self) -> &AttrIndex {
        &self.vertex_attr_index
    }

    /// The edge attribute interning index `I_E`.
    #[inline]
    pub fn edge_attr_index(&self) -> &AttrIndex {
        &self.edge_attr_index
    }

    /// All vertices of a given type, in id order.
    pub fn vertices_of_type(&self, t: VertexType) -> &[VertexId] {
        static EMPTY: Vec<VertexId> = Vec::new();
        self.vertices_by_type.get(t.index()).unwrap_or(&EMPTY)
    }

    /// All edges of a given type.
    pub fn edges_of_type(&self, t: EdgeType) -> &[EdgeId] {
        static EMPTY: Vec<EdgeId> = Vec::new();
        self.edges_by_type.get(t.index()).unwrap_or(&EMPTY)
    }

    /// Out-neighbor records of `v` (all edge types), sorted by edge type.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> AdjacencySlice<'_> {
        let i = v.index();
        &self.out_nbrs[self.out_offsets[i]..self.out_offsets[i + 1]]
    }

    /// In-neighbor records of `v` (all edge types), sorted by edge type.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> AdjacencySlice<'_> {
        let i = v.index();
        &self.in_nbrs[self.in_offsets[i]..self.in_offsets[i + 1]]
    }

    /// Out-neighbors of `v` restricted to one edge type — a contiguous
    /// sub-slice found by binary search, O(log d + k).
    pub fn out_neighbors_typed(&self, v: VertexId, etype: EdgeType) -> AdjacencySlice<'_> {
        typed_subslice(self.out_neighbors(v), etype)
    }

    /// In-neighbors of `v` restricted to one edge type.
    pub fn in_neighbors_typed(&self, v: VertexId, etype: EdgeType) -> AdjacencySlice<'_> {
        typed_subslice(self.in_neighbors(v), etype)
    }

    /// Direct out-degree `D_o^(1)(v)`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        let i = v.index();
        self.out_offsets[i + 1] - self.out_offsets[i]
    }

    /// Direct in-degree `D_i^(1)(v)`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        let i = v.index();
        self.in_offsets[i + 1] - self.in_offsets[i]
    }

    /// Full edge record for an [`EdgeId`].
    pub fn edge(&self, e: EdgeId) -> EdgeRecord {
        let n = &self.out_nbrs[e.index()];
        EdgeRecord {
            src: self.edge_src[e.index()],
            dst: n.vertex,
            etype: n.etype,
            weight: n.weight,
            attr: n.attr,
        }
    }

    /// Sum of out-edge weights of `v`, used by weighted samplers.
    pub fn out_weight_sum(&self, v: VertexId) -> f32 {
        self.out_neighbors(v).iter().map(|n| n.weight).sum()
    }

    /// Approximate bytes held by adjacency structure (the `O(n·N_D)` term).
    pub fn adjacency_bytes(&self) -> usize {
        (self.out_nbrs.len() + self.in_nbrs.len()) * std::mem::size_of::<Neighbor>()
            + (self.out_offsets.len() + self.in_offsets.len()) * std::mem::size_of::<usize>()
            + self.edge_src.len() * std::mem::size_of::<VertexId>()
    }

    /// Approximate bytes held by attribute payloads (the `N_A·N_L` term).
    pub fn attribute_bytes(&self) -> usize {
        self.vertex_attr_index.approx_bytes() + self.edge_attr_index.approx_bytes()
    }

    /// What the *naive* co-located layout would cost: every adjacency record
    /// carrying its full attribute payload inline. Used in tests and docs to
    /// demonstrate the §3.2 storage saving.
    pub fn naive_attribute_bytes(&self) -> usize {
        let vertex: usize = self
            .vattrs
            .iter()
            .map(|&a| self.vertex_attr_index.get(a).map_or(0, AttrVector::approx_bytes))
            .sum();
        let edge: usize = self
            .out_nbrs
            .iter()
            .map(|n| self.edge_attr_index.get(n.attr).map_or(0, AttrVector::approx_bytes))
            .sum();
        vertex + edge
    }
}

/// Locates the contiguous `etype` run inside a type-sorted adjacency slice.
fn typed_subslice(slice: &[Neighbor], etype: EdgeType) -> &[Neighbor] {
    let start = slice.partition_point(|n| n.etype < etype);
    let end = slice.partition_point(|n| n.etype <= etype);
    &slice[start..end]
}

/// Incremental builder for [`AttributedHeterogeneousGraph`].
///
/// Vertices must be added before edges referencing them; `build` sorts the
/// edge set once and assembles both CSR directions.
#[derive(Debug)]
pub struct GraphBuilder {
    directed: bool,
    vtypes: Vec<VertexType>,
    vattrs: Vec<AttrId>,
    edges: Vec<PendingEdge>,
    vertex_attr_index: AttrIndex,
    edge_attr_index: AttrIndex,
    max_vertex_type: u8,
    max_edge_type: u8,
}

#[derive(Debug, Clone, Copy)]
struct PendingEdge {
    src: VertexId,
    dst: VertexId,
    etype: EdgeType,
    weight: f32,
    attr: AttrId,
}

impl GraphBuilder {
    /// Builder for a directed graph (edge `(u,v)` ≠ `(v,u)`).
    pub fn directed() -> Self {
        Self::new(true)
    }

    /// Builder for an undirected graph: each added edge is materialized as
    /// two directed records sharing weight and attributes.
    pub fn undirected() -> Self {
        Self::new(false)
    }

    fn new(directed: bool) -> Self {
        GraphBuilder {
            directed,
            vtypes: Vec::new(),
            vattrs: Vec::new(),
            edges: Vec::new(),
            vertex_attr_index: AttrIndex::new(),
            edge_attr_index: AttrIndex::new(),
            max_vertex_type: 0,
            max_edge_type: 0,
        }
    }

    /// Pre-sizes internal buffers.
    pub fn with_capacity(mut self, vertices: usize, edges: usize) -> Self {
        self.vtypes.reserve(vertices);
        self.vattrs.reserve(vertices);
        self.edges.reserve(edges);
        self
    }

    /// Adds a vertex, returning its dense id.
    pub fn add_vertex(&mut self, vtype: VertexType, attrs: AttrVector) -> VertexId {
        let id = VertexId(self.vtypes.len() as u32);
        self.max_vertex_type = self.max_vertex_type.max(vtype.0);
        self.vtypes.push(vtype);
        let attr = self.vertex_attr_index.intern(attrs);
        self.vattrs.push(attr);
        id
    }

    /// Adds `count` vertices of one type with no attributes; returns the
    /// first id of the contiguous block.
    pub fn add_vertices(&mut self, vtype: VertexType, count: usize) -> VertexId {
        let first = VertexId(self.vtypes.len() as u32);
        self.max_vertex_type = self.max_vertex_type.max(vtype.0);
        self.vtypes.resize(self.vtypes.len() + count, vtype);
        self.vattrs.resize(self.vattrs.len() + count, AttrId::EMPTY);
        first
    }

    /// Adds an edge with attributes. Both endpoints must already exist and
    /// the weight must be strictly positive (`W: E -> R+`, paper §2).
    pub fn add_edge_with_attrs(
        &mut self,
        src: VertexId,
        dst: VertexId,
        etype: EdgeType,
        weight: f32,
        attrs: AttrVector,
    ) -> Result<()> {
        if src.index() >= self.vtypes.len() || dst.index() >= self.vtypes.len() {
            return Err(GraphError::DanglingEdge { src, dst });
        }
        if weight.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(GraphError::NonPositiveWeight { weight });
        }
        self.max_edge_type = self.max_edge_type.max(etype.0);
        let attr = self.edge_attr_index.intern(attrs);
        self.edges.push(PendingEdge { src, dst, etype, weight, attr });
        Ok(())
    }

    /// Adds an attribute-free edge.
    pub fn add_edge(
        &mut self,
        src: VertexId,
        dst: VertexId,
        etype: EdgeType,
        weight: f32,
    ) -> Result<()> {
        self.add_edge_with_attrs(src, dst, etype, weight, AttrVector::empty())
    }

    /// Number of vertices added so far.
    pub fn num_vertices(&self) -> usize {
        self.vtypes.len()
    }

    /// Number of logical edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Assembles the immutable graph: sorts edge records by `(src, etype,
    /// dst)`, lays out both CSR directions, and builds per-type rosters.
    pub fn build(self) -> AttributedHeterogeneousGraph {
        let n = self.vtypes.len();
        let logical_edges = self.edges.len();

        // Materialize directed records (undirected edges become two records).
        let mut records: Vec<PendingEdge> = if self.directed {
            self.edges
        } else {
            let mut r = Vec::with_capacity(self.edges.len() * 2);
            for e in &self.edges {
                r.push(*e);
                if e.src != e.dst {
                    r.push(PendingEdge { src: e.dst, dst: e.src, ..*e });
                }
            }
            r
        };
        records.sort_unstable_by_key(|e| (e.src, e.etype, e.dst));

        // Out-CSR + edge lookup.
        let mut out_offsets = vec![0usize; n + 1];
        for e in &records {
            out_offsets[e.src.index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_nbrs = Vec::with_capacity(records.len());
        let mut edge_src = Vec::with_capacity(records.len());
        let mut edges_by_type: Vec<Vec<EdgeId>> = vec![Vec::new(); self.max_edge_type as usize + 1];
        for (i, e) in records.iter().enumerate() {
            let id = EdgeId(i as u64);
            out_nbrs.push(Neighbor {
                vertex: e.dst,
                etype: e.etype,
                weight: e.weight,
                attr: e.attr,
                edge: id,
            });
            edge_src.push(e.src);
            edges_by_type[e.etype.index()].push(id);
        }

        // In-CSR: same records re-sorted by (dst, etype, src), keeping EdgeId.
        let mut in_records: Vec<(usize, &PendingEdge)> = records.iter().enumerate().collect();
        in_records.sort_unstable_by_key(|(_, e)| (e.dst, e.etype, e.src));
        let mut in_offsets = vec![0usize; n + 1];
        for (_, e) in &in_records {
            in_offsets[e.dst.index() + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let in_nbrs: Vec<Neighbor> = in_records
            .iter()
            .map(|&(i, e)| Neighbor {
                vertex: e.src,
                etype: e.etype,
                weight: e.weight,
                attr: e.attr,
                edge: EdgeId(i as u64),
            })
            .collect();

        // Per-type vertex rosters.
        let mut vertices_by_type: Vec<Vec<VertexId>> =
            vec![Vec::new(); self.max_vertex_type as usize + 1];
        for (i, t) in self.vtypes.iter().enumerate() {
            vertices_by_type[t.index()].push(VertexId(i as u32));
        }

        AttributedHeterogeneousGraph {
            vtypes: self.vtypes,
            vattrs: self.vattrs,
            out_offsets,
            out_nbrs,
            in_offsets,
            in_nbrs,
            edge_src,
            vertex_attr_index: self.vertex_attr_index,
            edge_attr_index: self.edge_attr_index,
            num_vertex_types: self.max_vertex_type + 1,
            num_edge_types: self.max_edge_type + 1,
            vertices_by_type,
            edges_by_type,
            directed: self.directed,
            logical_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrValue;
    use crate::ids::well_known::*;

    fn toy() -> AttributedHeterogeneousGraph {
        // u0 --click--> i2, u0 --buy--> i3, u1 --click--> i2
        let mut b = GraphBuilder::directed();
        let u0 = b.add_vertex(USER, AttrVector(vec![AttrValue::Int(30)]));
        let u1 = b.add_vertex(USER, AttrVector(vec![AttrValue::Int(25)]));
        let i2 = b.add_vertex(ITEM, AttrVector(vec![AttrValue::Float(9.5)]));
        let i3 = b.add_vertex(ITEM, AttrVector::empty());
        b.add_edge(u0, i2, CLICK, 1.0).unwrap();
        b.add_edge(u0, i3, BUY, 2.0).unwrap();
        b.add_edge(u1, i2, CLICK, 1.0).unwrap();
        b.build()
    }

    #[test]
    fn basic_counts() {
        let g = toy();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_edge_records(), 3);
        assert_eq!(g.num_vertex_types(), 2);
        assert_eq!(g.num_edge_types(), 4); // BUY = type 3 => universe size 4
    }

    #[test]
    fn adjacency_and_types() {
        let g = toy();
        let u0 = VertexId(0);
        assert_eq!(g.out_degree(u0), 2);
        assert_eq!(g.in_degree(VertexId(2)), 2);
        let clicks = g.out_neighbors_typed(u0, CLICK);
        assert_eq!(clicks.len(), 1);
        assert_eq!(clicks[0].vertex, VertexId(2));
        let buys = g.out_neighbors_typed(u0, BUY);
        assert_eq!(buys.len(), 1);
        assert_eq!(buys[0].vertex, VertexId(3));
        assert!(g.out_neighbors_typed(u0, CART).is_empty());
    }

    #[test]
    fn per_type_rosters() {
        let g = toy();
        assert_eq!(g.vertices_of_type(USER), &[VertexId(0), VertexId(1)]);
        assert_eq!(g.vertices_of_type(ITEM), &[VertexId(2), VertexId(3)]);
        assert_eq!(g.edges_of_type(CLICK).len(), 2);
        assert_eq!(g.edges_of_type(BUY).len(), 1);
        assert!(g.edges_of_type(CART).is_empty());
    }

    #[test]
    fn edge_lookup_consistent_both_directions() {
        let g = toy();
        for v in g.vertices() {
            for nbr in g.out_neighbors(v) {
                let rec = g.edge(nbr.edge);
                assert_eq!(rec.src, v);
                assert_eq!(rec.dst, nbr.vertex);
            }
            for nbr in g.in_neighbors(v) {
                let rec = g.edge(nbr.edge);
                assert_eq!(rec.dst, v);
                assert_eq!(rec.src, nbr.vertex);
            }
        }
    }

    #[test]
    fn undirected_mirrors_edges() {
        let mut b = GraphBuilder::undirected();
        let a = b.add_vertex(USER, AttrVector::empty());
        let c = b.add_vertex(USER, AttrVector::empty());
        b.add_edge(a, c, CLICK, 1.0).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.num_edge_records(), 2);
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.out_degree(c), 1);
        assert_eq!(g.in_degree(a), 1);
    }

    #[test]
    fn undirected_self_loop_stored_once() {
        let mut b = GraphBuilder::undirected();
        let a = b.add_vertex(USER, AttrVector::empty());
        b.add_edge(a, a, CLICK, 1.0).unwrap();
        let g = b.build();
        assert_eq!(g.num_edge_records(), 1);
        assert_eq!(g.out_degree(a), 1);
    }

    #[test]
    fn rejects_dangling_and_bad_weight() {
        let mut b = GraphBuilder::directed();
        let a = b.add_vertex(USER, AttrVector::empty());
        assert!(matches!(
            b.add_edge(a, VertexId(5), CLICK, 1.0),
            Err(GraphError::DanglingEdge { .. })
        ));
        assert!(matches!(b.add_edge(a, a, CLICK, 0.0), Err(GraphError::NonPositiveWeight { .. })));
        assert!(matches!(
            b.add_edge(a, a, CLICK, f32::NAN),
            Err(GraphError::NonPositiveWeight { .. })
        ));
    }

    #[test]
    fn separate_storage_beats_naive_when_attrs_repeat() {
        let mut b = GraphBuilder::directed();
        let shared = AttrVector(vec![AttrValue::Text("brand=acme category=shoes".into())]);
        let hub = b.add_vertex(ITEM, shared.clone());
        for _ in 0..200 {
            let v = b.add_vertex(USER, shared.clone());
            b.add_edge_with_attrs(v, hub, CLICK, 1.0, shared.clone()).unwrap();
        }
        let g = b.build();
        // One distinct record in each index (plus the empty sentinel).
        assert_eq!(g.vertex_attr_index().len(), 2);
        assert_eq!(g.edge_attr_index().len(), 2);
        assert!(g.attribute_bytes() * 10 < g.naive_attribute_bytes());
    }

    #[test]
    fn add_vertices_block() {
        let mut b = GraphBuilder::directed();
        let first = b.add_vertices(USER, 10);
        assert_eq!(first, VertexId(0));
        let next = b.add_vertices(ITEM, 5);
        assert_eq!(next, VertexId(10));
        let g = b.build();
        assert_eq!(g.num_vertices(), 15);
        assert_eq!(g.vertex_type(VertexId(12)), ITEM);
    }

    #[test]
    fn out_weight_sum() {
        let g = toy();
        assert!((g.out_weight_sum(VertexId(0)) - 3.0).abs() < 1e-6);
        assert_eq!(g.out_weight_sum(VertexId(3)), 0.0);
    }

    #[test]
    fn check_vertex_bounds() {
        let g = toy();
        assert!(g.check_vertex(VertexId(3)).is_ok());
        assert!(g.check_vertex(VertexId(4)).is_err());
    }
}
