//! Power-law diagnostics for Theorems 1 and 2 (paper appendix).
//!
//! Theorem 1: if 1-hop in/out degrees are power-law distributed, so are the
//! k-hop neighbor counts. Theorem 2: the importance values `Imp^(k)` are then
//! power-law too — i.e. only a small head of vertices is worth caching.
//!
//! [`fit_exponent`] is the discrete maximum-likelihood (Clauset–Shalizi–
//! Newman) estimator `α = 1 + n / Σ ln(x_i / (x_min - 1/2))`, and
//! [`head_mass`] measures how concentrated a distribution is, which the
//! tests and the `theorem_powerlaw` experiment binary use to verify that the
//! synthetic graphs are in the regime the theorems assume.

/// A fitted power-law summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// Estimated exponent `α`.
    pub alpha: f64,
    /// Minimum value used for the fit.
    pub x_min: f64,
    /// Number of samples at or above `x_min`.
    pub tail_len: usize,
}

/// Fits a power-law exponent by discrete MLE on samples `>= x_min`.
///
/// Returns `None` when fewer than `min_tail` samples lie in the tail (the
/// estimate would be meaningless).
pub fn fit_exponent(samples: &[f64], x_min: f64, min_tail: usize) -> Option<PowerLawFit> {
    if x_min <= 0.0 {
        return None;
    }
    let shift = x_min - 0.5;
    let mut n = 0usize;
    let mut log_sum = 0.0f64;
    for &x in samples {
        if x >= x_min {
            n += 1;
            log_sum += (x / shift).ln();
        }
    }
    if n < min_tail || log_sum <= 0.0 {
        return None;
    }
    Some(PowerLawFit { alpha: 1.0 + n as f64 / log_sum, x_min, tail_len: n })
}

/// Fraction of total mass held by the top `head_fraction` of samples.
///
/// Power-law distributions concentrate: the top 20% of a heavy-tailed degree
/// sequence typically holds well over half the total. Uniform-ish
/// distributions sit near `head_fraction`.
pub fn head_mass(samples: &[f64], head_fraction: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let head_len = ((samples.len() as f64 * head_fraction).ceil() as usize).max(1);
    sorted[..head_len.min(sorted.len())].iter().sum::<f64>() / total
}

/// Log-binned histogram `(bin_center, count)` — the standard way to plot a
/// heavy-tailed degree distribution.
pub fn log_histogram(samples: &[f64], bins_per_decade: usize) -> Vec<(f64, usize)> {
    let positive: Vec<f64> = samples.iter().copied().filter(|&x| x > 0.0).collect();
    if positive.is_empty() || bins_per_decade == 0 {
        return Vec::new();
    }
    let max = positive.iter().cloned().fold(f64::MIN, f64::max);
    let num_bins = ((max.log10().max(0.0) + 1.0) * bins_per_decade as f64).ceil() as usize + 1;
    let mut counts = vec![0usize; num_bins];
    for &x in &positive {
        let bin = (x.log10().max(0.0) * bins_per_decade as f64) as usize;
        counts[bin.min(num_bins - 1)] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .filter(|&(_, c)| c > 0)
        .map(|(b, c)| (10f64.powf((b as f64 + 0.5) / bins_per_decade as f64), c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    /// Draws from a discrete power law with exponent `alpha` by inverse CDF.
    fn powerlaw_samples(alpha: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen_range(1e-9..1.0);
                // Continuous approximation: x = x_min * u^{-1/(alpha-1)}.
                (1.0 * u.powf(-1.0 / (alpha - 1.0))).floor().max(1.0)
            })
            .collect()
    }

    #[test]
    fn recovers_known_exponent() {
        for &alpha in &[2.1f64, 2.5, 3.0] {
            let samples = powerlaw_samples(alpha, 50_000, 11);
            let fit = fit_exponent(&samples, 5.0, 100).expect("fit");
            assert!((fit.alpha - alpha).abs() < 0.3, "alpha {alpha} estimated as {}", fit.alpha);
        }
    }

    #[test]
    fn fit_requires_tail() {
        assert!(fit_exponent(&[1.0, 1.0, 1.0], 5.0, 3).is_none());
        assert!(fit_exponent(&[], 1.0, 1).is_none());
        assert!(fit_exponent(&[2.0; 10], -1.0, 1).is_none());
    }

    #[test]
    fn head_mass_separates_heavy_from_uniform() {
        let heavy = powerlaw_samples(2.2, 10_000, 3);
        let uniform: Vec<f64> = (0..10_000).map(|i| 1.0 + (i % 10) as f64).collect();
        assert!(head_mass(&heavy, 0.2) > 0.5);
        assert!(head_mass(&uniform, 0.2) < 0.35);
        assert_eq!(head_mass(&[], 0.2), 0.0);
    }

    #[test]
    fn log_histogram_bins() {
        let h = log_histogram(&[1.0, 1.0, 10.0, 100.0], 1);
        assert!(!h.is_empty());
        let total: usize = h.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 4);
        assert!(log_histogram(&[], 1).is_empty());
        assert!(log_histogram(&[1.0], 0).is_empty());
    }

    #[test]
    fn ba_graph_degrees_are_heavy_tailed() {
        // Empirical Theorem 1 check: BA in-degrees fit a power law.
        let g = crate::generate::barabasi_albert(3_000, 3, 99).unwrap();
        let degs: Vec<f64> = g.vertices().map(|v| g.in_degree(v) as f64).collect();
        let fit = fit_exponent(&degs, 3.0, 50).expect("tail exists");
        assert!(fit.alpha > 1.5 && fit.alpha < 4.5, "alpha {}", fit.alpha);
        assert!(head_mass(&degs, 0.2) > 0.4);
    }
}
