//! Seeded synthetic graph generators.
//!
//! These stand in for the proprietary datasets of the paper's evaluation
//! (Tables 3 and 6): the Taobao user–item AHGs and the Amazon electronics
//! product graph. The generators preserve the properties the experiments
//! depend on — power-law degree distributions (Theorems 1–2), the exact
//! vertex/edge/attribute *type* structure, and attribute redundancy — while
//! scale is a parameter. See `DESIGN.md` §1 for the substitution table.

use crate::attr::{AttrValue, AttrVector};
use crate::dynamic::{DynamicGraph, EdgeEvent, EvolutionKind, SnapshotDelta};
use crate::error::GraphError;
use crate::graph::{AttributedHeterogeneousGraph, GraphBuilder};
use crate::ids::{well_known, EdgeType, VertexId, VertexType};
use crate::Result;
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Directed Barabási–Albert-style preferential-attachment graph.
///
/// Each new vertex draws `m_attach` out-edges whose targets are chosen
/// proportionally to current in-degree (+1 smoothing), which yields the
/// power-law in-degree distribution the paper's caching analysis assumes.
pub fn barabasi_albert(
    n: usize,
    m_attach: usize,
    seed: u64,
) -> Result<AttributedHeterogeneousGraph> {
    if n < 2 || m_attach == 0 {
        return Err(GraphError::InvalidConfig(format!(
            "barabasi_albert needs n >= 2 and m_attach >= 1 (got n={n}, m_attach={m_attach})"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::directed().with_capacity(n, n * m_attach);
    b.add_vertices(VertexType(0), n);
    // `targets` is the repeated-endpoint pool: choosing uniformly from it is
    // choosing proportionally to (in-degree + 1).
    let mut targets: Vec<VertexId> = vec![VertexId(0)];
    for v in 1..n as u32 {
        let v = VertexId(v);
        let picks = m_attach.min(v.index());
        let mut chosen = Vec::with_capacity(picks);
        while chosen.len() < picks {
            let t = targets[rng.gen_range(0..targets.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for t in &chosen {
            b.add_edge(v, *t, EdgeType(0), 1.0)?;
            targets.push(*t);
        }
        targets.push(v);
    }
    Ok(b.build())
}

/// Directed Erdős–Rényi graph with exactly `m` edges (self-loops excluded).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Result<AttributedHeterogeneousGraph> {
    if n < 2 {
        return Err(GraphError::InvalidConfig(format!("erdos_renyi needs n >= 2 (got {n})")));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::directed().with_capacity(n, m);
    b.add_vertices(VertexType(0), n);
    for _ in 0..m {
        let src = VertexId(rng.gen_range(0..n as u32));
        let mut dst = VertexId(rng.gen_range(0..n as u32));
        while dst == src {
            dst = VertexId(rng.gen_range(0..n as u32));
        }
        b.add_edge(src, dst, EdgeType(0), 1.0)?;
    }
    Ok(b.build())
}

/// Configuration of the synthetic Taobao-style e-commerce AHG.
///
/// Two vertex types (user, item), four user→item edge types (click, collect,
/// cart, buy) plus item–item co-click edges, 27 user / 32 item attribute
/// fields — the shape of Table 3 — with a linear scale knob.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaobaoConfig {
    /// Number of user vertices.
    pub users: usize,
    /// Number of item vertices.
    pub items: usize,
    /// Number of user→item behavior edges.
    pub ui_edges: usize,
    /// Number of item–item co-occurrence edges.
    pub ii_edges: usize,
    /// Attribute fields per user (paper: 27).
    pub user_attr_fields: usize,
    /// Attribute fields per item (paper: 32).
    pub item_attr_fields: usize,
    /// Number of distinct attribute profiles per vertex type. Small vocab =>
    /// heavy interning dedup, matching production redundancy.
    pub attr_profiles: usize,
    /// Probability that a user→item behavior edge also gets a reverse
    /// item→user edge (exposure / click-through relations — production
    /// graphs store both directions as separate relation tables). 0 keeps
    /// the graph purely user→item.
    pub reverse_ui_prob: f64,
    /// Number of latent interest clusters: each user prefers items of one
    /// cluster (with probability [`INTEREST_AFFINITY`]) — the co-preference
    /// structure that makes held-out behavior edges predictable beyond raw
    /// popularity, as in real behavior graphs. 0 disables clustering.
    pub interest_clusters: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Probability that a clustered user's behavior edge lands in their own
/// interest cluster.
pub const INTEREST_AFFINITY: f64 = 0.7;

impl TaobaoConfig {
    /// Taobao-small at a ~1000× linear downscale of Table 3
    /// (147.97M users / 9.02M items / 442M u-i / 224M i-i edges).
    pub fn small_sim() -> Self {
        TaobaoConfig {
            users: 147_970,
            items: 9_018,
            ui_edges: 442_068,
            ii_edges: 224_129,
            user_attr_fields: 27,
            item_attr_fields: 32,
            attr_profiles: 512,
            reverse_ui_prob: 0.0,
            interest_clusters: 12,
            seed: 0x5eed_a11b_aba1,
        }
    }

    /// Taobao-large: six times the storage footprint of small, as in the paper.
    pub fn large_sim() -> Self {
        TaobaoConfig {
            users: 483_215,
            items: 9_683,
            ui_edges: 2_400_000,
            ii_edges: 231_085,
            ..Self::small_sim()
        }
    }

    /// A miniature instance for unit tests and doc examples.
    pub fn tiny() -> Self {
        TaobaoConfig {
            users: 200,
            items: 50,
            ui_edges: 1_000,
            ii_edges: 200,
            user_attr_fields: 4,
            item_attr_fields: 5,
            attr_profiles: 16,
            reverse_ui_prob: 0.0,
            interest_clusters: 4,
            seed: 7,
        }
    }

    /// Scales vertex and edge counts by `f` (attribute shape unchanged).
    pub fn scaled(mut self, f: f64) -> Self {
        self.users = ((self.users as f64 * f) as usize).max(2);
        self.items = ((self.items as f64 * f) as usize).max(2);
        self.ui_edges = ((self.ui_edges as f64 * f) as usize).max(1);
        self.ii_edges = (self.ii_edges as f64 * f) as usize;
        self
    }

    /// Generates the AHG. Item popularity is power-law (Zipf-like rank
    /// weights) so the importance distribution matches Theorem 2's regime;
    /// user activity is mildly skewed.
    pub fn generate(&self) -> Result<AttributedHeterogeneousGraph> {
        if self.users == 0 || self.items == 0 {
            return Err(GraphError::InvalidConfig("users and items must be > 0".into()));
        }
        if self.attr_profiles == 0 {
            return Err(GraphError::InvalidConfig("attr_profiles must be > 0".into()));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut b = GraphBuilder::directed()
            .with_capacity(self.users + self.items, self.ui_edges + self.ii_edges);

        // Pre-build a small vocabulary of attribute profiles per vertex type.
        let user_profiles: Vec<AttrVector> = (0..self.attr_profiles)
            .map(|p| user_profile(p as u32, self.user_attr_fields))
            .collect();
        let item_profiles: Vec<AttrVector> = (0..self.attr_profiles)
            .map(|p| item_profile(p as u32, self.item_attr_fields))
            .collect();

        for _ in 0..self.users {
            let profile = &user_profiles[rng.gen_range(0..user_profiles.len())];
            b.add_vertex(well_known::USER, profile.clone());
        }
        let item_base = self.users as u32;
        for _ in 0..self.items {
            let profile = &item_profiles[rng.gen_range(0..item_profiles.len())];
            b.add_vertex(well_known::ITEM, profile.clone());
        }

        // Zipf-like item popularity: item at rank r has weight 1/(r+1)^0.8.
        let item_sampler = ZipfSampler::new(self.items, 0.8);
        // Interest clusters: user u prefers items with i % k == u % k.
        let k = self.interest_clusters;
        // User activity: mild skew via squared uniform.
        let behavior = [
            (well_known::CLICK, 0.60f64),
            (well_known::COLLECT, 0.15),
            (well_known::CART, 0.15),
            (well_known::BUY, 0.10),
        ];
        for _ in 0..self.ui_edges {
            let u = skewed_index(&mut rng, self.users);
            let mut i = item_sampler.sample(&mut rng);
            if k > 1 && rng.gen::<f64>() < INTEREST_AFFINITY {
                // Redraw (bounded) until the item falls in u's cluster —
                // preserves the Zipf popularity profile within the cluster.
                for _ in 0..8 {
                    if i % k == u % k {
                        break;
                    }
                    i = item_sampler.sample(&mut rng);
                }
            }
            let etype = pick_weighted(&mut rng, &behavior);
            let weight = 1.0 + rng.gen::<f32>();
            let (user, item) = (VertexId(u as u32), VertexId(item_base + i as u32));
            b.add_edge(user, item, etype, weight)?;
            // Guarded so prob = 0 draws nothing and leaves the RNG stream
            // (and therefore every seeded graph) unchanged.
            if self.reverse_ui_prob > 0.0 && rng.gen::<f64>() < self.reverse_ui_prob {
                b.add_edge(item, user, etype, weight)?;
            }
        }
        // Item–item co-click edges between popular items, biased toward the
        // same interest cluster (co-occurrence is cluster-driven).
        for _ in 0..self.ii_edges {
            let a = item_sampler.sample(&mut rng);
            let mut c = item_sampler.sample(&mut rng);
            if self.items > 1 {
                let want_same = k > 1 && rng.gen::<f64>() < INTEREST_AFFINITY;
                for _ in 0..8 {
                    if c != a && (!want_same || c % k == a % k) {
                        break;
                    }
                    c = item_sampler.sample(&mut rng);
                }
                while c == a {
                    c = item_sampler.sample(&mut rng);
                }
            }
            b.add_edge(
                VertexId(item_base + a as u32),
                VertexId(item_base + c as u32),
                well_known::CLICK,
                1.0,
            )?;
        }
        Ok(b.build())
    }
}

/// Synthetic Amazon electronics product graph at the exact scale of Table 6:
/// 10,166 vertices, 148,865 edges, one vertex type, two edge types
/// (co-view / co-buy). Topology is preferential-attachment (product
/// co-occurrence graphs are heavy-tailed); ~70% of edges are co-view.
pub fn amazon_sim(seed: u64) -> Result<AttributedHeterogeneousGraph> {
    amazon_sim_scaled(10_166, 148_865, seed)
}

/// The Amazon-style generator with explicit scale (used by quick tests).
pub fn amazon_sim_scaled(n: usize, m: usize, seed: u64) -> Result<AttributedHeterogeneousGraph> {
    if n < 2 {
        return Err(GraphError::InvalidConfig("amazon_sim needs n >= 2".into()));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::undirected().with_capacity(n, m);
    for p in 0..n {
        b.add_vertex(
            VertexType(0),
            AttrVector(vec![
                AttrValue::Float(5.0 + (p % 97) as f32 * 10.0), // price band
                AttrValue::Categorical((p % 53) as u32),        // brand
                AttrValue::Categorical((p % 17) as u32),        // sub-category
            ]),
        );
    }
    let sampler = ZipfSampler::new(n, 0.9);
    for _ in 0..m {
        let a = sampler.sample(&mut rng);
        let mut c = sampler.sample(&mut rng);
        // Co-occurrence is category-driven: 70% of pairs share the product's
        // sub-category (id % 17, mirroring the generated attribute), which
        // is what makes co-view/co-buy links predictable beyond popularity.
        let want_same = rng.gen::<f64>() < 0.7;
        for _ in 0..8 {
            if c != a && (!want_same || c % 17 == a % 17) {
                break;
            }
            c = sampler.sample(&mut rng);
        }
        while c == a {
            c = sampler.sample(&mut rng);
        }
        let etype = if rng.gen::<f64>() < 0.7 { well_known::CO_VIEW } else { well_known::CO_BUY };
        b.add_edge(VertexId(a as u32), VertexId(c as u32), etype, 1.0)?;
    }
    Ok(b.build())
}

/// Configuration for dynamic graph sequences `G(1..T)` with normal evolution
/// and rare burst links (paper §4.2, Evolving GNN).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicConfig {
    /// Vertices in every snapshot (the vertex set is fixed; edges evolve).
    pub vertices: usize,
    /// Edges in the initial snapshot.
    pub initial_edges: usize,
    /// Number of snapshots `T`.
    pub timestamps: usize,
    /// Normal-evolution edges added per step (preferential attachment).
    pub normal_per_step: usize,
    /// Edges removed per step.
    pub removed_per_step: usize,
    /// Burst edges added on burst steps (all incident to one random vertex —
    /// the "rare and abnormal" pattern).
    pub burst_size: usize,
    /// A burst happens every `burst_every` steps (0 = never).
    pub burst_every: usize,
    /// Number of edge types cycled through.
    pub edge_types: u8,
    /// RNG seed.
    pub seed: u64,
}

impl DynamicConfig {
    /// Small default suitable for tests and the Table 11 experiment.
    pub fn small(seed: u64) -> Self {
        DynamicConfig {
            vertices: 2_000,
            initial_edges: 8_000,
            timestamps: 6,
            normal_per_step: 800,
            removed_per_step: 300,
            burst_size: 400,
            burst_every: 2,
            edge_types: 3,
            seed,
        }
    }

    /// Generates the snapshot series plus per-step deltas with evolution
    /// labels (normal vs. burst).
    pub fn generate(&self) -> Result<DynamicGraph> {
        if self.vertices < 2 || self.timestamps == 0 {
            return Err(GraphError::InvalidConfig(
                "dynamic graph needs >= 2 vertices and >= 1 timestamp".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.vertices;
        let k = self.edge_types.max(1) as u32;
        // Live edge list: (src, dst, etype, weight).
        let mut edges: Vec<(VertexId, VertexId, EdgeType, f32)> = Vec::new();
        let mut degree_pool: Vec<u32> = (0..n as u32).collect(); // uniform warm start

        // Latent communities drive both topology and edge semantics: the
        // edge type is the destination's community (what "kind" of vertex
        // is being linked to), and normal evolution prefers same-community
        // targets — so edge types are *learnable* from structure, as in
        // real behavior streams, rather than random labels.
        let community = |v: VertexId| v.0 % k;
        let add_pref_edge = |edges: &mut Vec<(VertexId, VertexId, EdgeType, f32)>,
                             degree_pool: &mut Vec<u32>,
                             rng: &mut StdRng| {
            let src = VertexId(rng.gen_range(0..n as u32));
            let mut dst = VertexId(degree_pool[rng.gen_range(0..degree_pool.len())]);
            // Homophily: retry toward the source's community.
            for _ in 0..4 {
                if dst != src && (community(dst) == community(src) || rng.gen::<f64>() < 0.3) {
                    break;
                }
                dst = VertexId(degree_pool[rng.gen_range(0..degree_pool.len())]);
            }
            while dst == src {
                dst = VertexId(rng.gen_range(0..n as u32));
            }
            let etype = EdgeType(community(dst) as u8);
            edges.push((src, dst, etype, 1.0));
            degree_pool.push(dst.0);
            (src, dst, etype)
        };

        for _ in 0..self.initial_edges {
            add_pref_edge(&mut edges, &mut degree_pool, &mut rng);
        }

        let mut snapshots = Vec::with_capacity(self.timestamps);
        let mut deltas: Vec<SnapshotDelta> = Vec::with_capacity(self.timestamps);
        snapshots.push(build_snapshot(n, &edges));
        deltas.push(SnapshotDelta::default()); // t=0 has no delta

        for t in 1..self.timestamps {
            let mut delta = SnapshotDelta::default();
            // Removals.
            for _ in 0..self.removed_per_step.min(edges.len().saturating_sub(1)) {
                let idx = rng.gen_range(0..edges.len());
                let (src, dst, etype, _) = edges.swap_remove(idx);
                delta.removed.push(EdgeEvent { src, dst, etype, kind: EvolutionKind::Normal });
            }
            // Normal additions.
            for _ in 0..self.normal_per_step {
                let (src, dst, etype) = add_pref_edge(&mut edges, &mut degree_pool, &mut rng);
                delta.added.push(EdgeEvent { src, dst, etype, kind: EvolutionKind::Normal });
            }
            // Burst: one vertex suddenly gains many edges.
            if self.burst_every > 0 && t % self.burst_every == 0 && self.burst_size > 0 {
                let hot = VertexId(rng.gen_range(0..n as u32));
                for _ in 0..self.burst_size {
                    let mut other = VertexId(rng.gen_range(0..n as u32));
                    while other == hot {
                        other = VertexId(rng.gen_range(0..n as u32));
                    }
                    // Burst edges ignore homophily (abnormal structure) but
                    // keep the community-typed semantics.
                    let etype = EdgeType(community(other) as u8);
                    edges.push((hot, other, etype, 1.0));
                    delta.added.push(EdgeEvent {
                        src: hot,
                        dst: other,
                        etype,
                        kind: EvolutionKind::Burst,
                    });
                }
            }
            snapshots.push(build_snapshot(n, &edges));
            deltas.push(delta);
        }
        DynamicGraph::new(snapshots, deltas)
    }
}

fn build_snapshot(
    n: usize,
    edges: &[(VertexId, VertexId, EdgeType, f32)],
) -> AttributedHeterogeneousGraph {
    let mut b = GraphBuilder::directed().with_capacity(n, edges.len());
    b.add_vertices(VertexType(0), n);
    for &(src, dst, etype, w) in edges {
        // invariant: the generator emitted src/dst below n and etype below the
        // declared count
        b.add_edge(src, dst, etype, w).expect("generator edges are always in range");
    }
    b.build()
}

/// Samples indices `0..n` with probability proportional to `1/(rank+1)^s`
/// via inverse-CDF over precomputed cumulative weights.
struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: usize, s: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        ZipfSampler { cumulative }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        // invariant: cumulative is built with one entry per vertex and n > 0
        // is asserted by the generator
        let total = *self.cumulative.last().expect("n > 0");
        let x = rng.gen::<f64>() * total;
        self.cumulative.partition_point(|&c| c < x).min(self.cumulative.len() - 1)
    }
}

/// Mildly skewed index in `0..n` (quadratic transform of a uniform draw).
fn skewed_index(rng: &mut StdRng, n: usize) -> usize {
    let u: f64 = rng.gen();
    ((u * u) * n as f64) as usize % n
}

fn pick_weighted(rng: &mut StdRng, table: &[(EdgeType, f64)]) -> EdgeType {
    let total: f64 = table.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen::<f64>() * total;
    for &(t, w) in table {
        if x < w {
            return t;
        }
        x -= w;
    }
    // invariant: callers pass a non-empty alias table built from at least one
    // weight
    table.last().expect("non-empty table").0
}

fn user_profile(p: u32, fields: usize) -> AttrVector {
    let mut vals = Vec::with_capacity(fields);
    for f in 0..fields as u32 {
        vals.push(match f % 3 {
            0 => AttrValue::Categorical((p * 31 + f) % 8), // gender/location-style codes
            1 => AttrValue::Int(((p * 7 + f) % 60) as i64 + 18), // age-style
            _ => AttrValue::Float(((p * 13 + f) % 100) as f32 / 10.0),
        });
    }
    AttrVector(vals)
}

fn item_profile(p: u32, fields: usize) -> AttrVector {
    let mut vals = Vec::with_capacity(fields);
    for f in 0..fields as u32 {
        vals.push(match f % 3 {
            0 => AttrValue::Float(((p * 17 + f) % 1000) as f32 + 1.0), // price-style
            1 => AttrValue::Categorical((p * 5 + f) % 64),             // brand-style
            _ => AttrValue::Int(((p * 3 + f) % 50) as i64),
        });
    }
    AttrVector(vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::well_known::*;

    #[test]
    fn ba_shape_and_determinism() {
        let g1 = barabasi_albert(500, 3, 42).unwrap();
        let g2 = barabasi_albert(500, 3, 42).unwrap();
        assert_eq!(g1.num_vertices(), 500);
        assert_eq!(g1.num_edges(), g2.num_edges());
        // Same seed => identical adjacency.
        for v in g1.vertices() {
            assert_eq!(g1.out_neighbors(v), g2.out_neighbors(v));
        }
        // Heavy tail: max in-degree far above the mean.
        let max_in = g1.vertices().map(|v| g1.in_degree(v)).max().unwrap();
        let mean_in = g1.num_edge_records() as f64 / g1.num_vertices() as f64;
        assert!(max_in as f64 > 5.0 * mean_in, "max {max_in} mean {mean_in}");
    }

    #[test]
    fn ba_rejects_bad_config() {
        assert!(barabasi_albert(1, 2, 0).is_err());
        assert!(barabasi_albert(10, 0, 0).is_err());
    }

    #[test]
    fn erdos_renyi_edge_count() {
        let g = erdos_renyi(100, 300, 1).unwrap();
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 300);
    }

    #[test]
    fn taobao_tiny_structure() {
        let cfg = TaobaoConfig::tiny();
        let g = cfg.generate().unwrap();
        assert_eq!(g.num_vertices(), cfg.users + cfg.items);
        assert_eq!(g.num_edges(), cfg.ui_edges + cfg.ii_edges);
        assert_eq!(g.num_vertex_types(), 2);
        assert_eq!(g.vertices_of_type(USER).len(), cfg.users);
        assert_eq!(g.vertices_of_type(ITEM).len(), cfg.items);
        // All four behavior types appear at this edge count.
        for t in [CLICK, COLLECT, CART, BUY] {
            assert!(!g.edges_of_type(t).is_empty(), "missing edge type {}", t.0);
        }
        // u->i edges go user to item.
        for &e in g.edges_of_type(BUY) {
            let rec = g.edge(e);
            assert_eq!(g.vertex_type(rec.src), USER);
            assert_eq!(g.vertex_type(rec.dst), ITEM);
        }
    }

    #[test]
    fn taobao_attrs_are_interned() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        // 250 vertices share at most `attr_profiles`-many distinct profiles
        // per type (plus the empty sentinel).
        assert!(g.vertex_attr_index().len() <= 2 * TaobaoConfig::tiny().attr_profiles + 1);
        assert_eq!(g.vertex_attrs(VertexId(0)).len(), TaobaoConfig::tiny().user_attr_fields);
    }

    #[test]
    fn taobao_scaled() {
        let cfg = TaobaoConfig::tiny().scaled(2.0);
        assert_eq!(cfg.users, 400);
        let g = cfg.generate().unwrap();
        assert_eq!(g.num_vertices(), 500);
    }

    #[test]
    fn taobao_determinism() {
        let a = TaobaoConfig::tiny().generate().unwrap();
        let b = TaobaoConfig::tiny().generate().unwrap();
        assert_eq!(a.num_edge_records(), b.num_edge_records());
        for v in a.vertices() {
            assert_eq!(a.out_neighbors(v), b.out_neighbors(v));
        }
    }

    #[test]
    fn amazon_scaled_shape() {
        let g = amazon_sim_scaled(500, 3_000, 9).unwrap();
        assert_eq!(g.num_vertices(), 500);
        assert_eq!(g.num_edges(), 3_000);
        assert_eq!(g.num_vertex_types(), 1);
        assert_eq!(g.num_edge_types(), 2);
        assert!(!g.edges_of_type(CO_VIEW).is_empty());
        assert!(!g.edges_of_type(CO_BUY).is_empty());
    }

    #[test]
    fn dynamic_generation() {
        let cfg = DynamicConfig {
            vertices: 100,
            initial_edges: 300,
            timestamps: 4,
            normal_per_step: 50,
            removed_per_step: 20,
            burst_size: 30,
            burst_every: 2,
            edge_types: 2,
            seed: 5,
        };
        let d = cfg.generate().unwrap();
        assert_eq!(d.num_snapshots(), 4);
        // Burst steps carry burst-labelled events.
        let burst_events: usize = d
            .deltas()
            .iter()
            .map(|dl| dl.added.iter().filter(|e| e.kind == EvolutionKind::Burst).count())
            .sum();
        assert_eq!(burst_events, 30); // only t=2 bursts within 4 steps (t=1..3)
                                      // Edge counts evolve: +50 -20 per step, +30 on burst.
        assert_eq!(d.snapshot(0).unwrap().num_edges(), 300);
        assert_eq!(d.snapshot(1).unwrap().num_edges(), 330);
        assert_eq!(d.snapshot(2).unwrap().num_edges(), 390);
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let s = ZipfSampler::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut head = 0;
        let draws = 10_000;
        for _ in 0..draws {
            if s.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Top 10% of ranks should receive well over half the mass at s=1.
        assert!(head as f64 / draws as f64 > 0.5);
    }
}
