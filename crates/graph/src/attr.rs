//! Separate attribute storage (paper §3.2, Figure 4).
//!
//! Attributes are expensive (0.1 KB–1 KB per record in production, vs. 8
//! bytes per neighbor id) and highly redundant (many vertices share the tag
//! `"gender=male"`). The paper therefore stores attributes **outside** the
//! adjacency table, in two interning indices `I_V` (vertex attributes) and
//! `I_E` (edge attributes); the adjacency table stores only a compact index.
//! This reduces the space cost from `O(n · N_D · N_L)` to
//! `O(n · N_D + N_A · N_L)`.
//!
//! [`AttrIndex`] is that interning index: it deduplicates [`AttrVector`]
//! records and hands out dense [`AttrId`]s.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A single attribute value. Mirrors the mix of structured and unstructured
/// vertex/edge content the paper describes (gender/age/location on users,
/// price/brand on items, ...).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// Integral attribute (e.g. age).
    Int(i64),
    /// Floating-point attribute (e.g. price). Compared bit-exactly when interning.
    Float(f32),
    /// Categorical attribute encoded as a dictionary code (e.g. brand id).
    Categorical(u32),
    /// Free text attribute (e.g. title). Kept short in the simulators.
    Text(String),
    /// Opaque payload (e.g. a serialized image feature).
    Blob(Bytes),
}

impl Eq for AttrValue {}

impl std::hash::Hash for AttrValue {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            AttrValue::Int(v) => {
                state.write_u8(0);
                v.hash(state);
            }
            AttrValue::Float(v) => {
                state.write_u8(1);
                v.to_bits().hash(state);
            }
            AttrValue::Categorical(v) => {
                state.write_u8(2);
                v.hash(state);
            }
            AttrValue::Text(v) => {
                state.write_u8(3);
                v.hash(state);
            }
            AttrValue::Blob(v) => {
                state.write_u8(4);
                v.hash(state);
            }
        }
    }
}

impl AttrValue {
    /// Approximate in-memory footprint in bytes, used by the storage layer's
    /// cost accounting and by the Fig 10 memory report.
    pub fn approx_bytes(&self) -> usize {
        match self {
            AttrValue::Int(_) => 8,
            AttrValue::Float(_) => 4,
            AttrValue::Categorical(_) => 4,
            AttrValue::Text(s) => s.len() + 8,
            AttrValue::Blob(b) => b.len() + 8,
        }
    }

    /// A scalar view used by the default featurizer: ints and floats map to
    /// their value, categoricals to their code, text/blob to their length.
    pub fn as_scalar(&self) -> f32 {
        match self {
            AttrValue::Int(v) => *v as f32,
            AttrValue::Float(v) => *v,
            AttrValue::Categorical(v) => *v as f32,
            AttrValue::Text(s) => s.len() as f32,
            AttrValue::Blob(b) => b.len() as f32,
        }
    }
}

/// An attribute record: the full feature vector `A_V(v)` or `A_E(e)` attached
/// to one vertex or edge.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AttrVector(pub Vec<AttrValue>);

impl AttrVector {
    /// An empty attribute record (plain graphs).
    pub fn empty() -> Self {
        AttrVector(Vec::new())
    }

    /// Number of attribute fields.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the record carries no attributes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Approximate in-memory footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        8 + self.0.iter().map(AttrValue::approx_bytes).sum::<usize>()
    }
}

impl From<Vec<AttrValue>> for AttrVector {
    fn from(v: Vec<AttrValue>) -> Self {
        AttrVector(v)
    }
}

/// Dense id of an interned attribute record inside one [`AttrIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AttrId(pub u32);

impl AttrId {
    /// The id of the shared empty attribute record. [`AttrIndex::new`] always
    /// interns the empty record first, so this id is valid on every index.
    pub const EMPTY: AttrId = AttrId(0);

    /// Index form.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The interning index `I_V` / `I_E` of paper Figure 4: stores each distinct
/// attribute record once and maps it to a dense [`AttrId`].
#[derive(Debug, Clone, Default)]
pub struct AttrIndex {
    records: Vec<AttrVector>,
    lookup: HashMap<AttrVector, AttrId>,
    total_bytes: usize,
}

impl AttrIndex {
    /// Creates an index pre-seeded with the empty record at [`AttrId::EMPTY`].
    pub fn new() -> Self {
        let mut idx = AttrIndex { records: Vec::new(), lookup: HashMap::new(), total_bytes: 0 };
        idx.intern(AttrVector::empty());
        idx
    }

    /// Interns a record, returning the id of the canonical copy.
    pub fn intern(&mut self, record: AttrVector) -> AttrId {
        if let Some(&id) = self.lookup.get(&record) {
            return id;
        }
        let id = AttrId(self.records.len() as u32);
        self.total_bytes += record.approx_bytes();
        self.lookup.insert(record.clone(), id);
        self.records.push(record);
        id
    }

    /// Fetches the record for an id. Ids are only produced by `intern`, so a
    /// miss indicates index mix-up and returns `None` rather than panicking.
    #[inline]
    pub fn get(&self, id: AttrId) -> Option<&AttrVector> {
        self.records.get(id.index())
    }

    /// Number of distinct records stored (`N_A` in the paper's space analysis).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when only the empty record is present.
    pub fn is_empty(&self) -> bool {
        self.records.len() <= 1
    }

    /// Approximate payload bytes held by the index (the `N_A · N_L` term).
    pub fn approx_bytes(&self) -> usize {
        self.total_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(vals: &[i64]) -> AttrVector {
        AttrVector(vals.iter().map(|&v| AttrValue::Int(v)).collect())
    }

    #[test]
    fn empty_record_is_id_zero() {
        let idx = AttrIndex::new();
        assert_eq!(idx.get(AttrId::EMPTY), Some(&AttrVector::empty()));
    }

    #[test]
    fn interning_deduplicates() {
        let mut idx = AttrIndex::new();
        let a = idx.intern(rec(&[1, 2]));
        let b = idx.intern(rec(&[1, 2]));
        let c = idx.intern(rec(&[3]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(idx.len(), 3); // empty + two distinct
    }

    #[test]
    fn dedup_saves_space() {
        // The motivating example from §3.2: many vertices share the same tag.
        let mut idx = AttrIndex::new();
        let shared = AttrVector(vec![AttrValue::Text("gender=male".into())]);
        for _ in 0..1000 {
            idx.intern(shared.clone());
        }
        assert_eq!(idx.len(), 2);
        // Stored once, not a thousand times.
        assert!(idx.approx_bytes() < 2 * shared.approx_bytes());
    }

    #[test]
    fn float_attrs_intern_bit_exact() {
        let mut idx = AttrIndex::new();
        let a = idx.intern(AttrVector(vec![AttrValue::Float(1.5)]));
        let b = idx.intern(AttrVector(vec![AttrValue::Float(1.5)]));
        let c = idx.intern(AttrVector(vec![AttrValue::Float(-1.5)]));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn scalar_views() {
        assert_eq!(AttrValue::Int(7).as_scalar(), 7.0);
        assert_eq!(AttrValue::Categorical(3).as_scalar(), 3.0);
        assert_eq!(AttrValue::Text("ab".into()).as_scalar(), 2.0);
    }

    #[test]
    fn approx_bytes_grows_with_content() {
        let small = rec(&[1]);
        let large = AttrVector(vec![AttrValue::Text("a long attribute value".into())]);
        assert!(large.approx_bytes() > small.approx_bytes());
    }
}
