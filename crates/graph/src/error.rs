//! Error type for graph construction and access.

use crate::ids::{EdgeType, VertexId, VertexType};

/// Errors produced by the graph crate.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A vertex id was out of range for this graph.
    VertexOutOfRange {
        /// The offending id.
        vertex: VertexId,
        /// Number of vertices in the graph.
        len: usize,
    },
    /// An edge referenced a vertex that does not exist yet.
    DanglingEdge {
        /// Source endpoint.
        src: VertexId,
        /// Destination endpoint.
        dst: VertexId,
    },
    /// An edge weight was not strictly positive (`W: E -> R+`).
    NonPositiveWeight {
        /// The offending weight.
        weight: f32,
    },
    /// A vertex type is outside the declared type universe.
    UnknownVertexType(VertexType),
    /// An edge type is outside the declared type universe.
    UnknownEdgeType(EdgeType),
    /// A generator was configured inconsistently.
    InvalidConfig(String),
    /// A dynamic graph operation referenced a missing snapshot.
    SnapshotOutOfRange {
        /// Requested timestamp.
        t: usize,
        /// Number of snapshots available.
        len: usize,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, len } => {
                write!(f, "vertex {vertex} out of range (graph has {len} vertices)")
            }
            GraphError::DanglingEdge { src, dst } => {
                write!(f, "edge ({src}, {dst}) references a vertex that was never added")
            }
            GraphError::NonPositiveWeight { weight } => {
                write!(f, "edge weight {weight} must be strictly positive")
            }
            GraphError::UnknownVertexType(t) => write!(f, "unknown vertex type {}", t.0),
            GraphError::UnknownEdgeType(t) => write!(f, "unknown edge type {}", t.0),
            GraphError::InvalidConfig(msg) => write!(f, "invalid generator config: {msg}"),
            GraphError::SnapshotOutOfRange { t, len } => {
                write!(f, "snapshot {t} out of range (dynamic graph has {len} snapshots)")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::VertexOutOfRange { vertex: VertexId(9), len: 3 };
        assert!(e.to_string().contains("v9"));
        let e = GraphError::NonPositiveWeight { weight: -1.0 };
        assert!(e.to_string().contains("-1"));
        let e = GraphError::InvalidConfig("users must be > 0".into());
        assert!(e.to_string().contains("users"));
    }
}
