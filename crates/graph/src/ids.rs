//! Compact identifier newtypes for vertices, edges, and their types.
//!
//! Identifiers are `u32`-backed: the simulated workloads top out in the tens
//! of millions of vertices, and halving the id width keeps adjacency arrays
//! and caches dense (the paper's production ids are 8 bytes; nothing in the
//! algorithms depends on the width).

use serde::{Deserialize, Serialize};

/// Identifier of a vertex within one [`AttributedHeterogeneousGraph`].
///
/// Vertex ids are dense: a graph with `n` vertices uses ids `0..n`, which is
/// what lets the storage and sampling layers use plain arrays as vertex maps.
///
/// [`AttributedHeterogeneousGraph`]: crate::graph::AttributedHeterogeneousGraph
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl std::fmt::Display for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of an edge: its position in the graph's edge arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u64);

impl EdgeId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A vertex type drawn from `F_V` (e.g. *user*, *item*).
///
/// The paper requires `|F_V| >= 2` and/or `|F_E| >= 2` for an AHG; a simple
/// homogeneous graph uses a single type `VertexType(0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VertexType(pub u8);

impl VertexType {
    /// Index form for dense per-type tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An edge type drawn from `F_E` (e.g. *click*, *collect*, *cart*, *buy*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeType(pub u8);

impl EdgeType {
    /// Index form for dense per-type tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Well-known vertex/edge types for the synthetic e-commerce graphs, matching
/// Figure 2 of the paper (users, items; click / collect / cart / buy).
pub mod well_known {
    use super::{EdgeType, VertexType};

    /// A user vertex.
    pub const USER: VertexType = VertexType(0);
    /// An item (product) vertex.
    pub const ITEM: VertexType = VertexType(1);

    /// User clicked an item. Also used for item–item co-click edges.
    pub const CLICK: EdgeType = EdgeType(0);
    /// User added an item to a preference/collection list.
    pub const COLLECT: EdgeType = EdgeType(1);
    /// User put an item in the cart.
    pub const CART: EdgeType = EdgeType(2);
    /// User bought an item.
    pub const BUY: EdgeType = EdgeType(3);

    /// Co-view relation in the Amazon-style product graph.
    pub const CO_VIEW: EdgeType = EdgeType(0);
    /// Co-buy relation in the Amazon-style product graph.
    pub const CO_BUY: EdgeType = EdgeType(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::from(42u32);
        assert_eq!(v.index(), 42);
        assert_eq!(v.to_string(), "v42");
    }

    #[test]
    fn ids_order_and_hash() {
        assert!(VertexId(1) < VertexId(2));
        assert!(EdgeId(7) < EdgeId(9));
        let mut set = std::collections::HashSet::new();
        set.insert(VertexId(3));
        assert!(set.contains(&VertexId(3)));
    }

    #[test]
    fn type_indices() {
        assert_eq!(well_known::USER.index(), 0);
        assert_eq!(well_known::ITEM.index(), 1);
        assert_eq!(well_known::BUY.index(), 3);
    }
}
