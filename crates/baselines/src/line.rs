//! LINE (Tang et al., WWW'15): first-order proximity (direct neighbors
//! should have similar embeddings) and second-order proximity (vertices with
//! similar neighborhoods should), both trained by edge sampling with
//! negative sampling. `LineOrder::Both` concatenates the two, as in the
//! original paper.

use crate::common::{BaselineEmbeddings, SkipGramParams};
use aligraph_graph::AttributedHeterogeneousGraph;
use aligraph_sampling::{NegativeSampler, TraverseSampler, UnigramNegative, WeightedEdgeTraverse};
use aligraph_tensor::loss::sgns_update;
use aligraph_tensor::EmbeddingTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which proximity order(s) to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineOrder {
    /// First-order only.
    First,
    /// Second-order only.
    Second,
    /// Concatenate both (the paper's LINE(1st+2nd)).
    Both,
}

/// Trains LINE by weighted edge sampling.
pub fn train_line(
    graph: &AttributedHeterogeneousGraph,
    params: &SkipGramParams,
    order: LineOrder,
) -> BaselineEmbeddings {
    match order {
        LineOrder::First => train_order(graph, params, true),
        LineOrder::Second => train_order(graph, params, false),
        LineOrder::Both => {
            let first = train_order(graph, params, true);
            let mut second_params = params.clone();
            second_params.seed ^= 0x11e2;
            let second = train_order(graph, &second_params, false);
            first.concat(&second)
        }
    }
}

fn train_order(
    graph: &AttributedHeterogeneousGraph,
    params: &SkipGramParams,
    first_order: bool,
) -> BaselineEmbeddings {
    let n = graph.num_vertices();
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut input = EmbeddingTable::new(n, params.dim, params.seed);
    // First order: symmetric — the "context" is the same table in spirit;
    // we keep a separate table and sum at readout, which is equivalent up to
    // parameterization. Second order: dedicated context table.
    let mut output = EmbeddingTable::zeros(n, params.dim);
    let traverse = WeightedEdgeTraverse::new(graph);
    let negative = UnigramNegative::new(graph, None, 0.75);

    // Edge samples per epoch: one pass worth of edges.
    let samples = graph.num_edge_records().max(1);
    for _ in 0..params.epochs {
        for _ in 0..samples {
            let etype = aligraph_graph::EdgeType(rng.gen_range(0..graph.num_edge_types()));
            let Some(&e) = traverse.sample_edges(graph, etype, 1, &mut rng).first() else {
                continue;
            };
            let rec = graph.edge(e);
            let negs = negative.sample(graph, &[rec.src, rec.dst], params.negatives, &mut rng);
            let neg_idx: Vec<usize> = negs.iter().map(|x| x.index()).collect();
            sgns_update(
                &mut input,
                &mut output,
                rec.src.index(),
                rec.dst.index(),
                &neg_idx,
                params.lr,
            );
            if first_order {
                // Symmetric update: also treat dst as center.
                sgns_update(
                    &mut input,
                    &mut output,
                    rec.dst.index(),
                    rec.src.index(),
                    &neg_idx,
                    params.lr,
                );
            }
        }
    }
    BaselineEmbeddings::from_tables(&input, &output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aligraph::evaluate_split;
    use aligraph_eval::link_prediction_split;
    use aligraph_graph::generate::amazon_sim_scaled;

    #[test]
    fn line_first_order_beats_chance() {
        let g = amazon_sim_scaled(300, 2_400, 15).unwrap();
        let split = link_prediction_split(&g, 0.15, 16);
        let emb = train_line(&split.train, &SkipGramParams::quick(), LineOrder::First);
        let m = evaluate_split(&emb, &split);
        assert!(m.roc_auc > 0.6, "AUC {}", m.roc_auc);
    }

    #[test]
    fn both_orders_concatenate() {
        let g = amazon_sim_scaled(100, 500, 17).unwrap();
        let params = SkipGramParams::quick();
        let both = train_line(&g, &params, LineOrder::Both);
        assert_eq!(both.matrix.cols, params.dim * 2);
        let second = train_line(&g, &params, LineOrder::Second);
        assert_eq!(second.matrix.cols, params.dim);
    }
}
