//! Node2Vec (Grover & Leskovec, KDD'16): DeepWalk with second-order (p, q)
//! biased walks controlling the BFS/DFS trade-off.

use crate::common::{train_skipgram_on_corpus, BaselineEmbeddings, SkipGramParams};
use aligraph_graph::AttributedHeterogeneousGraph;
use aligraph_sampling::walks::{node2vec_walk, WalkDirection};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Trains Node2Vec with return parameter `p` and in-out parameter `q`.
pub fn train_node2vec(
    graph: &AttributedHeterogeneousGraph,
    params: &SkipGramParams,
    p: f32,
    q: f32,
) -> BaselineEmbeddings {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut corpus = Vec::with_capacity(graph.num_vertices() * params.walks_per_vertex);
    for v in graph.vertices() {
        for _ in 0..params.walks_per_vertex {
            corpus.push(node2vec_walk(
                graph,
                v,
                params.walk_length,
                p,
                q,
                WalkDirection::Both,
                &mut rng,
            ));
        }
    }
    train_skipgram_on_corpus(graph, &corpus, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aligraph::evaluate_split;
    use aligraph_eval::link_prediction_split;
    use aligraph_graph::generate::amazon_sim_scaled;

    #[test]
    fn node2vec_beats_chance() {
        let g = amazon_sim_scaled(300, 2_400, 9).unwrap();
        let split = link_prediction_split(&g, 0.15, 10);
        let emb = train_node2vec(&split.train, &SkipGramParams::quick(), 1.0, 0.5);
        let m = evaluate_split(&emb, &split);
        assert!(m.roc_auc > 0.57, "AUC {}", m.roc_auc);
    }

    #[test]
    fn pq_changes_embeddings() {
        let g = amazon_sim_scaled(120, 600, 11).unwrap();
        let bfsish = train_node2vec(&g, &SkipGramParams::quick(), 0.25, 4.0);
        let dfsish = train_node2vec(&g, &SkipGramParams::quick(), 4.0, 0.25);
        assert_ne!(bfsish.matrix.as_slice(), dfsish.matrix.as_slice());
    }
}
