//! PMNE (Liu et al., ICDM'17): three principled ways to embed a multiplex
//! network, all compared in the paper's Table 8:
//!
//! * **PMNE-n** (network aggregation) — merge all layers into one graph,
//!   then run node2vec;
//! * **PMNE-r** (results aggregation) — embed each layer independently and
//!   concatenate;
//! * **PMNE-c** (layer co-analysis) — one shared embedding trained on walks
//!   that may switch layers, with per-layer context tables.

use crate::common::{train_skipgram_into, BaselineEmbeddings, SkipGramParams};
use crate::node2vec::train_node2vec;
use aligraph_graph::{AttributedHeterogeneousGraph, EdgeType, VertexId};
use aligraph_sampling::walks::{uniform_walk, WalkDirection};
use aligraph_tensor::EmbeddingTable;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which PMNE variant to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmneVariant {
    /// Network aggregation.
    N,
    /// Results aggregation.
    R,
    /// Layer co-analysis.
    C,
}

/// Trains a PMNE variant on a multiplex graph (layers = edge types).
pub fn train_pmne(
    graph: &AttributedHeterogeneousGraph,
    params: &SkipGramParams,
    variant: PmneVariant,
) -> BaselineEmbeddings {
    match variant {
        // The merged network *is* the AHG with types ignored, which is what
        // node2vec over all edge types walks.
        PmneVariant::N => train_node2vec(graph, params, 1.0, 1.0),
        PmneVariant::R => {
            let mut combined: Option<BaselineEmbeddings> = None;
            let mut layer_params = params.clone();
            // Budget-split the dimension so PMNE-r's output dim matches.
            layer_params.dim = (params.dim / graph.num_edge_types() as usize).max(4);
            for t in 0..graph.num_edge_types() {
                layer_params.seed = params.seed + 31 * t as u64;
                let layer = train_layer(graph, &layer_params, EdgeType(t));
                combined = Some(match combined {
                    None => layer,
                    Some(c) => c.concat(&layer),
                });
            }
            // invariant: the builder loop above adds every edge type's view,
            // and graphs are non-empty by construction
            combined.expect("graphs have at least one edge type")
        }
        PmneVariant::C => {
            let n = graph.num_vertices();
            let mut input = EmbeddingTable::new(n, params.dim, params.seed);
            let mut rng = StdRng::seed_from_u64(params.seed ^ 0xc0);
            for t in 0..graph.num_edge_types() {
                // Per-layer context table over the shared input embedding.
                let mut output = EmbeddingTable::zeros(n, params.dim);
                let corpus = layer_corpus(graph, params, EdgeType(t), &mut rng);
                let mut layer_params = params.clone();
                layer_params.seed = params.seed + 77 * t as u64;
                train_skipgram_into(graph, &corpus, &layer_params, &mut input, &mut output);
            }
            BaselineEmbeddings::from_tables(&input, &EmbeddingTable::zeros(n, params.dim))
        }
    }
}

fn layer_corpus(
    graph: &AttributedHeterogeneousGraph,
    params: &SkipGramParams,
    etype: EdgeType,
    rng: &mut StdRng,
) -> Vec<Vec<VertexId>> {
    let mut corpus = Vec::new();
    for v in graph.vertices() {
        if graph.out_neighbors_typed(v, etype).is_empty()
            && graph.in_neighbors_typed(v, etype).is_empty()
        {
            continue;
        }
        for _ in 0..params.walks_per_vertex {
            let walk =
                uniform_walk(graph, v, params.walk_length, Some(etype), WalkDirection::Both, rng);
            if walk.len() > 1 {
                corpus.push(walk);
            }
        }
    }
    corpus
}

fn train_layer(
    graph: &AttributedHeterogeneousGraph,
    params: &SkipGramParams,
    etype: EdgeType,
) -> BaselineEmbeddings {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let corpus = layer_corpus(graph, params, etype, &mut rng);
    crate::common::train_skipgram_on_corpus(graph, &corpus, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aligraph::evaluate_split;
    use aligraph_eval::link_prediction_split;
    use aligraph_graph::generate::amazon_sim_scaled;

    #[test]
    fn all_variants_train_and_beat_chance() {
        let g = amazon_sim_scaled(300, 2_400, 23).unwrap();
        let split = link_prediction_split(&g, 0.15, 24);
        for variant in [PmneVariant::N, PmneVariant::R, PmneVariant::C] {
            let emb = train_pmne(&split.train, &SkipGramParams::quick(), variant);
            let m = evaluate_split(&emb, &split);
            assert!(m.roc_auc > 0.55, "{variant:?} AUC {}", m.roc_auc);
        }
    }

    #[test]
    fn r_variant_splits_dimension() {
        let g = amazon_sim_scaled(100, 500, 25).unwrap();
        let params = SkipGramParams::quick();
        let emb = train_pmne(&g, &params, PmneVariant::R);
        // 2 edge types, dim budget split per layer.
        assert_eq!(emb.matrix.cols, (params.dim / 2).max(4) * 2);
    }
}
