//! Metapath2Vec (Dong et al., KDD'17): random walks constrained to a vertex
//!-type metapath (e.g. user–item–user), then skip-gram. Captures vertex
//! heterogeneity; ignores edge types and attributes.

use crate::common::{train_skipgram_on_corpus, BaselineEmbeddings, SkipGramParams};
use aligraph_graph::{AttributedHeterogeneousGraph, VertexType};
use aligraph_sampling::walks::metapath_walk;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Trains Metapath2Vec with the given metapath pattern. For graphs with one
/// vertex type the pattern collapses to plain DeepWalk-style walks.
pub fn train_metapath2vec(
    graph: &AttributedHeterogeneousGraph,
    params: &SkipGramParams,
    pattern: &[VertexType],
) -> BaselineEmbeddings {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut corpus = Vec::with_capacity(graph.num_vertices() * params.walks_per_vertex);
    for v in graph.vertices() {
        for _ in 0..params.walks_per_vertex {
            let walk = metapath_walk(graph, v, pattern, params.walk_length, &mut rng);
            if walk.len() > 1 {
                corpus.push(walk);
            }
        }
    }
    train_skipgram_on_corpus(graph, &corpus, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aligraph::evaluate_split;
    use aligraph_eval::link_prediction_split;
    use aligraph_graph::generate::TaobaoConfig;
    use aligraph_graph::ids::well_known::*;

    #[test]
    fn metapath_walks_train_on_heterogeneous_graph() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let split = link_prediction_split(&g, 0.15, 18);
        let emb = train_metapath2vec(&split.train, &SkipGramParams::quick(), &[USER, ITEM]);
        let m = evaluate_split(&emb, &split);
        assert!(m.roc_auc > 0.5, "AUC {}", m.roc_auc);
        assert_eq!(emb.matrix.rows, g.num_vertices());
    }
}
