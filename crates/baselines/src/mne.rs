//! MNE (Zhang et al., IJCAI'18): scalable multiplex network embedding — one
//! **common** embedding per vertex plus a small **per-edge-type additional**
//! embedding projected up by a shared per-type matrix:
//! `h_{v,t} = b_v + w · X_tᵀ u_{v,t}`. All parts are trained jointly on
//! per-layer walks.

use crate::common::{BaselineEmbeddings, SkipGramParams};
use aligraph_graph::{AttributedHeterogeneousGraph, EdgeType};
use aligraph_sampling::walks::{skipgram_pairs, uniform_walk, WalkDirection};
use aligraph_sampling::{NegativeSampler, UnigramNegative};
use aligraph_tensor::init::{seeded_rng, xavier_uniform};
use aligraph_tensor::loss::logistic_grad;
use aligraph_tensor::{EmbeddingTable, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Dimension of the per-type additional embeddings (the paper uses a small
/// fraction of the common dimension).
const EXTRA_DIM: usize = 8;

/// Trains MNE and returns the common+projected embeddings averaged over
/// types (the usual readout for single-vector evaluation).
pub fn train_mne(
    graph: &AttributedHeterogeneousGraph,
    params: &SkipGramParams,
) -> BaselineEmbeddings {
    let n = graph.num_vertices();
    let types = graph.num_edge_types() as usize;
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut init_rng = seeded_rng(params.seed ^ 0x33e);

    let mut base = EmbeddingTable::new(n, params.dim, params.seed);
    let mut extra: Vec<EmbeddingTable> =
        (0..types).map(|t| EmbeddingTable::new(n, EXTRA_DIM, params.seed + 3 + t as u64)).collect();
    let x: Vec<Matrix> =
        (0..types).map(|_| xavier_uniform(EXTRA_DIM, params.dim, &mut init_rng)).collect();
    let mut context = EmbeddingTable::zeros(n, params.dim);
    let negative = UnigramNegative::new(graph, None, 0.75);
    let mix = 0.5f32; // the paper's `w`

    let typed_embedding =
        |base: &EmbeddingTable, extra: &[EmbeddingTable], v: usize, t: usize| -> Vec<f32> {
            let mut h = base.row(v).to_vec();
            let u = extra[t].row(v);
            for (j, hj) in h.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (i, &ui) in u.iter().enumerate() {
                    acc += x[t].get(i, j) * ui;
                }
                *hj += mix * acc;
            }
            h
        };

    for _ in 0..params.epochs {
        for t in 0..types {
            let etype = EdgeType(t as u8);
            for v in graph.vertices() {
                if graph.out_neighbors_typed(v, etype).is_empty()
                    && graph.in_neighbors_typed(v, etype).is_empty()
                {
                    continue;
                }
                for _ in 0..params.walks_per_vertex {
                    let walk = uniform_walk(
                        graph,
                        v,
                        params.walk_length,
                        Some(etype),
                        WalkDirection::Both,
                        &mut rng,
                    );
                    for (center, ctx) in skipgram_pairs(&walk, params.window) {
                        let negs =
                            negative.sample(graph, &[center, ctx], params.negatives, &mut rng);
                        for (other, label) in
                            std::iter::once((ctx, true)).chain(negs.into_iter().map(|x| (x, false)))
                        {
                            let h = typed_embedding(&base, &extra, center.index(), t);
                            let s = aligraph_tensor::dot(&h, context.row(other.index()));
                            let g = logistic_grad(s, label);
                            let dh: Vec<f32> = context
                                .row(other.index())
                                .iter()
                                .map(|&c| (g * c).clamp(-1.0, 1.0))
                                .collect();
                            let dctx: Vec<f32> =
                                h.iter().map(|&hi| (g * hi).clamp(-1.0, 1.0)).collect();
                            context.sgd_update(other.index(), &dctx, params.lr);
                            base.sgd_update(center.index(), &dh, params.lr);
                            // Through X_t into the extra embedding.
                            let mut du = vec![0.0f32; EXTRA_DIM];
                            for (i, dui) in du.iter_mut().enumerate() {
                                let mut acc = 0.0;
                                for (j, &dj) in dh.iter().enumerate() {
                                    acc += x[t].get(i, j) * dj;
                                }
                                *dui = mix * acc;
                            }
                            extra[t].sgd_update(center.index(), &du, params.lr);
                        }
                    }
                }
            }
        }
    }

    // Readout: base + mean of per-type projections.
    let mut matrix = Matrix::zeros(n, params.dim);
    for v in 0..n {
        let mut acc = vec![0.0f32; params.dim];
        for t in 0..types {
            let h = typed_embedding(&base, &extra, v, t);
            for (a, &hi) in acc.iter_mut().zip(&h) {
                *a += hi;
            }
        }
        for (m, a) in matrix.row_mut(v).iter_mut().zip(acc) {
            *m = a / types as f32;
        }
    }
    BaselineEmbeddings { matrix }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aligraph::evaluate_split;
    use aligraph_eval::link_prediction_split;
    use aligraph_graph::generate::amazon_sim_scaled;

    #[test]
    fn mne_trains_and_beats_chance() {
        let g = amazon_sim_scaled(300, 2_400, 31).unwrap();
        let split = link_prediction_split(&g, 0.15, 32);
        let emb = train_mne(&split.train, &SkipGramParams::quick());
        let m = evaluate_split(&emb, &split);
        assert!(m.roc_auc > 0.58, "AUC {}", m.roc_auc);
    }

    #[test]
    fn output_shape() {
        let g = amazon_sim_scaled(80, 400, 33).unwrap();
        let params = SkipGramParams::quick();
        let emb = train_mne(&g, &params);
        assert_eq!(emb.matrix.rows, 80);
        assert_eq!(emb.matrix.cols, params.dim);
    }
}
