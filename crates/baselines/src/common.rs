//! Shared machinery for the walk-based baselines: hyper-parameters, the
//! SGNS training loop over a walk corpus, and an edge-type classification
//! head used by the dynamic-graph comparison (Table 11).

use aligraph::EmbeddingModel;
use aligraph_graph::{AttributedHeterogeneousGraph, VertexId};
use aligraph_sampling::walks::skipgram_pairs;
use aligraph_sampling::{NegativeSampler, UnigramNegative};
use aligraph_tensor::loss::{logistic_grad, sgns_update};
use aligraph_tensor::{EmbeddingTable, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters shared by every skip-gram baseline.
#[derive(Debug, Clone)]
pub struct SkipGramParams {
    /// Embedding dimension `d` (the paper uses 200; tests use less).
    pub dim: usize,
    /// Walks started per vertex.
    pub walks_per_vertex: usize,
    /// Walk length.
    pub walk_length: usize,
    /// Skip-gram window.
    pub window: usize,
    /// Negatives per positive.
    pub negatives: usize,
    /// Epochs over the corpus.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl SkipGramParams {
    /// A small, fast configuration for tests.
    pub fn quick() -> Self {
        SkipGramParams {
            dim: 24,
            walks_per_vertex: 2,
            walk_length: 8,
            window: 2,
            negatives: 3,
            epochs: 2,
            lr: 0.05,
            seed: 101,
        }
    }
}

/// Trained baseline embeddings (input + output tables summed, the standard
/// word2vec readout).
#[derive(Debug)]
pub struct BaselineEmbeddings {
    /// `n x d` embedding matrix.
    pub matrix: Matrix,
}

impl BaselineEmbeddings {
    /// From separate input/output tables.
    pub fn from_tables(input: &EmbeddingTable, output: &EmbeddingTable) -> Self {
        let n = input.len();
        let d = input.dim;
        let mut matrix = Matrix::zeros(n, d);
        for i in 0..n {
            for (o, (&a, &b)) in
                matrix.row_mut(i).iter_mut().zip(input.row(i).iter().zip(output.row(i)))
            {
                *o = a + b;
            }
        }
        BaselineEmbeddings { matrix }
    }

    /// Concatenates two embedding sets (e.g. LINE 1st+2nd order).
    pub fn concat(&self, other: &BaselineEmbeddings) -> BaselineEmbeddings {
        BaselineEmbeddings { matrix: self.matrix.hcat(&other.matrix) }
    }
}

impl EmbeddingModel for BaselineEmbeddings {
    fn embedding(&self, v: VertexId) -> Vec<f32> {
        self.matrix.row(v.index()).to_vec()
    }

    fn score(&self, u: VertexId, v: VertexId) -> f32 {
        aligraph_tensor::dot(self.matrix.row(u.index()), self.matrix.row(v.index()))
    }
}

/// Runs SGNS over a prepared walk corpus.
pub fn train_skipgram_on_corpus(
    graph: &AttributedHeterogeneousGraph,
    corpus: &[Vec<VertexId>],
    params: &SkipGramParams,
) -> BaselineEmbeddings {
    let mut input = EmbeddingTable::new(graph.num_vertices(), params.dim, params.seed);
    let mut output = EmbeddingTable::zeros(graph.num_vertices(), params.dim);
    train_skipgram_into(graph, corpus, params, &mut input, &mut output);
    BaselineEmbeddings::from_tables(&input, &output)
}

/// As [`train_skipgram_on_corpus`] but updating caller-owned tables (used by
/// the multiplex baselines that share tables across layers).
pub fn train_skipgram_into(
    graph: &AttributedHeterogeneousGraph,
    corpus: &[Vec<VertexId>],
    params: &SkipGramParams,
    input: &mut EmbeddingTable,
    output: &mut EmbeddingTable,
) {
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x5659);
    let negative = UnigramNegative::new(graph, None, 0.75);
    for _ in 0..params.epochs {
        for walk in corpus {
            for (center, ctx) in skipgram_pairs(walk, params.window) {
                let negs = negative.sample(graph, &[center, ctx], params.negatives, &mut rng);
                let neg_idx: Vec<usize> = negs.iter().map(|n| n.index()).collect();
                sgns_update(input, output, center.index(), ctx.index(), &neg_idx, params.lr);
            }
        }
    }
}

/// A per-edge-type classification head over the pair features
/// `[z_u ⊙ z_v ; z_v]` (affinity plus destination identity), fitted
/// one-vs-rest on training edges. Used by the Table 11 experiment to give
/// every competitor the same multi-class link-prediction head.
#[derive(Debug)]
pub struct EdgeTypeHead {
    /// Per-class weights over the pair features.
    pub weights: Vec<Vec<f32>>,
}

impl EdgeTypeHead {
    /// Fits the head on `graph`'s edges using `model`'s embeddings.
    pub fn fit<M: EmbeddingModel>(
        graph: &AttributedHeterogeneousGraph,
        model: &M,
        epochs: usize,
        lr: f32,
        seed: u64,
    ) -> Self {
        let num_classes = graph.num_edge_types() as usize;
        let dim = model.embedding(VertexId(0)).len();
        let mut weights = vec![vec![0.1f32; 2 * dim]; num_classes];
        let mut rng = StdRng::seed_from_u64(seed);
        let n = graph.num_vertices();
        for _ in 0..epochs {
            for v in graph.vertices() {
                let hu = model.embedding(v);
                for nb in graph.out_neighbors(v) {
                    let feat = pair_features(&hu, &model.embedding(nb.vertex));
                    for (c, w) in weights.iter_mut().enumerate() {
                        let s: f32 = w.iter().zip(&feat).map(|(&a, &b)| a * b).sum();
                        let g = logistic_grad(s, c == nb.etype.index());
                        for (wi, &hi) in w.iter_mut().zip(&feat) {
                            *wi -= lr * g * hi;
                        }
                    }
                }
            }
            // Non-edges as universal negatives.
            for _ in 0..graph.num_edges() / 4 {
                let u = VertexId(rng.gen_range(0..n as u32));
                let v = VertexId(rng.gen_range(0..n as u32));
                if u == v || graph.out_neighbors(u).iter().any(|nb| nb.vertex == v) {
                    continue;
                }
                let feat = pair_features(&model.embedding(u), &model.embedding(v));
                for w in weights.iter_mut() {
                    let s: f32 = w.iter().zip(&feat).map(|(&a, &b)| a * b).sum();
                    let g = logistic_grad(s, false);
                    for (wi, &hi) in w.iter_mut().zip(&feat) {
                        *wi -= lr * g * hi;
                    }
                }
            }
        }
        EdgeTypeHead { weights }
    }

    /// Predicted class of a candidate edge.
    pub fn predict<M: EmbeddingModel>(&self, model: &M, u: VertexId, v: VertexId) -> usize {
        let feat = pair_features(&model.embedding(u), &model.embedding(v));
        self.weights
            .iter()
            .enumerate()
            .map(|(c, w)| (c, w.iter().zip(&feat).map(|(&a, &b)| a * b).sum::<f32>()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }
}

/// The shared pair feature map `[z_u ⊙ z_v ; z_v]`.
fn pair_features(hu: &[f32], hv: &[f32]) -> Vec<f32> {
    let mut f = Vec::with_capacity(hu.len() * 2);
    f.extend(hu.iter().zip(hv).map(|(&a, &b)| a * b));
    f.extend_from_slice(hv);
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use aligraph_graph::generate::erdos_renyi;
    use aligraph_sampling::walks::{generate_corpus, WalkDirection};

    #[test]
    fn corpus_training_produces_embeddings() {
        let g = erdos_renyi(100, 400, 3).unwrap();
        let params = SkipGramParams::quick();
        let mut rng = StdRng::seed_from_u64(1);
        let corpus = generate_corpus(&g, 1, 6, WalkDirection::Both, &mut rng);
        let emb = train_skipgram_on_corpus(&g, &corpus, &params);
        assert_eq!(emb.matrix.rows, 100);
        assert_eq!(emb.matrix.cols, params.dim);
        assert!(emb.matrix.as_slice().iter().any(|&x| x != 0.0));
    }

    #[test]
    fn concat_doubles_dim() {
        let a = BaselineEmbeddings { matrix: Matrix::zeros(5, 4) };
        let b = BaselineEmbeddings { matrix: Matrix::zeros(5, 3) };
        assert_eq!(a.concat(&b).matrix.cols, 7);
    }

    #[test]
    fn head_learns_edge_types() {
        use aligraph_graph::{AttrVector, EdgeType, GraphBuilder, VertexType};
        // Two communities; edges inside community 0 are type 0, inside
        // community 1 are type 1. A bilinear head over informative
        // embeddings separates them.
        let mut b = GraphBuilder::directed();
        for _ in 0..20 {
            b.add_vertex(VertexType(0), AttrVector::empty());
        }
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let (x, y) = (rng.gen_range(0..10u32), rng.gen_range(0..10u32));
            if x != y {
                b.add_edge(VertexId(x), VertexId(y), EdgeType(0), 1.0).unwrap();
            }
            let (x, y) = (rng.gen_range(10..20u32), rng.gen_range(10..20u32));
            if x != y {
                b.add_edge(VertexId(x), VertexId(y), EdgeType(1), 1.0).unwrap();
            }
        }
        let g = b.build();
        // Hand-crafted embeddings: community indicator.
        let mut m = Matrix::zeros(20, 2);
        for i in 0..20 {
            m.set(i, if i < 10 { 0 } else { 1 }, 1.0);
        }
        let model = BaselineEmbeddings { matrix: m };
        let head = EdgeTypeHead::fit(&g, &model, 4, 0.2, 4);
        assert_eq!(head.predict(&model, VertexId(0), VertexId(1)), 0);
        assert_eq!(head.predict(&model, VertexId(11), VertexId(12)), 1);
    }
}
