//! Recommendation autoencoders for the Table 9 comparison: DAE (denoising
//! autoencoder, Vincent et al.) and β-VAE-style variational autoencoder
//! (Liang et al.'s partially-regularized Mult-VAE, reduced to a Gaussian
//! VAE with a β-weighted KL term).
//!
//! Both operate on implicit-feedback user rows: `x_u[i] = 1` iff user `u`
//! interacted with item `i`. Recommendation = the reconstruction scores of
//! items the user has not interacted with.

use aligraph_graph::{AttributedHeterogeneousGraph, VertexId, VertexType};
use aligraph_ops::{Activation, DenseLayer};
use aligraph_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which autoencoder to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecommenderKind {
    /// Denoising autoencoder with input dropout.
    Dae,
    /// Variational autoencoder with β-weighted KL regularization.
    BetaVae,
}

/// Autoencoder hyper-parameters.
#[derive(Debug, Clone)]
pub struct RecommenderConfig {
    /// Which model.
    pub kind: RecommenderKind,
    /// Hidden/latent width.
    pub hidden: usize,
    /// Epochs over all users.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// DAE: input corruption probability. β-VAE: the β weight.
    pub regularization: f32,
    /// Vertex type of the users.
    pub user_type: VertexType,
    /// Vertex type of the items.
    pub item_type: VertexType,
    /// RNG seed.
    pub seed: u64,
}

impl RecommenderConfig {
    /// A quick DAE config for the u-i graphs.
    pub fn dae_quick() -> Self {
        RecommenderConfig {
            kind: RecommenderKind::Dae,
            hidden: 32,
            epochs: 6,
            lr: 0.01,
            regularization: 0.3,
            user_type: VertexType(0),
            item_type: VertexType(1),
            seed: 201,
        }
    }

    /// A quick β-VAE config.
    pub fn beta_vae_quick() -> Self {
        RecommenderConfig {
            kind: RecommenderKind::BetaVae,
            regularization: 0.2,
            seed: 202,
            ..Self::dae_quick()
        }
    }
}

/// A trained recommender.
#[derive(Debug)]
pub struct TrainedRecommender {
    encoder: DenseLayer,
    decoder: DenseLayer,
    /// Item roster: column `i` of the preference vector is `items[i]`.
    pub items: Vec<VertexId>,
    item_col: std::collections::HashMap<u32, usize>,
    kind: RecommenderKind,
}

impl TrainedRecommender {
    /// Column index of an item vertex, if it is in the roster.
    pub fn item_column(&self, item: VertexId) -> Option<usize> {
        self.item_col.get(&item.0).copied()
    }

    /// Builds a user's binary preference row over the item roster.
    pub fn preference_row(&self, graph: &AttributedHeterogeneousGraph, user: VertexId) -> Vec<f32> {
        let mut x = vec![0.0f32; self.items.len()];
        for nb in graph.out_neighbors(user) {
            if let Some(col) = self.item_column(nb.vertex) {
                x[col] = 1.0;
            }
        }
        x
    }

    /// Reconstruction scores over the whole item roster for one user row.
    pub fn scores(&self, x: &[f32]) -> Vec<f32> {
        let input = Matrix::from_vec(1, x.len(), x.to_vec());
        let h = self.encoder.forward(&input);
        // VAE inference uses the latent mean (no sampling at test time).
        let out = self.decoder.forward(&h);
        out.as_slice().to_vec()
    }

    /// Ranked item recommendations for a user, excluding already-seen items.
    pub fn recommend(
        &self,
        graph: &AttributedHeterogeneousGraph,
        user: VertexId,
        k: usize,
    ) -> Vec<VertexId> {
        let x = self.preference_row(graph, user);
        let scores = self.scores(&x);
        let mut ranked: Vec<(usize, f32)> =
            scores.into_iter().enumerate().filter(|&(col, _)| x[col] == 0.0).collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        ranked.into_iter().take(k).map(|(col, _)| self.items[col]).collect()
    }

    /// The model kind.
    pub fn kind(&self) -> RecommenderKind {
        self.kind
    }
}

/// Trains a DAE or β-VAE on the user→item interactions of `graph`.
pub fn train_recommender(
    graph: &AttributedHeterogeneousGraph,
    config: &RecommenderConfig,
) -> TrainedRecommender {
    let items: Vec<VertexId> = graph.vertices_of_type(config.item_type).to_vec();
    let item_col: std::collections::HashMap<u32, usize> =
        items.iter().enumerate().map(|(i, v)| (v.0, i)).collect();
    let users: Vec<VertexId> = graph.vertices_of_type(config.user_type).to_vec();
    let num_items = items.len();

    let mut encoder =
        DenseLayer::new(num_items, config.hidden, Activation::Tanh, config.lr, config.seed);
    let mut decoder =
        DenseLayer::new(config.hidden, num_items, Activation::Sigmoid, config.lr, config.seed + 1);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xec);

    let mut model = TrainedRecommender {
        encoder: encoder.clone(),
        decoder: decoder.clone(),
        items,
        item_col,
        kind: config.kind,
    };

    for _ in 0..config.epochs {
        for &user in &users {
            let x = model.preference_row(graph, user);
            if x.iter().all(|&v| v == 0.0) {
                continue;
            }
            // Corrupt (DAE) or keep (VAE) the input.
            let mut input = x.clone();
            if config.kind == RecommenderKind::Dae {
                for v in input.iter_mut() {
                    if *v > 0.0 && rng.gen::<f32>() < config.regularization {
                        *v = 0.0;
                    }
                }
            }
            let input_m = Matrix::from_vec(1, input.len(), input);
            let mut h = encoder.forward(&input_m);

            // β-VAE: treat h as the latent mean, add unit-variance noise
            // scaled by β at train time (the reparameterized sample) and pay
            // a KL-like shrinkage on the mean.
            if config.kind == RecommenderKind::BetaVae {
                for v in h.as_mut_slice() {
                    *v += config.regularization * (rng.gen::<f32>() - 0.5);
                }
            }
            let out = decoder.forward(&h);

            // Binary cross-entropy against the *uncorrupted* row.
            let mut grad = Matrix::zeros(1, x.len());
            for (i, &target) in x.iter().enumerate() {
                grad.set(0, i, out.get(0, i) - target); // σ-BCE gradient
            }
            let dh = decoder.backward(&h, &out, &grad);
            let mut dh = dh;
            if config.kind == RecommenderKind::BetaVae {
                // KL shrinkage on the latent mean: pull toward 0.
                for (g, &m) in dh.as_mut_slice().iter_mut().zip(h.as_slice()) {
                    *g += config.regularization * m;
                }
            }
            encoder.backward(&input_m, &h, &dh);
            decoder.step(1);
            encoder.step(1);
        }
    }

    model.encoder = encoder;
    model.decoder = decoder;
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use aligraph_graph::generate::TaobaoConfig;
    use aligraph_graph::ids::well_known::*;

    fn graph() -> AttributedHeterogeneousGraph {
        TaobaoConfig::tiny().generate().unwrap()
    }

    #[test]
    fn dae_recommends_unseen_items() {
        let g = graph();
        let model = train_recommender(&g, &RecommenderConfig::dae_quick());
        let user = g.vertices_of_type(USER)[0];
        let recs = model.recommend(&g, user, 5);
        assert_eq!(recs.len(), 5);
        // Recommendations exclude interacted items.
        let seen: Vec<VertexId> = g.out_neighbors(user).iter().map(|n| n.vertex).collect();
        assert!(recs.iter().all(|r| !seen.contains(r)));
        assert!(recs.iter().all(|r| g.vertex_type(*r) == ITEM));
    }

    #[test]
    fn vae_trains() {
        let g = graph();
        let model = train_recommender(&g, &RecommenderConfig::beta_vae_quick());
        assert_eq!(model.kind(), RecommenderKind::BetaVae);
        let user = g.vertices_of_type(USER)[1];
        assert!(!model.recommend(&g, user, 3).is_empty());
    }

    #[test]
    fn popular_items_score_high() {
        let g = graph();
        let model = train_recommender(&g, &RecommenderConfig::dae_quick());
        // Zipf generator: earliest item ids are the most popular; the mean
        // reconstruction score of the top-popular item should exceed that of
        // the least popular.
        let items = g.vertices_of_type(ITEM);
        let most = items[0];
        let least = items[items.len() - 1];
        let (mc, lc) = (model.item_column(most).unwrap(), model.item_column(least).unwrap());
        let mut most_sum = 0.0f32;
        let mut least_sum = 0.0f32;
        for &u in g.vertices_of_type(USER).iter().take(30) {
            let scores = model.scores(&model.preference_row(&g, u));
            most_sum += scores[mc];
            least_sum += scores[lc];
        }
        assert!(most_sum > least_sum, "popular {most_sum} vs cold {least_sum}");
    }

    #[test]
    fn preference_row_marks_interactions() {
        let g = graph();
        let model = train_recommender(&g, &RecommenderConfig::dae_quick());
        let user = g.vertices_of_type(USER)[2];
        let row = model.preference_row(&g, user);
        let interactions =
            g.out_neighbors(user).iter().filter(|n| g.vertex_type(n.vertex) == ITEM).count();
        let marked = row.iter().filter(|&&x| x > 0.0).count();
        assert!(marked <= interactions);
        assert!(marked >= 1 || interactions == 0);
    }
}
