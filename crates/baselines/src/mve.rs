//! MVE (Qu et al., CIKM'17): multi-view network embedding with attention-
//! weighted collaboration. Each view (edge type) learns its own embedding;
//! a consensus embedding is pulled toward every view, with per-view
//! attention weights proportional to how well the view explains its edges.

use crate::common::{BaselineEmbeddings, SkipGramParams};
use aligraph::EmbeddingModel;
use aligraph_graph::{AttributedHeterogeneousGraph, EdgeType, VertexId};
use aligraph_sampling::walks::{skipgram_pairs, uniform_walk, WalkDirection};
use aligraph_sampling::{NegativeSampler, UnigramNegative};
use aligraph_tensor::loss::{logistic_loss, sgns_update};
use aligraph_tensor::{EmbeddingTable, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Trains MVE: per-view SGNS + attention-weighted consensus.
pub fn train_mve(
    graph: &AttributedHeterogeneousGraph,
    params: &SkipGramParams,
    collaboration: f32,
) -> BaselineEmbeddings {
    let n = graph.num_vertices();
    let views = graph.num_edge_types() as usize;
    let mut rng = StdRng::seed_from_u64(params.seed);
    let negative = UnigramNegative::new(graph, None, 0.75);

    let mut view_inputs: Vec<EmbeddingTable> =
        (0..views).map(|t| EmbeddingTable::new(n, params.dim, params.seed + t as u64)).collect();
    let mut view_outputs: Vec<EmbeddingTable> =
        (0..views).map(|_| EmbeddingTable::zeros(n, params.dim)).collect();
    // View quality: mean training loss (lower = better view).
    let mut view_loss = vec![0.0f64; views];
    let mut view_pairs = vec![0usize; views];

    for _ in 0..params.epochs {
        for t in 0..views {
            let etype = EdgeType(t as u8);
            for v in graph.vertices() {
                if graph.out_neighbors_typed(v, etype).is_empty()
                    && graph.in_neighbors_typed(v, etype).is_empty()
                {
                    continue;
                }
                for _ in 0..params.walks_per_vertex {
                    let walk = uniform_walk(
                        graph,
                        v,
                        params.walk_length,
                        Some(etype),
                        WalkDirection::Both,
                        &mut rng,
                    );
                    for (center, ctx) in skipgram_pairs(&walk, params.window) {
                        let negs =
                            negative.sample(graph, &[center, ctx], params.negatives, &mut rng);
                        let neg_idx: Vec<usize> = negs.iter().map(|x| x.index()).collect();
                        let loss = sgns_update(
                            &mut view_inputs[t],
                            &mut view_outputs[t],
                            center.index(),
                            ctx.index(),
                            &neg_idx,
                            params.lr,
                        );
                        view_loss[t] += loss as f64;
                        view_pairs[t] += 1;
                        let _ = logistic_loss; // quality uses the SGNS loss directly
                    }
                }
            }
        }
    }

    // Attention over views: softmax of negative mean loss (better views get
    // more weight), scaled by `collaboration` sharpness.
    let mut attn: Vec<f64> = view_loss
        .iter()
        .zip(&view_pairs)
        .map(|(&l, &p)| if p == 0 { f64::MIN } else { -(l / p as f64) * collaboration as f64 })
        .collect();
    let max = attn.iter().cloned().fold(f64::MIN, f64::max);
    let mut total = 0.0;
    for a in attn.iter_mut() {
        *a = (*a - max).exp();
        total += *a;
    }
    for a in attn.iter_mut() {
        *a /= total.max(1e-12);
    }

    // Consensus: attention-weighted sum of view embeddings.
    let mut matrix = Matrix::zeros(n, params.dim);
    for (t, (inp, outp)) in view_inputs.iter().zip(&view_outputs).enumerate() {
        let w = attn[t] as f32;
        for i in 0..n {
            for ((m, &a), &b) in matrix.row_mut(i).iter_mut().zip(inp.row(i)).zip(outp.row(i)) {
                *m += w * (a + b);
            }
        }
    }
    BaselineEmbeddings { matrix }
}

/// Per-view embedding access for diagnostics.
pub fn view_embedding(model: &BaselineEmbeddings, v: VertexId) -> Vec<f32> {
    model.embedding(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aligraph::evaluate_split;
    use aligraph_eval::link_prediction_split;
    use aligraph_graph::generate::amazon_sim_scaled;

    #[test]
    fn mve_trains_and_beats_chance() {
        let g = amazon_sim_scaled(300, 2_400, 27).unwrap();
        let split = link_prediction_split(&g, 0.15, 28);
        let emb = train_mve(&split.train, &SkipGramParams::quick(), 2.0);
        let m = evaluate_split(&emb, &split);
        assert!(m.roc_auc > 0.55, "AUC {}", m.roc_auc);
    }

    #[test]
    fn collaboration_strength_matters() {
        let g = amazon_sim_scaled(100, 500, 29).unwrap();
        let flat = train_mve(&g, &SkipGramParams::quick(), 0.0);
        let sharp = train_mve(&g, &SkipGramParams::quick(), 8.0);
        assert_ne!(flat.matrix.as_slice(), sharp.matrix.as_slice());
    }
}
