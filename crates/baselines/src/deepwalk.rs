//! DeepWalk (Perozzi et al., KDD'14): uniform truncated random walks +
//! skip-gram with negative sampling. Structure only — types, attributes and
//! weights are ignored, per the paper's protocol for C1 baselines.

use crate::common::{train_skipgram_on_corpus, BaselineEmbeddings, SkipGramParams};
use aligraph_graph::AttributedHeterogeneousGraph;
use aligraph_sampling::walks::{generate_corpus, WalkDirection};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Trains DeepWalk.
pub fn train_deepwalk(
    graph: &AttributedHeterogeneousGraph,
    params: &SkipGramParams,
) -> BaselineEmbeddings {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let corpus = generate_corpus(
        graph,
        params.walks_per_vertex,
        params.walk_length,
        WalkDirection::Both,
        &mut rng,
    );
    train_skipgram_on_corpus(graph, &corpus, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aligraph::{evaluate_split, EmbeddingModel};
    use aligraph_eval::link_prediction_split;
    use aligraph_graph::generate::{amazon_sim_scaled, TaobaoConfig};
    use aligraph_graph::VertexId;

    #[test]
    fn deepwalk_beats_chance_on_product_graph() {
        let g = amazon_sim_scaled(300, 2_400, 7).unwrap();
        let split = link_prediction_split(&g, 0.15, 8);
        let emb = train_deepwalk(&split.train, &SkipGramParams::quick());
        let m = evaluate_split(&emb, &split);
        assert!(m.roc_auc > 0.6, "AUC {}", m.roc_auc);
    }

    #[test]
    fn embeddings_deterministic() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let a = train_deepwalk(&g, &SkipGramParams::quick());
        let b = train_deepwalk(&g, &SkipGramParams::quick());
        assert_eq!(a.embedding(VertexId(3)), b.embedding(VertexId(3)));
    }
}
