//! TNE-style temporal network embedding — the dynamic baseline of Table 11.
//!
//! Each snapshot is embedded with SGNS; a temporal-smoothness pull keeps
//! `e_v(t)` close to `e_v(t-1)` so the trajectory is stable. The final
//! embedding is the last snapshot's (the standard evaluation protocol for
//! snapshot models: "run the algorithm on each snapshot ... and report the
//! average performance").

use crate::common::{BaselineEmbeddings, SkipGramParams};
use aligraph_graph::DynamicGraph;
use aligraph_sampling::walks::{generate_corpus, skipgram_pairs, WalkDirection};
use aligraph_sampling::{NegativeSampler, UnigramNegative};
use aligraph_tensor::loss::sgns_update;
use aligraph_tensor::{EmbeddingTable, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Trains TNE over all snapshots; `smoothness` is the strength of the
/// temporal pull toward the previous snapshot's embeddings.
pub fn train_tne(
    dynamic: &DynamicGraph,
    params: &SkipGramParams,
    smoothness: f32,
) -> BaselineEmbeddings {
    // invariant: DynamicGraph always materializes snapshot 0
    let n = dynamic.snapshot(0).expect("non-empty").num_vertices();
    let mut prev: Option<Matrix> = None;
    let mut input = EmbeddingTable::new(n, params.dim, params.seed);
    let mut output = EmbeddingTable::zeros(n, params.dim);

    for t in 0..dynamic.num_snapshots() {
        // invariant: t ranges over 0..num_snapshots(), so the index is in
        // range
        let graph = dynamic.snapshot(t).expect("in range");
        let mut rng = StdRng::seed_from_u64(params.seed + 1000 * t as u64);
        let corpus = generate_corpus(
            graph,
            params.walks_per_vertex,
            params.walk_length,
            WalkDirection::Both,
            &mut rng,
        );
        let negative = UnigramNegative::new(graph, None, 0.75);
        for _ in 0..params.epochs {
            for walk in &corpus {
                for (center, ctx) in skipgram_pairs(walk, params.window) {
                    let negs = negative.sample(graph, &[center, ctx], params.negatives, &mut rng);
                    let neg_idx: Vec<usize> = negs.iter().map(|x| x.index()).collect();
                    sgns_update(
                        &mut input,
                        &mut output,
                        center.index(),
                        ctx.index(),
                        &neg_idx,
                        params.lr,
                    );
                    // Temporal smoothness pull toward the previous snapshot.
                    if let Some(prev) = &prev {
                        if smoothness > 0.0 {
                            let grad: Vec<f32> = input
                                .row(center.index())
                                .iter()
                                .zip(prev.row(center.index()))
                                .map(|(&cur, &old)| smoothness * (cur - old))
                                .collect();
                            input.sgd_update(center.index(), &grad, params.lr);
                        }
                    }
                }
            }
        }
        // Remember this snapshot's embeddings for the next pull.
        let mut snap = Matrix::zeros(n, params.dim);
        for i in 0..n {
            snap.row_mut(i).copy_from_slice(input.row(i));
        }
        prev = Some(snap);
    }
    BaselineEmbeddings::from_tables(&input, &output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aligraph_graph::generate::DynamicConfig;

    fn dynamic() -> DynamicGraph {
        DynamicConfig {
            vertices: 120,
            initial_edges: 400,
            timestamps: 3,
            normal_per_step: 60,
            removed_per_step: 20,
            burst_size: 30,
            burst_every: 2,
            edge_types: 2,
            seed: 5,
        }
        .generate()
        .unwrap()
    }

    #[test]
    fn tne_trains_on_snapshots() {
        let d = dynamic();
        let emb = train_tne(&d, &SkipGramParams::quick(), 0.1);
        assert_eq!(emb.matrix.rows, 120);
        assert!(emb.matrix.as_slice().iter().any(|&x| x != 0.0));
    }

    #[test]
    fn smoothness_changes_trajectory() {
        let d = dynamic();
        let free = train_tne(&d, &SkipGramParams::quick(), 0.0);
        let smooth = train_tne(&d, &SkipGramParams::quick(), 1.0);
        assert_ne!(free.matrix.as_slice(), smooth.matrix.as_slice());
    }
}
