//! ANRL-style attributed network embedding (Zhang et al., IJCAI'18).
//!
//! ANRL couples a neighbor-enhancement autoencoder over vertex attributes
//! with a skip-gram structure objective. This reproduction keeps the same
//! two forces in a lighter parameterization (documented in DESIGN.md):
//! embeddings are *initialized from hashed attribute features* (projected to
//! the embedding dimension) and then trained by SGNS with an additional
//! **neighbor-reconstruction pull** — each vertex's embedding is regressed
//! toward the mean of its neighbors' attribute projections, which is exactly
//! the target the neighbor-enhancement decoder reconstructs.

use crate::common::{BaselineEmbeddings, SkipGramParams};
use aligraph_graph::{AttributedHeterogeneousGraph, Featurizer};
use aligraph_sampling::walks::{generate_corpus, skipgram_pairs, WalkDirection};
use aligraph_sampling::{NegativeSampler, UnigramNegative};
use aligraph_tensor::loss::sgns_update;
use aligraph_tensor::EmbeddingTable;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Trains the simplified ANRL.
pub fn train_anrl(
    graph: &AttributedHeterogeneousGraph,
    params: &SkipGramParams,
    reconstruction_weight: f32,
) -> BaselineEmbeddings {
    let n = graph.num_vertices();
    let mut rng = StdRng::seed_from_u64(params.seed);

    // Attribute projection: hashed features at the embedding dimension.
    let features = Featurizer::with_salt(params.dim, params.seed ^ 0xa2e1).matrix(graph);

    // Initialize input embeddings from attributes (small scale).
    let mut input = EmbeddingTable::new(n, params.dim, params.seed);
    for v in graph.vertices() {
        let row = features.row(v);
        let dst = input.row_mut(v.index());
        for (d, &f) in dst.iter_mut().zip(row) {
            *d += 0.1 * f;
        }
    }
    let mut output = EmbeddingTable::zeros(n, params.dim);
    let negative = UnigramNegative::new(graph, None, 0.75);
    let corpus = generate_corpus(
        graph,
        params.walks_per_vertex,
        params.walk_length,
        WalkDirection::Both,
        &mut rng,
    );

    for _ in 0..params.epochs {
        for walk in &corpus {
            for (center, ctx) in skipgram_pairs(walk, params.window) {
                let negs = negative.sample(graph, &[center, ctx], params.negatives, &mut rng);
                let neg_idx: Vec<usize> = negs.iter().map(|x| x.index()).collect();
                sgns_update(
                    &mut input,
                    &mut output,
                    center.index(),
                    ctx.index(),
                    &neg_idx,
                    params.lr,
                );

                // Neighbor-enhancement pull: e_center toward the mean
                // attribute projection of its neighbors.
                if reconstruction_weight > 0.0 {
                    let nbrs = graph.out_neighbors(center);
                    if !nbrs.is_empty() {
                        let mut target = vec![0.0f32; params.dim];
                        for nb in nbrs {
                            for (t, &f) in target.iter_mut().zip(features.row(nb.vertex)) {
                                *t += f;
                            }
                        }
                        let inv = 1.0 / nbrs.len() as f32;
                        let grad: Vec<f32> = input
                            .row(center.index())
                            .iter()
                            .zip(&target)
                            .map(|(&e, &t)| reconstruction_weight * (e - t * inv))
                            .collect();
                        input.sgd_update(center.index(), &grad, params.lr);
                    }
                }
            }
        }
    }
    BaselineEmbeddings::from_tables(&input, &output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aligraph::evaluate_split;
    use aligraph_eval::link_prediction_split;
    use aligraph_graph::generate::amazon_sim_scaled;

    #[test]
    fn anrl_beats_chance() {
        let g = amazon_sim_scaled(300, 2_400, 19).unwrap();
        let split = link_prediction_split(&g, 0.15, 20);
        let emb = train_anrl(&split.train, &SkipGramParams::quick(), 0.05);
        let m = evaluate_split(&emb, &split);
        // The synthetic hashed attributes are weaker than real product
        // metadata, so ANRL lands slightly below the structure-only walks
        // here; it must still clearly beat chance.
        assert!(m.roc_auc > 0.54, "AUC {}", m.roc_auc);
    }

    #[test]
    fn reconstruction_changes_result() {
        let g = amazon_sim_scaled(100, 500, 21).unwrap();
        let a = train_anrl(&g, &SkipGramParams::quick(), 0.0);
        let b = train_anrl(&g, &SkipGramParams::quick(), 0.5);
        assert_ne!(a.matrix.as_slice(), b.matrix.as_slice());
    }
}
