//! # aligraph-baselines
//!
//! The competitor algorithms of the paper's evaluation (§5.2.1, categories
//! C1–C3 plus the recommendation and dynamic baselines):
//!
//! * **C1 homogeneous GE** — [`deepwalk`], [`node2vec`], [`line`];
//! * **C2 attributed GE** — [`anrl`] (neighbor-enhancement autoencoder +
//!   skip-gram, simplified to an attribute-initialized SGNS with a feature
//!   reconstruction pull);
//! * **C3 heterogeneous GE** — [`metapath2vec`], [`pmne`] (n/r/c variants),
//!   [`mve`], [`mne`];
//! * **recommendation autoencoders** (Table 9) — [`recommender`]: DAE and
//!   β-VAE;
//! * **dynamic** (Table 11) — [`tne`]: per-snapshot embeddings with temporal
//!   smoothing;
//! * **structural** (Tables 1 & 7) — [`struc2vec`]: role-based embeddings
//!   from walks over a structural-signature similarity graph.
//!
//! All walk-based baselines share [`common::SkipGramParams`] and produce a
//! [`common::BaselineEmbeddings`] that plugs into the same evaluation
//! harness as the in-house models. Per the paper's protocol, "if a method
//! cannot process attributes and/or multiple types of vertices, we simply
//! ignore this information".

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod anrl;
pub mod common;
pub mod deepwalk;
pub mod line;
pub mod metapath2vec;
pub mod mne;
pub mod mve;
pub mod node2vec;
pub mod pmne;
pub mod recommender;
pub mod struc2vec;
pub mod tne;

pub use common::{BaselineEmbeddings, EdgeTypeHead, SkipGramParams};
pub use deepwalk::train_deepwalk;
pub use line::{train_line, LineOrder};
pub use metapath2vec::train_metapath2vec;
pub use mne::train_mne;
pub use mve::train_mve;
pub use node2vec::train_node2vec;
pub use pmne::{train_pmne, PmneVariant};
pub use recommender::{train_recommender, RecommenderConfig, RecommenderKind, TrainedRecommender};
pub use struc2vec::train_struc2vec;
pub use tne::train_tne;
