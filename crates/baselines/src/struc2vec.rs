//! Struc2Vec-style structural embedding (Ribeiro et al., KDD'17) — the
//! "Structural2Vec" row of the paper's Tables 1 and 7.
//!
//! Vertices with similar *structural roles* (hub, bridge, leaf) should embed
//! closely even when far apart in the graph. This reproduction keeps the
//! method's core pipeline at a tractable cost:
//!
//! 1. a per-vertex **structural signature** summarizing its degree and the
//!    degree distribution of its 1-hop neighborhood (the k=1 layer of
//!    struc2vec's multilayer similarity),
//! 2. a **similarity graph** connecting each vertex to its nearest
//!    neighbors in signature space (candidate-sampled beyond
//!    [`EXACT_KNN_LIMIT`] vertices to stay sub-quadratic),
//! 3. random walks on the similarity graph + skip-gram with negative
//!    sampling.

use crate::common::{train_skipgram_on_corpus, BaselineEmbeddings, SkipGramParams};
use aligraph_graph::{AttributedHeterogeneousGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Brute-force kNN is used up to this many vertices; larger graphs sample
/// candidate sets instead.
const EXACT_KNN_LIMIT: usize = 4_000;
/// Signature dimensionality.
const SIG_DIM: usize = 6;
/// Similarity-graph out-degree.
const KNN: usize = 8;
/// Candidate pool size in the sampled regime.
const CANDIDATES: usize = 64;

/// The structural signature of one vertex.
fn signature(graph: &AttributedHeterogeneousGraph, v: VertexId) -> [f32; SIG_DIM] {
    let mut degs: Vec<f32> = graph
        .out_neighbors(v)
        .iter()
        .chain(graph.in_neighbors(v))
        .map(|n| ((graph.out_degree(n.vertex) + graph.in_degree(n.vertex)) as f32).ln_1p())
        .collect();
    degs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let own = ((graph.out_degree(v) + graph.in_degree(v)) as f32).ln_1p();
    let q = |p: f64| -> f32 {
        if degs.is_empty() {
            0.0
        } else {
            degs[((degs.len() - 1) as f64 * p) as usize]
        }
    };
    let mean = if degs.is_empty() { 0.0 } else { degs.iter().sum::<f32>() / degs.len() as f32 };
    [own, (degs.len() as f32).ln_1p(), q(0.0), q(0.5), q(1.0), mean]
}

fn distance(a: &[f32; SIG_DIM], b: &[f32; SIG_DIM]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Trains the structural embedding.
pub fn train_struc2vec(
    graph: &AttributedHeterogeneousGraph,
    params: &SkipGramParams,
) -> BaselineEmbeddings {
    let n = graph.num_vertices();
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x57c2);
    let signatures: Vec<[f32; SIG_DIM]> = graph.vertices().map(|v| signature(graph, v)).collect();

    // Similarity graph: k nearest signatures per vertex.
    let mut sim_adj: Vec<Vec<u32>> = Vec::with_capacity(n);
    for v in 0..n {
        let candidates: Vec<usize> = if n <= EXACT_KNN_LIMIT {
            (0..n).filter(|&u| u != v).collect()
        } else {
            (0..CANDIDATES).map(|_| rng.gen_range(0..n)).filter(|&u| u != v).collect()
        };
        let mut scored: Vec<(usize, f32)> =
            candidates.into_iter().map(|u| (u, distance(&signatures[v], &signatures[u]))).collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        sim_adj.push(scored.into_iter().take(KNN).map(|(u, _)| u as u32).collect());
    }

    // Walks on the similarity graph.
    let mut corpus: Vec<Vec<VertexId>> = Vec::with_capacity(n * params.walks_per_vertex);
    for start in 0..n as u32 {
        for _ in 0..params.walks_per_vertex {
            let mut walk = Vec::with_capacity(params.walk_length);
            walk.push(VertexId(start));
            let mut cur = start;
            for _ in 1..params.walk_length {
                let row = &sim_adj[cur as usize];
                if row.is_empty() {
                    break;
                }
                cur = row[rng.gen_range(0..row.len())];
                walk.push(VertexId(cur));
            }
            if walk.len() > 1 {
                corpus.push(walk);
            }
        }
    }
    train_skipgram_on_corpus(graph, &corpus, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aligraph_graph::{AttrVector, EdgeType, GraphBuilder, VertexType};

    /// Two identical stars whose hubs are far apart: struc2vec must embed
    /// the two hubs closer to each other than to their own leaves.
    #[test]
    fn structural_roles_cluster() {
        let mut b = GraphBuilder::undirected();
        let mut hubs = Vec::new();
        for _ in 0..2 {
            let hub = b.add_vertex(VertexType(0), AttrVector::empty());
            for _ in 0..12 {
                let leaf = b.add_vertex(VertexType(0), AttrVector::empty());
                b.add_edge(hub, leaf, EdgeType(0), 1.0).unwrap();
            }
            hubs.push(hub);
        }
        // A thin chain joining the stars (keeps the graph connected).
        b.add_edge(hubs[0], hubs[1], EdgeType(0), 1.0).unwrap();
        let g = b.build();

        let emb = train_struc2vec(&g, &SkipGramParams::quick());
        let hub0 = emb.matrix.row(hubs[0].index());
        let hub1 = emb.matrix.row(hubs[1].index());
        let leaf = emb.matrix.row(hubs[0].index() + 1);
        let d =
            |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
        assert!(
            d(hub0, hub1) < d(hub0, leaf),
            "hubs {} apart vs hub-leaf {}",
            d(hub0, hub1),
            d(hub0, leaf)
        );
    }

    #[test]
    fn signatures_reflect_degree() {
        let mut b = GraphBuilder::directed();
        let hub = b.add_vertex(VertexType(0), AttrVector::empty());
        let mid = b.add_vertex(VertexType(0), AttrVector::empty());
        for _ in 0..10 {
            let leaf = b.add_vertex(VertexType(0), AttrVector::empty());
            b.add_edge(hub, leaf, EdgeType(0), 1.0).unwrap();
        }
        b.add_edge(mid, hub, EdgeType(0), 1.0).unwrap();
        let g = b.build();
        let s_hub = signature(&g, hub);
        let s_mid = signature(&g, mid);
        assert!(s_hub[0] > s_mid[0], "hub own-degree {} vs mid {}", s_hub[0], s_mid[0]);
    }

    #[test]
    fn trains_on_generated_graph() {
        let g = aligraph_graph::generate::erdos_renyi(150, 600, 3).unwrap();
        let emb = train_struc2vec(&g, &SkipGramParams::quick());
        assert_eq!(emb.matrix.rows, 150);
        assert!(emb.matrix.as_slice().iter().all(|x| x.is_finite()));
    }
}
