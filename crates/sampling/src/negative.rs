//! NEGATIVE samplers (paper §3.3): draw non-neighbors to contrast against
//! during training. "Negative sampling is flexible in algorithm, and we do
//! not need to call all graph servers in a batch" — both implementations
//! here draw from a roster that can be a whole graph or one shard.

use crate::alias::AliasTable;
use aligraph_graph::{AttributedHeterogeneousGraph, VertexId, VertexType};
use rand::Rng;

/// A pluggable NEGATIVE sampler.
pub trait NegativeSampler {
    /// Draws `count` negatives, avoiding the vertices in `exclude`
    /// (best-effort: after a bounded number of rejections the draw is kept,
    /// matching the behaviour of production samplers on small rosters).
    fn sample<R: Rng>(
        &self,
        graph: &AttributedHeterogeneousGraph,
        exclude: &[VertexId],
        count: usize,
        rng: &mut R,
    ) -> Vec<VertexId>;
}

const MAX_REJECTIONS: usize = 8;

/// Uniform negatives over all vertices (optionally one type).
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformNegative {
    /// Restrict draws to this vertex type.
    pub vtype: Option<VertexType>,
}

impl NegativeSampler for UniformNegative {
    fn sample<R: Rng>(
        &self,
        graph: &AttributedHeterogeneousGraph,
        exclude: &[VertexId],
        count: usize,
        rng: &mut R,
    ) -> Vec<VertexId> {
        let draw = |rng: &mut R| -> Option<VertexId> {
            match self.vtype {
                Some(t) => {
                    let roster = graph.vertices_of_type(t);
                    (!roster.is_empty()).then(|| roster[rng.gen_range(0..roster.len())])
                }
                None => {
                    let n = graph.num_vertices();
                    (n > 0).then(|| VertexId(rng.gen_range(0..n as u32)))
                }
            }
        };
        sample_with_rejection(draw, exclude, count, rng)
    }
}

/// Degree-biased negatives with the word2vec unigram^0.75 distribution,
/// served in O(1) by an alias table.
#[derive(Debug, Clone)]
pub struct UnigramNegative {
    roster: Vec<VertexId>,
    table: Option<AliasTable>,
}

impl UnigramNegative {
    /// Builds the distribution over all vertices (or one type) weighted by
    /// `(in_degree + out_degree)^power`; `power` is conventionally 0.75.
    pub fn new(
        graph: &AttributedHeterogeneousGraph,
        vtype: Option<VertexType>,
        power: f32,
    ) -> Self {
        let roster: Vec<VertexId> = match vtype {
            Some(t) => graph.vertices_of_type(t).to_vec(),
            None => graph.vertices().collect(),
        };
        let weights: Vec<f32> = roster
            .iter()
            .map(|&v| ((graph.in_degree(v) + graph.out_degree(v)) as f32).powf(power))
            .collect();
        let table = AliasTable::new(&weights);
        UnigramNegative { roster, table }
    }
}

impl NegativeSampler for UnigramNegative {
    fn sample<R: Rng>(
        &self,
        _graph: &AttributedHeterogeneousGraph,
        exclude: &[VertexId],
        count: usize,
        rng: &mut R,
    ) -> Vec<VertexId> {
        let Some(table) = &self.table else { return Vec::new() };
        let draw = |rng: &mut R| Some(self.roster[table.sample(rng)]);
        sample_with_rejection(draw, exclude, count, rng)
    }
}

fn sample_with_rejection<R: Rng>(
    mut draw: impl FnMut(&mut R) -> Option<VertexId>,
    exclude: &[VertexId],
    count: usize,
    rng: &mut R,
) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(count);
    'outer: for _ in 0..count {
        for _ in 0..MAX_REJECTIONS {
            match draw(rng) {
                Some(v) if !exclude.contains(&v) => {
                    out.push(v);
                    continue 'outer;
                }
                Some(_) => continue,
                None => break 'outer,
            }
        }
        // Roster is tiny or dominated by `exclude`: keep whatever came last.
        if let Some(v) = draw(rng) {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aligraph_graph::generate::{barabasi_albert, TaobaoConfig};
    use aligraph_graph::ids::well_known::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_type_and_exclusion() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let exclude: Vec<VertexId> = g.vertices_of_type(ITEM)[..5].to_vec();
        let sampler = UniformNegative { vtype: Some(ITEM) };
        let negs = sampler.sample(&g, &exclude, 100, &mut rng);
        assert_eq!(negs.len(), 100);
        assert!(negs.iter().all(|&v| g.vertex_type(v) == ITEM));
        assert!(negs.iter().all(|v| !exclude.contains(v)));
    }

    #[test]
    fn unigram_prefers_high_degree() {
        let g = barabasi_albert(500, 3, 11).unwrap();
        let sampler = UnigramNegative::new(&g, None, 0.75);
        let mut rng = StdRng::seed_from_u64(2);
        let negs = sampler.sample(&g, &[], 20_000, &mut rng);
        // Mean degree of drawn vertices must exceed the global mean.
        let mean_drawn: f64 =
            negs.iter().map(|&v| (g.in_degree(v) + g.out_degree(v)) as f64).sum::<f64>()
                / negs.len() as f64;
        let mean_all: f64 =
            g.vertices().map(|v| (g.in_degree(v) + g.out_degree(v)) as f64).sum::<f64>()
                / g.num_vertices() as f64;
        assert!(mean_drawn > mean_all, "drawn {mean_drawn} vs all {mean_all}");
    }

    #[test]
    fn tiny_roster_still_returns() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        // Exclude everything: rejection gives up but still returns draws.
        let all: Vec<VertexId> = g.vertices_of_type(USER).to_vec();
        let sampler = UniformNegative { vtype: Some(USER) };
        let negs = sampler.sample(&g, &all, 10, &mut rng);
        assert_eq!(negs.len(), 10);
    }

    #[test]
    fn unigram_empty_type_roster() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let sampler = UnigramNegative::new(&g, Some(VertexType(7)), 0.75);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(sampler.sample(&g, &[], 5, &mut rng).is_empty());
    }
}
