//! Random-walk corpus generation: uniform, node2vec (p, q) and
//! metapath-constrained walks, plus skip-gram windowing. These feed every
//! random-walk model in the algorithm layer (DeepWalk, Node2Vec,
//! Metapath2Vec, PMNE, GATNE, Mixture GNN).

use aligraph_graph::{AttributedHeterogeneousGraph, EdgeType, VertexId, VertexType};
use rand::Rng;

/// Which adjacency a walk follows. E-commerce behavior graphs are directed
/// (user → item); embedding corpora conventionally treat them as undirected
/// so walks do not die at sink vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkDirection {
    /// Out-edges only.
    Out,
    /// Out- and in-edges.
    Both,
}

fn step_candidates(
    graph: &AttributedHeterogeneousGraph,
    v: VertexId,
    etype: Option<EdgeType>,
    direction: WalkDirection,
    out: &mut Vec<VertexId>,
) {
    out.clear();
    let push = |out: &mut Vec<VertexId>, nbrs: &[aligraph_graph::Neighbor]| {
        for n in nbrs {
            out.push(n.vertex);
        }
    };
    match (etype, direction) {
        (Some(t), WalkDirection::Out) => push(out, graph.out_neighbors_typed(v, t)),
        (Some(t), WalkDirection::Both) => {
            push(out, graph.out_neighbors_typed(v, t));
            push(out, graph.in_neighbors_typed(v, t));
        }
        (None, WalkDirection::Out) => push(out, graph.out_neighbors(v)),
        (None, WalkDirection::Both) => {
            push(out, graph.out_neighbors(v));
            push(out, graph.in_neighbors(v));
        }
    }
}

/// A uniform random walk of at most `len` vertices (including the start);
/// stops early at dead ends.
pub fn uniform_walk<R: Rng>(
    graph: &AttributedHeterogeneousGraph,
    start: VertexId,
    len: usize,
    etype: Option<EdgeType>,
    direction: WalkDirection,
    rng: &mut R,
) -> Vec<VertexId> {
    let mut walk = Vec::with_capacity(len);
    walk.push(start);
    let mut candidates = Vec::new();
    let mut cur = start;
    while walk.len() < len {
        step_candidates(graph, cur, etype, direction, &mut candidates);
        if candidates.is_empty() {
            break;
        }
        cur = candidates[rng.gen_range(0..candidates.len())];
        walk.push(cur);
    }
    walk
}

/// A node2vec second-order walk with return parameter `p` and in-out
/// parameter `q` (Grover & Leskovec). Unnormalized transition weights from
/// the previous vertex `t` through current `v` to candidate `x`:
/// `1/p` if `x == t`, `1` if `x` neighbors `t`, else `1/q`.
pub fn node2vec_walk<R: Rng>(
    graph: &AttributedHeterogeneousGraph,
    start: VertexId,
    len: usize,
    p: f32,
    q: f32,
    direction: WalkDirection,
    rng: &mut R,
) -> Vec<VertexId> {
    let mut walk = Vec::with_capacity(len);
    walk.push(start);
    let mut candidates = Vec::new();
    let mut prev: Option<VertexId> = None;
    let mut cur = start;
    while walk.len() < len {
        step_candidates(graph, cur, None, direction, &mut candidates);
        if candidates.is_empty() {
            break;
        }
        let next = match prev {
            None => candidates[rng.gen_range(0..candidates.len())],
            Some(t) => {
                let mut prev_nbrs = Vec::new();
                step_candidates(graph, t, None, direction, &mut prev_nbrs);
                let weights: Vec<f32> = candidates
                    .iter()
                    .map(|&x| {
                        if x == t {
                            1.0 / p
                        } else if prev_nbrs.contains(&x) {
                            1.0
                        } else {
                            1.0 / q
                        }
                    })
                    .collect();
                let total: f32 = weights.iter().sum();
                let mut x = rng.gen::<f32>() * total;
                let mut chosen = candidates[candidates.len() - 1];
                for (i, &w) in weights.iter().enumerate() {
                    if x < w {
                        chosen = candidates[i];
                        break;
                    }
                    x -= w;
                }
                chosen
            }
        };
        prev = Some(cur);
        cur = next;
        walk.push(cur);
    }
    walk
}

/// A metapath-constrained walk (Metapath2Vec): step `i` must land on a
/// vertex of type `pattern[(i + offset) % pattern.len()]`, where `offset`
/// aligns the pattern with the start vertex's type. Returns early when no
/// neighbor of the required type exists.
pub fn metapath_walk<R: Rng>(
    graph: &AttributedHeterogeneousGraph,
    start: VertexId,
    pattern: &[VertexType],
    len: usize,
    rng: &mut R,
) -> Vec<VertexId> {
    let mut walk = Vec::with_capacity(len);
    walk.push(start);
    if pattern.is_empty() {
        return walk;
    }
    // Align the pattern with the start type (fall back to position 0).
    let offset = pattern.iter().position(|&t| t == graph.vertex_type(start)).unwrap_or(0);
    let mut candidates = Vec::new();
    let mut typed = Vec::new();
    let mut cur = start;
    for step in 1..len {
        let want = pattern[(offset + step) % pattern.len()];
        step_candidates(graph, cur, None, WalkDirection::Both, &mut candidates);
        typed.clear();
        typed.extend(candidates.iter().copied().filter(|&x| graph.vertex_type(x) == want));
        if typed.is_empty() {
            break;
        }
        cur = typed[rng.gen_range(0..typed.len())];
        walk.push(cur);
    }
    walk
}

/// `(center, context)` skip-gram pairs from a walk with the given window.
pub fn skipgram_pairs(walk: &[VertexId], window: usize) -> Vec<(VertexId, VertexId)> {
    let mut pairs = Vec::new();
    for (i, &c) in walk.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(walk.len());
        for (j, &ctx) in walk.iter().enumerate().take(hi).skip(lo) {
            if i != j {
                pairs.push((c, ctx));
            }
        }
    }
    pairs
}

/// A full corpus: `walks_per_vertex` walks from every vertex.
pub fn generate_corpus<R: Rng>(
    graph: &AttributedHeterogeneousGraph,
    walks_per_vertex: usize,
    len: usize,
    direction: WalkDirection,
    rng: &mut R,
) -> Vec<Vec<VertexId>> {
    let mut corpus = Vec::with_capacity(graph.num_vertices() * walks_per_vertex);
    for v in graph.vertices() {
        for _ in 0..walks_per_vertex {
            corpus.push(uniform_walk(graph, v, len, None, direction, rng));
        }
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use aligraph_graph::generate::TaobaoConfig;
    use aligraph_graph::ids::well_known::*;
    use aligraph_graph::{AttrVector, GraphBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path3() -> AttributedHeterogeneousGraph {
        let mut b = GraphBuilder::directed();
        let v0 = b.add_vertex(USER, AttrVector::empty());
        let v1 = b.add_vertex(ITEM, AttrVector::empty());
        let v2 = b.add_vertex(USER, AttrVector::empty());
        b.add_edge(v0, v1, CLICK, 1.0).unwrap();
        b.add_edge(v1, v2, CLICK, 1.0).unwrap();
        b.build()
    }

    #[test]
    fn uniform_walk_follows_edges_and_stops_at_dead_end() {
        let g = path3();
        let mut rng = StdRng::seed_from_u64(1);
        let w = uniform_walk(&g, VertexId(0), 10, None, WalkDirection::Out, &mut rng);
        assert_eq!(w, vec![VertexId(0), VertexId(1), VertexId(2)]);
    }

    #[test]
    fn both_direction_walk_does_not_die() {
        let g = path3();
        let mut rng = StdRng::seed_from_u64(2);
        let w = uniform_walk(&g, VertexId(2), 8, None, WalkDirection::Both, &mut rng);
        assert_eq!(w.len(), 8);
        // Every consecutive pair is an edge in one direction or the other.
        for pair in w.windows(2) {
            let fwd = g.out_neighbors(pair[0]).iter().any(|n| n.vertex == pair[1]);
            let back = g.in_neighbors(pair[0]).iter().any(|n| n.vertex == pair[1]);
            assert!(fwd || back);
        }
    }

    #[test]
    fn node2vec_low_p_returns_often() {
        // Low p => strong return bias; the walk oscillates.
        let g = path3();
        let mut rng = StdRng::seed_from_u64(3);
        let w = node2vec_walk(&g, VertexId(0), 50, 0.01, 1.0, WalkDirection::Both, &mut rng);
        let returns = w.windows(3).filter(|tri| tri[0] == tri[2]).count();
        assert!(returns > 30, "returns {returns}");
    }

    #[test]
    fn node2vec_high_p_low_q_explores() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let w = node2vec_walk(&g, VertexId(0), 40, 10.0, 0.1, WalkDirection::Both, &mut rng);
        assert!(w.len() > 10);
        let distinct: std::collections::HashSet<_> = w.iter().collect();
        assert!(distinct.len() > w.len() / 2, "exploring walk revisits rarely");
    }

    #[test]
    fn metapath_walk_alternates_types() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let start = g.vertices_of_type(USER)[0];
        let w = metapath_walk(&g, start, &[USER, ITEM], 9, &mut rng);
        for (i, &v) in w.iter().enumerate() {
            let want = if i % 2 == 0 { USER } else { ITEM };
            assert_eq!(g.vertex_type(v), want, "step {i}");
        }
        assert!(w.len() >= 3, "walk should make progress on the u-i graph");
    }

    #[test]
    fn skipgram_pairs_window() {
        let walk: Vec<VertexId> = (0..4).map(VertexId).collect();
        let pairs = skipgram_pairs(&walk, 1);
        // Each interior vertex has 2 context pairs, ends have 1: 2+2+1+1 = 6.
        assert_eq!(pairs.len(), 6);
        assert!(pairs.contains(&(VertexId(1), VertexId(0))));
        assert!(pairs.contains(&(VertexId(1), VertexId(2))));
        assert!(!pairs.contains(&(VertexId(0), VertexId(2))));
    }

    #[test]
    fn corpus_shape() {
        let g = path3();
        let mut rng = StdRng::seed_from_u64(6);
        let corpus = generate_corpus(&g, 2, 5, WalkDirection::Both, &mut rng);
        assert_eq!(corpus.len(), 6);
        assert!(corpus.iter().all(|w| !w.is_empty() && w.len() <= 5));
    }
}
