//! # aligraph-sampling
//!
//! The sampling layer of the AliGraph reproduction (paper §3.3). The paper
//! abstracts three sampler classes, all pluggable:
//!
//! * **TRAVERSE** ([`traverse`]) — draws batches of vertices or edges from
//!   the (partitioned) graph;
//! * **NEIGHBORHOOD** ([`neighborhood`]) — generates the multi-hop context
//!   of a vertex, reading local storage and the neighbor cache (falling back
//!   to accounted remote calls);
//! * **NEGATIVE** ([`negative`]) — draws negative samples to speed up
//!   convergence (uniform or unigram^0.75 via alias tables).
//!
//! Additional pieces the upper layers share:
//!
//! * [`alias::AliasTable`] — O(1) weighted sampling;
//! * [`walks`] — uniform, node2vec (p,q) and metapath-constrained random
//!   walks (the corpus generators of every skip-gram model);
//! * [`dynamic`] — samplers that own **dynamic weights** with a registered
//!   backward/update function, the "gradient of the sampler" mechanism of
//!   §3.3, optionally routed through the lock-free request buckets;
//! * [`pipeline`] — the `sampling(s1, s2, s3, batch_size)` stage of Figure 5;
//! * [`telemetry`] — metered sampler wrappers publishing per-kind draw
//!   counts and latencies without perturbing the wrapped RNG stream.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod alias;
pub mod dynamic;
pub mod negative;
pub mod neighborhood;
pub mod pipeline;
pub mod seeding;
pub mod telemetry;
pub mod traverse;
pub mod walks;

pub use alias::{AliasTable, IncrementalAlias};
pub use dynamic::{DynamicNeighborhood, DynamicWeights, WeightUpdateMode};
pub use negative::{NegativeSampler, UniformNegative, UnigramNegative};
pub use neighborhood::{
    reverse_reach, ContextTree, InNeighborAccess, Layer, NeighborAccess, NeighborhoodSampler,
    TopKNeighborhood, UniformNeighborhood, WeightedNeighborhood,
};
pub use pipeline::{SampleBatch, SamplingPipeline};
pub use seeding::{worker_rng, worker_seed};
pub use telemetry::MeteredNeighborhood;
pub use traverse::{ShardEdgePools, TraverseSampler, UniformTraverse, WeightedEdgeTraverse};
