//! Dynamic sampler weights with registered backward updates (paper §3.3).
//!
//! "We implement the update operation in a sampler's backward computation,
//! just like gradient back propagation of an operator. So when updating [is]
//! needed, what we should do is to register a gradient function for the
//! sampler. The updating mode, synchronous or asynchronous, is due to the
//! training algorithm."
//!
//! [`DynamicWeights`] holds one weight per vertex plus a registered gradient
//! function. In **synchronous** mode updates are applied inline under a
//! read-write lock; in **asynchronous** mode they are pushed through the
//! lock-free request-flow buckets of the storage layer (Figure 6) and take
//! effect when the owning bucket thread drains them.

use crate::neighborhood::NeighborhoodSampler;
use aligraph_graph::{Neighbor, VertexId};
use aligraph_storage::{ExecutorStopped, WeightService};
use parking_lot::RwLock;
use rand::Rng;
use std::sync::Arc;

/// How backward updates are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightUpdateMode {
    /// Applied inline before `backward` returns.
    Synchronous,
    /// Enqueued to the owning request-flow bucket; visible after the bucket
    /// drains (or after [`DynamicWeights::flush`]).
    Asynchronous,
}

type GradientFn = dyn Fn(f32) -> f32 + Send + Sync;

/// A per-vertex dynamic weight table with a registered gradient function.
pub struct DynamicWeights {
    local: Option<RwLock<Vec<f32>>>,
    service: Option<Arc<dyn WeightService>>,
    gradient: Box<GradientFn>,
    mode: WeightUpdateMode,
}

impl std::fmt::Debug for DynamicWeights {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynamicWeights")
            .field("mode", &self.mode)
            .field("backend", if self.local.is_some() { &"local" } else { &"service" })
            .finish()
    }
}

impl DynamicWeights {
    /// Synchronous table over `n` vertices initialized to `initial`.
    pub fn synchronous(n: usize, initial: f32) -> Self {
        DynamicWeights {
            local: Some(RwLock::new(vec![initial; n])),
            service: None,
            gradient: Box::new(|g| -g), // default: descend the gradient
            mode: WeightUpdateMode::Synchronous,
        }
    }

    /// Asynchronous table backed by a (lock-free bucket) weight service.
    pub fn asynchronous(service: Arc<dyn WeightService>) -> Self {
        DynamicWeights {
            local: None,
            service: Some(service),
            gradient: Box::new(|g| -g),
            mode: WeightUpdateMode::Asynchronous,
        }
    }

    /// Registers the sampler's gradient function: the delta applied to a
    /// weight is `gradient(raw_grad)`.
    pub fn register_gradient(mut self, f: impl Fn(f32) -> f32 + Send + Sync + 'static) -> Self {
        self.gradient = Box::new(f);
        self
    }

    /// The update mode in effect.
    pub fn mode(&self) -> WeightUpdateMode {
        self.mode
    }

    /// Current weight of `v`. In asynchronous mode this can fail with
    /// [`ExecutorStopped`] if the backing service has shut down.
    pub fn get(&self, v: VertexId) -> Result<f32, ExecutorStopped> {
        if let Some(local) = &self.local {
            return Ok(local.read()[v.index()]);
        }
        // invariant: the constructor sets exactly one of local/service; local
        // returned above
        self.service.as_ref().expect("one backend is set").get(v)
    }

    /// Backward pass: applies `gradient(raw_grad)` to the weight of `v`.
    pub fn backward(&self, v: VertexId, raw_grad: f32) {
        let delta = (self.gradient)(raw_grad);
        if let Some(local) = &self.local {
            local.write()[v.index()] += delta;
            return;
        }
        // invariant: the constructor sets exactly one of local/service; local
        // returned above
        self.service.as_ref().expect("one backend is set").update(v, delta);
    }

    /// Blocks until asynchronous updates are visible (no-op in sync mode).
    pub fn flush(&self) -> Result<(), ExecutorStopped> {
        if let Some(service) = &self.service {
            service.flush()?;
        }
        Ok(())
    }
}

/// A NEIGHBORHOOD sampler whose per-vertex probabilities follow the dynamic
/// weights: `P(u) ∝ edge_weight(u) * max(dyn_weight(u), ε)`. This is the
/// adaptive machinery behind AHEP's importance sampling.
#[derive(Debug)]
pub struct DynamicNeighborhood {
    /// The shared dynamic weight table.
    pub weights: Arc<DynamicWeights>,
}

impl NeighborhoodSampler for DynamicNeighborhood {
    fn sample_one<R: Rng>(
        &self,
        _target: VertexId,
        nbrs: &[Neighbor],
        count: usize,
        rng: &mut R,
    ) -> Vec<VertexId> {
        if nbrs.is_empty() {
            return Vec::new();
        }
        // A stopped weight service (service shutting down mid-draw)
        // degrades to the static edge weights rather than panicking.
        let probs: Vec<f32> = nbrs
            .iter()
            .map(|n| n.weight * self.weights.get(n.vertex).unwrap_or(1.0).max(1e-3))
            .collect();
        let total: f32 = probs.iter().sum();
        (0..count)
            .map(|_| {
                let mut x = rng.gen::<f32>() * total;
                for (i, &p) in probs.iter().enumerate() {
                    if x < p {
                        return nbrs[i].vertex;
                    }
                    x -= p;
                }
                nbrs[nbrs.len() - 1].vertex
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aligraph_graph::ids::well_known::*;
    use aligraph_graph::{AttrVector, GraphBuilder};
    use aligraph_storage::LockFreeWeightService;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn synchronous_backward_applies_immediately() {
        let w = DynamicWeights::synchronous(10, 1.0);
        w.backward(VertexId(3), 0.25);
        assert!((w.get(VertexId(3)).unwrap() - 0.75).abs() < 1e-6); // default f = -g
        assert_eq!(w.mode(), WeightUpdateMode::Synchronous);
    }

    #[test]
    fn registered_gradient_function_is_used() {
        let lr = 0.1f32;
        let w = DynamicWeights::synchronous(4, 1.0).register_gradient(move |g| -lr * g);
        w.backward(VertexId(0), 1.0);
        assert!((w.get(VertexId(0)).unwrap() - 0.9).abs() < 1e-6);
    }

    #[test]
    fn asynchronous_through_lock_free_buckets() {
        let service = Arc::new(LockFreeWeightService::new(16, 2, 1.0));
        let w = DynamicWeights::asynchronous(service);
        assert_eq!(w.mode(), WeightUpdateMode::Asynchronous);
        w.backward(VertexId(5), 0.5);
        w.flush().unwrap();
        assert!((w.get(VertexId(5)).unwrap() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn dynamic_sampler_shifts_toward_upweighted_neighbors() {
        let mut b = GraphBuilder::directed();
        let hub = b.add_vertex(USER, AttrVector::empty());
        let a = b.add_vertex(ITEM, AttrVector::empty());
        let c = b.add_vertex(ITEM, AttrVector::empty());
        b.add_edge(hub, a, CLICK, 1.0).unwrap();
        b.add_edge(hub, c, CLICK, 1.0).unwrap();
        let g = b.build();

        let weights = Arc::new(DynamicWeights::synchronous(3, 1.0));
        // Massively upweight vertex `a`.
        weights.backward(a, -20.0); // default gradient f=-g => +20
        let sampler = DynamicNeighborhood { weights };
        let mut rng = StdRng::seed_from_u64(9);
        let mut a_count = 0;
        for _ in 0..1_000 {
            let s = sampler.sample_one(hub, g.out_neighbors(hub), 1, &mut rng);
            if s[0] == a {
                a_count += 1;
            }
        }
        assert!(a_count > 900, "a drawn {a_count}/1000");
    }

    #[test]
    fn dynamic_sampler_floor_keeps_support() {
        // Even a weight driven to zero keeps epsilon probability.
        let mut b = GraphBuilder::directed();
        let hub = b.add_vertex(USER, AttrVector::empty());
        let a = b.add_vertex(ITEM, AttrVector::empty());
        b.add_edge(hub, a, CLICK, 1.0).unwrap();
        let g = b.build();
        let weights = Arc::new(DynamicWeights::synchronous(2, 0.0));
        let sampler = DynamicNeighborhood { weights };
        let mut rng = StdRng::seed_from_u64(10);
        let s = sampler.sample_one(hub, g.out_neighbors(hub), 3, &mut rng);
        assert_eq!(s, vec![a, a, a]);
    }
}
