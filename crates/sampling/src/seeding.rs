//! Deterministic per-worker RNG seeding for distributed sampling.
//!
//! Every trainer worker derives its generator from `(base_seed, worker_id)`
//! so a distributed run is reproducible from one `--seed` flag. Worker 0's
//! stream equals the plain `base_seed` stream, which is what lets a
//! 1-worker distributed run replay the sequential trainer bit for bit.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Golden-ratio odd constant (same multiplier splitmix64 uses), so worker
/// ids spread over the full 64-bit seed space.
const WORKER_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Seed for one worker: `base ^ (id * φ64)`. Worker 0 maps to `base`
/// itself — see the module docs for why that identity matters.
pub fn worker_seed(base: u64, worker_id: u32) -> u64 {
    base ^ (worker_id as u64).wrapping_mul(WORKER_SALT)
}

/// A worker's private generator, derived via [`worker_seed`].
pub fn worker_rng(base: u64, worker_id: u32) -> StdRng {
    StdRng::seed_from_u64(worker_seed(base, worker_id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn worker_zero_replays_base_stream() {
        let mut base = StdRng::seed_from_u64(42);
        let mut w0 = worker_rng(42, 0);
        for _ in 0..50 {
            assert_eq!(base.gen_range(0..1_000_000u64), w0.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn workers_get_distinct_streams() {
        let seeds: Vec<u64> = (0..16).map(|w| worker_seed(7, w)).collect();
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Deterministic across calls.
        assert_eq!(worker_seed(7, 3), worker_seed(7, 3));
    }
}
