//! Walker's alias method: O(n) build, O(1) weighted sampling.
//!
//! Used by the weighted TRAVERSE sampler, the unigram^0.75 NEGATIVE sampler,
//! and the item-popularity machinery in the benchmarks.

use rand::Rng;

/// An alias table over `n` outcomes with fixed weights.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f32>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table. Returns `None` when `weights` is empty or its sum
    /// is not a positive finite number.
    pub fn new(weights: &[f32]) -> Option<Self> {
        let n = weights.len();
        if n == 0 {
            return None;
        }
        let sum: f64 = weights.iter().map(|&w| w.max(0.0) as f64).sum();
        if sum <= 0.0 || !sum.is_finite() {
            return None;
        }
        let scale = n as f64 / sum;
        let mut prob: Vec<f64> = weights.iter().map(|&w| (w.max(0.0) as f64) * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l as u32;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers saturate to 1.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        Some(AliasTable { prob: prob.into_iter().map(|p| p as f32).collect(), alias })
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table is over zero outcomes (never constructed so).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome index.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f32>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[f32::NAN]).is_none());
        assert!(AliasTable::new(&[-1.0, -1.0]).is_none());
    }

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[3.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn empirical_distribution_matches_weights() {
        let weights = [1.0f32, 2.0, 4.0, 1.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        let draws = 200_000;
        for _ in 0..draws {
            counts[t.sample(&mut rng)] += 1;
        }
        let total: f32 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = counts[i] as f32 / draws as f32;
            assert!(
                (observed - expected).abs() < 0.01,
                "outcome {i}: expected {expected}, observed {observed}"
            );
        }
    }

    #[test]
    fn zero_weight_outcomes_never_drawn() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn uniform_weights_near_uniform_draws() {
        let t = AliasTable::new(&[1.0; 10]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[t.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count {c}");
        }
    }
}
