//! Walker's alias method: O(n) build, O(1) weighted sampling.
//!
//! Used by the weighted TRAVERSE sampler, the unigram^0.75 NEGATIVE sampler,
//! the item-popularity machinery in the benchmarks, and — through
//! [`IncrementalAlias`] — the streaming update plane, which repairs one
//! vertex's table in place after an edge event instead of rebuilding every
//! table in the store.

use rand::Rng;

/// Reusable scratch for [`build_into`]: the f64 intermediate probabilities
/// and the small/large work stacks. Keeping these between repairs makes an
/// in-place rebuild allocation-free once the buffers have grown to the row's
/// degree.
#[derive(Debug, Clone, Default)]
struct BuildScratch {
    prob64: Vec<f64>,
    small: Vec<usize>,
    large: Vec<usize>,
}

/// The Walker build, writing into caller-owned buffers. Returns `false`
/// (leaving `prob`/`alias` empty) when `weights` is empty or its sum is not
/// a positive finite number.
///
/// This is the *only* build routine: [`AliasTable::new`] and
/// [`IncrementalAlias::repair`] both funnel through it, which is what makes
/// incremental repair bit-exact against a from-scratch rebuild — same input
/// weights, same f64 op sequence, same stacks, same output bits.
fn build_into(
    weights: &[f32],
    scratch: &mut BuildScratch,
    prob: &mut Vec<f32>,
    alias: &mut Vec<u32>,
) -> bool {
    prob.clear();
    alias.clear();
    let n = weights.len();
    if n == 0 {
        return false;
    }
    let sum: f64 = weights.iter().map(|&w| w.max(0.0) as f64).sum();
    if sum <= 0.0 || !sum.is_finite() {
        return false;
    }
    let scale = n as f64 / sum;
    let prob64 = &mut scratch.prob64;
    prob64.clear();
    prob64.extend(weights.iter().map(|&w| (w.max(0.0) as f64) * scale));
    alias.resize(n, 0);
    let (small, large) = (&mut scratch.small, &mut scratch.large);
    small.clear();
    large.clear();
    for (i, &p) in prob64.iter().enumerate() {
        if p < 1.0 {
            small.push(i);
        } else {
            large.push(i);
        }
    }
    while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
        alias[s] = l as u32;
        prob64[l] = (prob64[l] + prob64[s]) - 1.0;
        if prob64[l] < 1.0 {
            small.push(l);
        } else {
            large.push(l);
        }
    }
    // Numerical leftovers saturate to 1.
    for &i in small.iter().chain(large.iter()) {
        prob64[i] = 1.0;
    }
    prob.extend(prob64.iter().map(|&p| p as f32));
    true
}

/// An alias table over `n` outcomes with fixed weights.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AliasTable {
    prob: Vec<f32>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table. Returns `None` when `weights` is empty or its sum
    /// is not a positive finite number.
    pub fn new(weights: &[f32]) -> Option<Self> {
        let mut scratch = BuildScratch::default();
        let mut prob = Vec::new();
        let mut alias = Vec::new();
        if build_into(weights, &mut scratch, &mut prob, &mut alias) {
            Some(AliasTable { prob, alias })
        } else {
            None
        }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// The acceptance probabilities (for bit-exact equivalence oracles).
    pub fn probs(&self) -> &[f32] {
        &self.prob
    }

    /// The alias redirect targets (for bit-exact equivalence oracles).
    pub fn aliases(&self) -> &[u32] {
        &self.alias
    }

    /// True when the table is over zero outcomes (never constructed so).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome index.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f32>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

/// An alias table that owns its weight vector and repairs the prob/alias
/// arrays *in place* after point edits, instead of being rebuilt from
/// scratch (the streaming plane's per-vertex incremental maintenance).
///
/// Contract: after [`repair`](Self::repair), the table is **bit-exact**
/// equal to `AliasTable::new(self.weights())` — both run the same build
/// routine over the same weights — so a sampler that survives a cache
/// invalidation sweep provably draws from the identical distribution it
/// would under a full rebuild. Edits ([`set`](Self::set),
/// [`push`](Self::push), [`remove`](Self::remove)) mark the table dirty;
/// sampling a dirty table is a logic error (checked in debug builds).
#[derive(Debug, Clone, Default)]
pub struct IncrementalAlias {
    weights: Vec<f32>,
    table: AliasTable,
    /// Whether `table` currently describes a sampleable distribution
    /// (weights non-empty with a positive finite sum).
    valid: bool,
    dirty: bool,
    scratch: BuildScratch,
}

impl IncrementalAlias {
    /// Builds from an initial weight vector (the one-time migration cost of
    /// a vertex entering the incremental plane; later edits are in-place).
    pub fn new(weights: Vec<f32>) -> Self {
        let mut t = IncrementalAlias {
            weights,
            table: AliasTable::default(),
            valid: false,
            dirty: true,
            scratch: BuildScratch::default(),
        };
        t.repair();
        t
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when there are no outcomes.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The current weight vector.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Whether edits are pending a [`repair`](Self::repair).
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Overwrites outcome `i`'s weight. Panics when `i` is out of range.
    pub fn set(&mut self, i: usize, w: f32) {
        self.weights[i] = w;
        self.dirty = true;
    }

    /// Appends a new outcome with weight `w`.
    pub fn push(&mut self, w: f32) {
        self.weights.push(w);
        self.dirty = true;
    }

    /// Removes outcome `i`, shifting later outcomes down (order-preserving,
    /// so indices stay aligned with the adjacency row the weights mirror).
    /// Panics when `i` is out of range.
    pub fn remove(&mut self, i: usize) {
        self.weights.remove(i);
        self.dirty = true;
    }

    /// Rebuilds the prob/alias arrays in place from the current weights,
    /// reusing all buffers. Returns whether the table is sampleable.
    pub fn repair(&mut self) -> bool {
        self.valid = build_into(
            &self.weights,
            &mut self.scratch,
            &mut self.table.prob,
            &mut self.table.alias,
        );
        self.dirty = false;
        self.valid
    }

    /// The repaired table, or `None` when the weights are degenerate (empty
    /// or summing to zero). Debug-checked against pending edits.
    pub fn table(&self) -> Option<&AliasTable> {
        debug_assert!(!self.dirty, "sampling an IncrementalAlias with unrepaired edits");
        if self.valid {
            Some(&self.table)
        } else {
            None
        }
    }

    /// Draws one outcome index, or `None` when degenerate. Bit-compatible
    /// with [`AliasTable::sample`]: identical RNG consumption and result.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Option<usize> {
        self.table().map(|t| t.sample(rng))
    }

    /// Bit-exact equivalence oracle against a from-scratch rebuild: `true`
    /// iff `AliasTable::new(self.weights())` yields exactly this table
    /// (including agreeing that the weights are degenerate).
    pub fn bit_eq_rebuild(&self) -> bool {
        match (AliasTable::new(&self.weights), self.valid) {
            (Some(fresh), true) => {
                fresh.prob.len() == self.table.prob.len()
                    && fresh
                        .prob
                        .iter()
                        .zip(&self.table.prob)
                        .all(|(a, b)| a.to_bits() == b.to_bits())
                    && fresh.alias == self.table.alias
            }
            (None, false) => true,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[f32::NAN]).is_none());
        assert!(AliasTable::new(&[-1.0, -1.0]).is_none());
    }

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[3.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn empirical_distribution_matches_weights() {
        let weights = [1.0f32, 2.0, 4.0, 1.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        let draws = 200_000;
        for _ in 0..draws {
            counts[t.sample(&mut rng)] += 1;
        }
        let total: f32 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = counts[i] as f32 / draws as f32;
            assert!(
                (observed - expected).abs() < 0.01,
                "outcome {i}: expected {expected}, observed {observed}"
            );
        }
    }

    #[test]
    fn zero_weight_outcomes_never_drawn() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn incremental_repair_is_bit_exact_against_rebuild() {
        let mut inc = IncrementalAlias::new(vec![1.0, 2.0, 4.0, 1.0]);
        assert!(inc.bit_eq_rebuild());
        // An edit script touching every mutator, repairing after each burst.
        inc.set(1, 7.5);
        inc.push(0.25);
        inc.repair();
        assert!(inc.bit_eq_rebuild());
        inc.remove(0);
        inc.remove(2);
        inc.repair();
        assert!(inc.bit_eq_rebuild());
        // The repaired table samples identically to a fresh build.
        let fresh = AliasTable::new(inc.weights()).unwrap();
        let mut r1 = StdRng::seed_from_u64(99);
        let mut r2 = StdRng::seed_from_u64(99);
        for _ in 0..500 {
            assert_eq!(inc.sample(&mut r1), Some(fresh.sample(&mut r2)));
        }
    }

    #[test]
    fn incremental_handles_degenerate_transitions() {
        let mut inc = IncrementalAlias::new(vec![1.0]);
        assert!(inc.table().is_some());
        inc.remove(0);
        assert!(inc.is_dirty());
        assert!(!inc.repair(), "empty weights are degenerate");
        assert!(inc.table().is_none());
        assert!(inc.bit_eq_rebuild());
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(inc.sample(&mut rng), None);
        // All-zero weights are degenerate too; recovering is an edit away.
        inc.push(0.0);
        assert!(!inc.repair());
        assert!(inc.bit_eq_rebuild());
        inc.set(0, 3.0);
        assert!(inc.repair());
        assert_eq!(inc.sample(&mut rng), Some(0));
        assert!(inc.bit_eq_rebuild());
    }

    #[test]
    fn uniform_weights_near_uniform_draws() {
        let t = AliasTable::new(&[1.0; 10]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[t.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count {c}");
        }
    }
}
