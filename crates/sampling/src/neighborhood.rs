//! NEIGHBORHOOD samplers: the multi-hop context generator (paper §3.3).
//!
//! The sampler reads adjacency through the [`NeighborAccess`] abstraction:
//! a bare graph (unit tests, single-machine training) or a
//! [`aligraph_storage::Cluster`] shard view, where 1-hop reads come from
//! local storage, multi-hop reads from the local cache, and misses become
//! accounted remote server calls — exactly the cost structure §3.3
//! describes.

use aligraph_graph::{AttributedHeterogeneousGraph, EdgeType, Neighbor, VertexId};
use aligraph_partition::WorkerId;
use aligraph_storage::Cluster;
use rand::Rng;

/// Read access to out-neighborhoods, abstracting local vs. distributed
/// storage. `hop` is the depth the caller is expanding at (1-based), which
/// the storage layer uses to decide whether its cache can serve the read.
pub trait NeighborAccess {
    /// Out-neighbor records of `v`.
    fn neighbors(&self, v: VertexId, hop: usize) -> &[Neighbor];

    /// Announces the frontier the sampler is about to expand, so tiered
    /// storage can batch its cold decodes and overlap them with the current
    /// layer's gather/aggregate. Purely an accounting/performance hint —
    /// results never depend on it. Default: no-op.
    fn prefetch_hint(&self, _frontier: &[VertexId], _hop: usize) {}
}

impl NeighborAccess for AttributedHeterogeneousGraph {
    #[inline]
    fn neighbors(&self, v: VertexId, _hop: usize) -> &[Neighbor] {
        self.out_neighbors(v)
    }
}

/// Read access to *in*-neighborhoods of one graph view, for reverse
/// reachability: "who can sample their way to this vertex?".
pub trait InNeighborAccess {
    /// In-neighbor records of `v` in this view.
    fn in_neighbors_of(&self, v: VertexId) -> &[Neighbor];
}

impl InNeighborAccess for AttributedHeterogeneousGraph {
    #[inline]
    fn in_neighbors_of(&self, v: VertexId) -> &[Neighbor] {
        self.in_neighbors(v)
    }
}

/// The vertices within `depth` in-hops of `sources` over the union of the
/// given `views`, including the sources themselves.
///
/// This is the invalidation core shared by the serving overlay and the
/// streaming update plane: a k-hop encoder's output for seed `s` can only
/// change when `s` reaches a modified vertex within its sampling horizon,
/// i.e. when `s` is in the reverse reach of the touched set. Passing both
/// the pre- and post-delta views catches paths that only exist on one side
/// (an added edge creates reach-paths that exist only *after* the delta, a
/// removed edge's paths existed only *before*).
pub fn reverse_reach<V: InNeighborAccess + ?Sized>(
    views: &[&V],
    sources: &std::collections::HashSet<VertexId>,
    depth: usize,
) -> std::collections::HashSet<VertexId> {
    let mut reached = sources.clone();
    for view in views {
        // The reached *set* is order-independent, but a sorted frontier
        // makes the traversal itself deterministic (and lint-provably so).
        let mut frontier: Vec<VertexId> = sources.iter().copied().collect();
        frontier.sort_unstable();
        let mut seen = sources.clone();
        for _ in 0..depth {
            let mut next = Vec::new();
            for &v in &frontier {
                for n in view.in_neighbors_of(v) {
                    if seen.insert(n.vertex) {
                        reached.insert(n.vertex);
                        next.push(n.vertex);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
    }
    reached
}

/// A cluster shard's view: reads are accounted as local / cached / remote.
#[derive(Debug)]
pub struct ClusterView<'a> {
    /// The cluster being read.
    pub cluster: &'a Cluster,
    /// The worker issuing the reads.
    pub from: WorkerId,
}

impl NeighborAccess for ClusterView<'_> {
    #[inline]
    fn neighbors(&self, v: VertexId, hop: usize) -> &[Neighbor] {
        // invariant: the view's `from` worker and every sampled vertex come
        // from the cluster itself (samplers walk the cluster's own graph),
        // so the route is always in range.
        self.cluster.neighbors_from(self.from, v, hop).expect("view routes within the cluster")
    }

    fn prefetch_hint(&self, frontier: &[VertexId], _hop: usize) {
        self.cluster.prefetch(frontier);
    }
}

/// One hop of a sampled context: `neighbors[i]` are the sampled neighbors of
/// `targets[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// The vertices whose neighborhoods were sampled at this hop.
    pub targets: Vec<VertexId>,
    /// Per-target sampled neighbors (empty for isolated vertices).
    pub neighbors: Vec<Vec<VertexId>>,
}

impl Layer {
    /// All sampled neighbors of this layer, flattened in target order —
    /// these become the next hop's targets.
    pub fn flattened(&self) -> Vec<VertexId> {
        self.neighbors.iter().flatten().copied().collect()
    }
}

/// The multi-hop context of a seed batch: `layers[k]` expands hop `k+1`.
/// Matches the `hop_nums` interface of the paper's Figure 5.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextTree {
    /// Hop layers, outermost last.
    pub layers: Vec<Layer>,
}

impl ContextTree {
    /// Every distinct vertex mentioned anywhere in the tree (seeds included).
    pub fn all_vertices(&self) -> Vec<VertexId> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for layer in &self.layers {
            for &v in layer.targets.iter().chain(layer.neighbors.iter().flatten()) {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Total sampled context size (sum of all neighbor lists).
    pub fn context_size(&self) -> usize {
        self.layers.iter().map(|l| l.neighbors.iter().map(Vec::len).sum::<usize>()).sum()
    }
}

/// A pluggable NEIGHBORHOOD sampler: given one target and its adjacency,
/// choose `count` context vertices.
pub trait NeighborhoodSampler {
    /// Samples up to `count` neighbors of `target` from `nbrs` (already
    /// filtered to the requested edge type).
    fn sample_one<R: Rng>(
        &self,
        target: VertexId,
        nbrs: &[Neighbor],
        count: usize,
        rng: &mut R,
    ) -> Vec<VertexId>;

    /// Expands a seed batch into a multi-hop [`ContextTree`].
    /// `hop_nums[k]` is the fan-out at hop `k+1`; `etype` restricts edges.
    fn sample_context<A: NeighborAccess, R: Rng>(
        &self,
        access: &A,
        seeds: &[VertexId],
        etype: Option<EdgeType>,
        hop_nums: &[usize],
        rng: &mut R,
    ) -> ContextTree {
        let mut layers = Vec::with_capacity(hop_nums.len());
        let mut targets: Vec<VertexId> = seeds.to_vec();
        let total_hops = hop_nums.len();
        for (k, &count) in hop_nums.iter().enumerate() {
            // Depth needed from the *cache's* perspective: a read at hop k
            // still has (total_hops - k) expansions below it.
            let depth = total_hops - k;
            // Hand the storage layer the whole frontier before touching it:
            // a cold tier batches these rows into its prefetch pipeline so
            // the decode overlaps this layer's sampling work.
            access.prefetch_hint(&targets, depth);
            let mut neighbors = Vec::with_capacity(targets.len());
            for &t in &targets {
                let all = access.neighbors(t, depth);
                let filtered: Vec<Neighbor>;
                let nbrs: &[Neighbor] = match etype {
                    Some(et) => {
                        filtered = all.iter().filter(|n| n.etype == et).copied().collect();
                        &filtered
                    }
                    None => all,
                };
                neighbors.push(self.sample_one(t, nbrs, count, rng));
            }
            let layer = Layer { targets, neighbors };
            targets = layer.flattened();
            layers.push(layer);
            if targets.is_empty() {
                break;
            }
        }
        ContextTree { layers }
    }
}

/// GraphSAGE-style uniform sampling with replacement.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformNeighborhood;

impl NeighborhoodSampler for UniformNeighborhood {
    fn sample_one<R: Rng>(
        &self,
        _target: VertexId,
        nbrs: &[Neighbor],
        count: usize,
        rng: &mut R,
    ) -> Vec<VertexId> {
        if nbrs.is_empty() {
            return Vec::new();
        }
        (0..count).map(|_| nbrs[rng.gen_range(0..nbrs.len())].vertex).collect()
    }
}

/// Edge-weight-proportional sampling (linear inverse-CDF per call; the
/// adjacency slice is already in cache after the storage read).
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightedNeighborhood;

impl NeighborhoodSampler for WeightedNeighborhood {
    fn sample_one<R: Rng>(
        &self,
        _target: VertexId,
        nbrs: &[Neighbor],
        count: usize,
        rng: &mut R,
    ) -> Vec<VertexId> {
        if nbrs.is_empty() {
            return Vec::new();
        }
        let total: f32 = nbrs.iter().map(|n| n.weight).sum();
        if total <= 0.0 {
            return UniformNeighborhood.sample_one(_target, nbrs, count, rng);
        }
        (0..count)
            .map(|_| {
                let mut x = rng.gen::<f32>() * total;
                for n in nbrs {
                    if x < n.weight {
                        return n.vertex;
                    }
                    x -= n.weight;
                }
                nbrs[nbrs.len() - 1].vertex
            })
            .collect()
    }
}

/// Deterministic top-k by edge weight (the "important neighbors" variant
/// AHEP uses when variance must be zero).
#[derive(Debug, Clone, Copy, Default)]
pub struct TopKNeighborhood;

impl NeighborhoodSampler for TopKNeighborhood {
    fn sample_one<R: Rng>(
        &self,
        _target: VertexId,
        nbrs: &[Neighbor],
        count: usize,
        _rng: &mut R,
    ) -> Vec<VertexId> {
        let mut sorted: Vec<&Neighbor> = nbrs.iter().collect();
        sorted.sort_by(|a, b| {
            b.weight
                .partial_cmp(&a.weight)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.vertex.cmp(&b.vertex))
        });
        sorted.into_iter().take(count).map(|n| n.vertex).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aligraph_graph::generate::TaobaoConfig;
    use aligraph_graph::ids::well_known::*;
    use aligraph_graph::{AttrVector, GraphBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star() -> (AttributedHeterogeneousGraph, VertexId) {
        let mut b = GraphBuilder::directed();
        let hub = b.add_vertex(USER, AttrVector::empty());
        for i in 0..10 {
            let leaf = b.add_vertex(ITEM, AttrVector::empty());
            b.add_edge(hub, leaf, CLICK, 1.0 + i as f32).unwrap();
        }
        (b.build(), hub)
    }

    #[test]
    fn uniform_samples_fixed_fanout() {
        let (g, hub) = star();
        let mut rng = StdRng::seed_from_u64(1);
        let ctx = UniformNeighborhood.sample_context(&g, &[hub], None, &[5, 3], &mut rng);
        assert_eq!(ctx.layers.len(), 2);
        assert_eq!(ctx.layers[0].neighbors[0].len(), 5);
        // Hop 2 expands each of the 5 sampled leaves (leaves have no
        // out-edges, so their samples are empty).
        assert_eq!(ctx.layers[1].targets.len(), 5);
        assert!(ctx.layers[1].neighbors.iter().all(Vec::is_empty));
        assert_eq!(ctx.context_size(), 5);
    }

    #[test]
    fn isolated_vertex_empty_context() {
        let mut b = GraphBuilder::directed();
        let v = b.add_vertex(USER, AttrVector::empty());
        let g = b.build();
        let mut rng = StdRng::seed_from_u64(2);
        let ctx = UniformNeighborhood.sample_context(&g, &[v], None, &[4, 4], &mut rng);
        assert_eq!(ctx.context_size(), 0);
        // Expansion stops early once the frontier is empty.
        assert_eq!(ctx.layers.len(), 1);
    }

    #[test]
    fn edge_type_filter() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let seeds: Vec<VertexId> = g.vertices_of_type(USER)[..8].to_vec();
        let ctx = UniformNeighborhood.sample_context(&g, &seeds, Some(BUY), &[4], &mut rng);
        for (i, t) in ctx.layers[0].targets.iter().enumerate() {
            let allowed: Vec<VertexId> =
                g.out_neighbors_typed(*t, BUY).iter().map(|n| n.vertex).collect();
            for v in &ctx.layers[0].neighbors[i] {
                assert!(allowed.contains(v));
            }
        }
    }

    #[test]
    fn weighted_prefers_heavy_edges() {
        let (g, hub) = star();
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..2_000 {
            for v in WeightedNeighborhood.sample_one(hub, g.out_neighbors(hub), 1, &mut rng) {
                *counts.entry(v).or_insert(0usize) += 1;
            }
        }
        // Heaviest edge (weight 10) drawn ~10x the lightest (weight 1).
        let heavy = counts.get(&VertexId(10)).copied().unwrap_or(0);
        let light = counts.get(&VertexId(1)).copied().unwrap_or(0);
        assert!(heavy > 4 * light.max(1), "heavy {heavy} light {light}");
    }

    #[test]
    fn topk_is_deterministic_by_weight() {
        let (g, hub) = star();
        let mut rng = StdRng::seed_from_u64(5);
        let a = TopKNeighborhood.sample_one(hub, g.out_neighbors(hub), 3, &mut rng);
        let b = TopKNeighborhood.sample_one(hub, g.out_neighbors(hub), 3, &mut rng);
        assert_eq!(a, b);
        // Highest weights are the last-added leaves (weights 10, 9, 8).
        assert_eq!(a, vec![VertexId(10), VertexId(9), VertexId(8)]);
    }

    #[test]
    fn all_vertices_dedups() {
        let (g, hub) = star();
        let mut rng = StdRng::seed_from_u64(6);
        let ctx = UniformNeighborhood.sample_context(&g, &[hub, hub], None, &[8], &mut rng);
        let all = ctx.all_vertices();
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(all.len(), set.len());
        assert!(all.contains(&hub));
    }

    #[test]
    fn cluster_view_accounts_accesses() {
        use aligraph_partition::EdgeCutHash;
        use aligraph_storage::{CacheStrategy, CostModel};
        use std::sync::Arc;
        let g = Arc::new(TaobaoConfig::tiny().generate().unwrap());
        let (cluster, _) = Cluster::builder(g)
            .partitioner(&EdgeCutHash)
            .shards(4)
            .cache(CacheStrategy::None)
            .max_hop(2)
            .cost_model(CostModel::default())
            .build();
        let view = ClusterView { cluster: &cluster, from: WorkerId(0) };
        let seeds: Vec<VertexId> = cluster.graph().vertices().take(16).collect();
        let mut rng = StdRng::seed_from_u64(7);
        let _ctx = UniformNeighborhood.sample_context(&view, &seeds, None, &[4, 2], &mut rng);
        let snap = cluster.stats().snapshot();
        assert!(snap.total() >= 16, "all seed reads accounted: {snap:?}");
        assert!(snap.remote > 0, "4 workers: some seeds are remote");
    }
}
