//! Sampler instrumentation: wrappers that publish per-sampler-kind draw
//! counts and latencies into a telemetry [`Registry`] without perturbing the
//! wrapped sampler's randomness.
//!
//! [`MeteredNeighborhood`] forwards every call to its inner sampler with the
//! same RNG, so the draw stream — and therefore every trained parameter — is
//! bit-identical whether or not the wrapper (or the registry) is present.
//! Telemetry observes; it never branches on a metric value.

use crate::neighborhood::NeighborhoodSampler;
use aligraph_graph::{Neighbor, VertexId};
use aligraph_telemetry::{Counter, Histogram, Registry, Stopwatch};
use rand::Rng;
use std::sync::Arc;

/// A NEIGHBORHOOD sampler wrapper that counts draws and records per-call
/// latency as `sampling.draws{kind=<kind>}` and
/// `sampling.latency_ns{kind=<kind>}`.
#[derive(Debug)]
pub struct MeteredNeighborhood<S> {
    inner: S,
    draws: Arc<Counter>,
    latency_ns: Arc<Histogram>,
}

impl<S> MeteredNeighborhood<S> {
    /// Wraps `inner`, publishing its series under the `kind` label (e.g.
    /// `"uniform"`, `"weighted"`, `"topk"`).
    pub fn new(inner: S, registry: &Registry, kind: &str) -> Self {
        MeteredNeighborhood {
            inner,
            draws: registry.counter("sampling.draws", &[("kind", kind)]),
            latency_ns: registry.histogram("sampling.latency_ns", &[("kind", kind)]),
        }
    }

    /// The wrapped sampler.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: NeighborhoodSampler> NeighborhoodSampler for MeteredNeighborhood<S> {
    fn sample_one<R: Rng>(
        &self,
        target: VertexId,
        nbrs: &[Neighbor],
        count: usize,
        rng: &mut R,
    ) -> Vec<VertexId> {
        let start = Stopwatch::start();
        let out = self.inner.sample_one(target, nbrs, count, rng);
        self.draws.inc();
        self.latency_ns.record(start.elapsed_ns());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighborhood::UniformNeighborhood;
    use aligraph_graph::{AttrId, EdgeId, EdgeType};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nbrs(n: u32) -> Vec<Neighbor> {
        (0..n)
            .map(|v| Neighbor {
                vertex: VertexId(v),
                etype: EdgeType(0),
                weight: 1.0,
                attr: AttrId(0),
                edge: EdgeId(v as u64),
            })
            .collect()
    }

    #[test]
    fn metered_sampler_draws_identically_to_inner() {
        let registry = Registry::new();
        let metered = MeteredNeighborhood::new(UniformNeighborhood, &registry, "uniform");
        let adj = nbrs(16);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let x = metered.sample_one(VertexId(0), &adj, 4, &mut a);
            let y = UniformNeighborhood.sample_one(VertexId(0), &adj, 4, &mut b);
            assert_eq!(x, y, "wrapper must not perturb the draw stream");
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("sampling.draws", &[("kind", "uniform")]), 10);
        assert_eq!(snap.histogram("sampling.latency_ns", &[("kind", "uniform")]).count, 10);
    }

    #[test]
    fn detached_registry_keeps_wrapper_inert() {
        let metered = MeteredNeighborhood::new(UniformNeighborhood, &Registry::disabled(), "u");
        let adj = nbrs(4);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(metered.sample_one(VertexId(0), &adj, 2, &mut rng).len(), 2);
        assert_eq!(metered.inner().sample_one(VertexId(0), &adj, 2, &mut rng).len(), 2);
    }
}
