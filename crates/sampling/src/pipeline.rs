//! The sampling stage of the paper's Figure 5, verbatim:
//!
//! ```text
//! def sampling(s1, s2, s3, batch_size):
//!     vertex  = s1.sample(edge_type, batch_size)
//!     context = s2.sample(edge_type, vertex, hop_nums)
//!     neg     = s3.sample(edge_type, vertex, neg_num)
//!     return vertex, context, neg
//! ```

use crate::negative::NegativeSampler;
use crate::neighborhood::{ContextTree, NeighborAccess, NeighborhoodSampler};
use crate::traverse::TraverseSampler;
use aligraph_graph::{AttributedHeterogeneousGraph, EdgeType, VertexId};
use rand::Rng;

/// One training batch: seed vertices, their multi-hop context, and per-seed
/// negatives.
#[derive(Debug, Clone)]
pub struct SampleBatch {
    /// Seed vertices (sources of the traversed edges).
    pub vertices: Vec<VertexId>,
    /// Positive targets (destinations of the traversed edges).
    pub positives: Vec<VertexId>,
    /// Multi-hop context of the seeds.
    pub context: ContextTree,
    /// `negatives[i]` are the negatives drawn for `vertices[i]`.
    pub negatives: Vec<Vec<VertexId>>,
}

/// The three-sampler pipeline (`s1`, `s2`, `s3` of Figure 5).
pub struct SamplingPipeline<T, N, G> {
    /// TRAVERSE sampler.
    pub traverse: T,
    /// NEIGHBORHOOD sampler.
    pub neighborhood: N,
    /// NEGATIVE sampler.
    pub negative: G,
    /// Fan-out per hop (`hop_nums`).
    pub hop_nums: Vec<usize>,
    /// Negatives per seed (`neg_num`).
    pub neg_num: usize,
}

impl<T, N, G> std::fmt::Debug for SamplingPipeline<T, N, G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SamplingPipeline")
            .field("hop_nums", &self.hop_nums)
            .field("neg_num", &self.neg_num)
            .finish()
    }
}

impl<T, N, G> SamplingPipeline<T, N, G>
where
    T: TraverseSampler,
    N: NeighborhoodSampler,
    G: NegativeSampler,
{
    /// Runs one sampling stage over `graph` with storage reads going through
    /// `access` (pass the graph itself for single-machine runs, or a
    /// [`crate::neighborhood::ClusterView`] for accounted distributed runs).
    pub fn sample<A: NeighborAccess, R: Rng>(
        &self,
        graph: &AttributedHeterogeneousGraph,
        access: &A,
        etype: EdgeType,
        batch_size: usize,
        rng: &mut R,
    ) -> SampleBatch {
        // vertex = s1.sample(edge_type, batch_size)
        let edges = self.traverse.sample_edges(graph, etype, batch_size, rng);
        let mut vertices = Vec::with_capacity(edges.len());
        let mut positives = Vec::with_capacity(edges.len());
        for e in edges {
            let rec = graph.edge(e);
            vertices.push(rec.src);
            positives.push(rec.dst);
        }
        // context = s2.sample(edge_type, vertex, hop_nums)
        let context =
            self.neighborhood.sample_context(access, &vertices, Some(etype), &self.hop_nums, rng);
        // neg = s3.sample(edge_type, vertex, neg_num)
        let negatives = vertices
            .iter()
            .zip(&positives)
            .map(|(&v, &p)| self.negative.sample(graph, &[v, p], self.neg_num, rng))
            .collect();
        SampleBatch { vertices, positives, context, negatives }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::negative::UniformNegative;
    use crate::neighborhood::UniformNeighborhood;
    use crate::traverse::UniformTraverse;
    use aligraph_graph::generate::TaobaoConfig;
    use aligraph_graph::ids::well_known::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pipeline() -> SamplingPipeline<UniformTraverse, UniformNeighborhood, UniformNegative> {
        SamplingPipeline {
            traverse: UniformTraverse,
            neighborhood: UniformNeighborhood,
            negative: UniformNegative { vtype: Some(ITEM) },
            hop_nums: vec![5, 3],
            neg_num: 4,
        }
    }

    #[test]
    fn batch_shape_matches_figure5_contract() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let batch = pipeline().sample(&g, &g, BUY, 32, &mut rng);
        assert_eq!(batch.vertices.len(), 32);
        assert_eq!(batch.positives.len(), 32);
        assert_eq!(batch.negatives.len(), 32);
        assert!(batch.negatives.iter().all(|n| n.len() == 4));
        assert_eq!(batch.context.layers[0].targets, batch.vertices);
        // Seeds are sources of BUY edges (users); positives are items.
        assert!(batch.vertices.iter().all(|&v| g.vertex_type(v) == USER));
        assert!(batch.positives.iter().all(|&v| g.vertex_type(v) == ITEM));
    }

    #[test]
    fn negatives_exclude_the_positive_pair() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let batch = pipeline().sample(&g, &g, CLICK, 64, &mut rng);
        for ((v, p), negs) in batch.vertices.iter().zip(&batch.positives).zip(&batch.negatives) {
            assert!(!negs.contains(v));
            assert!(!negs.contains(p));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let b1 = pipeline().sample(&g, &g, BUY, 16, &mut StdRng::seed_from_u64(3));
        let b2 = pipeline().sample(&g, &g, BUY, 16, &mut StdRng::seed_from_u64(3));
        assert_eq!(b1.vertices, b2.vertices);
        assert_eq!(b1.positives, b2.positives);
        assert_eq!(b1.negatives, b2.negatives);
        assert_eq!(b1.context, b2.context);
    }
}
