//! TRAVERSE samplers: batches of vertices or edges from the (partitioned)
//! graph — the seed generator of every training pipeline (paper §3.3:
//! "TRAVERSE samplers get data from the local subgraphs").

use crate::alias::AliasTable;
use aligraph_graph::{AttributedHeterogeneousGraph, EdgeId, EdgeType, VertexId, VertexType};
use aligraph_partition::{Partition, WorkerId};
use aligraph_telemetry::Registry;
use rand::Rng;

/// A pluggable TRAVERSE sampler.
pub trait TraverseSampler {
    /// Draws `batch` vertices (optionally restricted to one vertex type).
    fn sample_vertices<R: Rng>(
        &self,
        graph: &AttributedHeterogeneousGraph,
        vtype: Option<VertexType>,
        batch: usize,
        rng: &mut R,
    ) -> Vec<VertexId>;

    /// Draws `batch` edges of one type.
    fn sample_edges<R: Rng>(
        &self,
        graph: &AttributedHeterogeneousGraph,
        etype: EdgeType,
        batch: usize,
        rng: &mut R,
    ) -> Vec<EdgeId>;
}

/// Uniform traversal over the vertex/edge rosters.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformTraverse;

impl UniformTraverse {
    /// Uniform batch from an explicit roster (e.g. one worker's owned
    /// vertices — the "local subgraph" form).
    pub fn sample_from_roster<R: Rng>(
        roster: &[VertexId],
        batch: usize,
        rng: &mut R,
    ) -> Vec<VertexId> {
        if roster.is_empty() {
            return Vec::new();
        }
        (0..batch).map(|_| roster[rng.gen_range(0..roster.len())]).collect()
    }
}

impl TraverseSampler for UniformTraverse {
    fn sample_vertices<R: Rng>(
        &self,
        graph: &AttributedHeterogeneousGraph,
        vtype: Option<VertexType>,
        batch: usize,
        rng: &mut R,
    ) -> Vec<VertexId> {
        match vtype {
            Some(t) => Self::sample_from_roster(graph.vertices_of_type(t), batch, rng),
            None => {
                let n = graph.num_vertices();
                if n == 0 {
                    return Vec::new();
                }
                (0..batch).map(|_| VertexId(rng.gen_range(0..n as u32))).collect()
            }
        }
    }

    fn sample_edges<R: Rng>(
        &self,
        graph: &AttributedHeterogeneousGraph,
        etype: EdgeType,
        batch: usize,
        rng: &mut R,
    ) -> Vec<EdgeId> {
        let roster = graph.edges_of_type(etype);
        if roster.is_empty() {
            return Vec::new();
        }
        (0..batch).map(|_| roster[rng.gen_range(0..roster.len())]).collect()
    }
}

/// Weight-proportional edge traversal: edges of a type are drawn with
/// probability proportional to their weight, via a prebuilt alias table.
#[derive(Debug, Clone)]
pub struct WeightedEdgeTraverse {
    tables: Vec<Option<AliasTable>>,
}

impl WeightedEdgeTraverse {
    /// Precomputes one alias table per edge type.
    pub fn new(graph: &AttributedHeterogeneousGraph) -> Self {
        Self::new_registered(graph, &Registry::disabled())
    }

    /// Like [`new`](Self::new), counting each alias-table (re)build as
    /// `sampling.alias.rebuilds` in `registry` — the O(n) cost a dynamic
    /// graph pays per delta when edge weights change.
    pub fn new_registered(graph: &AttributedHeterogeneousGraph, registry: &Registry) -> Self {
        let rebuilds = registry.counter("sampling.alias.rebuilds", &[]);
        let tables = (0..graph.num_edge_types())
            .map(|t| {
                let roster = graph.edges_of_type(EdgeType(t));
                if roster.is_empty() {
                    return None;
                }
                let weights: Vec<f32> = roster.iter().map(|&e| graph.edge(e).weight).collect();
                rebuilds.inc();
                AliasTable::new(&weights)
            })
            .collect();
        WeightedEdgeTraverse { tables }
    }
}

impl TraverseSampler for WeightedEdgeTraverse {
    fn sample_vertices<R: Rng>(
        &self,
        graph: &AttributedHeterogeneousGraph,
        vtype: Option<VertexType>,
        batch: usize,
        rng: &mut R,
    ) -> Vec<VertexId> {
        // Vertex traversal falls back to uniform; the weighting is on edges.
        UniformTraverse.sample_vertices(graph, vtype, batch, rng)
    }

    fn sample_edges<R: Rng>(
        &self,
        graph: &AttributedHeterogeneousGraph,
        etype: EdgeType,
        batch: usize,
        rng: &mut R,
    ) -> Vec<EdgeId> {
        let roster = graph.edges_of_type(etype);
        match self.tables.get(etype.index()).and_then(|t| t.as_ref()) {
            Some(table) => (0..batch).map(|_| roster[table.sample(rng)]).collect(),
            None => Vec::new(),
        }
    }
}

/// Per-shard TRAVERSE rosters: for one worker, the edges of each type whose
/// source vertex the worker owns — the "local subgraph" a shard-pinned
/// trainer samples from. Rosters preserve the global `edges_of_type` order,
/// so with a single worker `sample` is draw-for-draw identical to
/// [`UniformTraverse::sample_edges`] on the full graph.
#[derive(Debug, Clone)]
pub struct ShardEdgePools {
    pools: Vec<Vec<EdgeId>>,
    num_edges: usize,
}

impl ShardEdgePools {
    /// Filters the graph's per-type edge rosters down to `worker`'s shard.
    pub fn build(
        graph: &AttributedHeterogeneousGraph,
        partition: &Partition,
        worker: WorkerId,
    ) -> Self {
        let pools: Vec<Vec<EdgeId>> = (0..graph.num_edge_types())
            .map(|t| {
                graph
                    .edges_of_type(EdgeType(t))
                    .iter()
                    .copied()
                    .filter(|&e| partition.owner_of_edge(e) == worker)
                    .collect()
            })
            .collect();
        let num_edges = pools.iter().map(Vec::len).sum();
        ShardEdgePools { pools, num_edges }
    }

    /// Uniform batch of shard-local edges of one type. An empty pool yields
    /// an empty batch without consuming any randomness (mirroring
    /// [`UniformTraverse::sample_edges`], which parity tests rely on).
    pub fn sample<R: Rng>(&self, etype: EdgeType, batch: usize, rng: &mut R) -> Vec<EdgeId> {
        let pool = match self.pools.get(etype.index()) {
            Some(p) if !p.is_empty() => p,
            _ => return Vec::new(),
        };
        (0..batch).map(|_| pool[rng.gen_range(0..pool.len())]).collect()
    }

    /// Total shard-local edges across all types.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// True when this shard owns no edges at all.
    pub fn is_empty(&self) -> bool {
        self.num_edges == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aligraph_graph::generate::TaobaoConfig;
    use aligraph_graph::ids::well_known::*;
    use aligraph_graph::{AttrVector, GraphBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_vertices_respect_type() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let batch = UniformTraverse.sample_vertices(&g, Some(ITEM), 64, &mut rng);
        assert_eq!(batch.len(), 64);
        assert!(batch.iter().all(|&v| g.vertex_type(v) == ITEM));
        let any = UniformTraverse.sample_vertices(&g, None, 10, &mut rng);
        assert_eq!(any.len(), 10);
    }

    #[test]
    fn uniform_edges_respect_type() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let batch = UniformTraverse.sample_edges(&g, BUY, 32, &mut rng);
        assert_eq!(batch.len(), 32);
        assert!(batch.iter().all(|&e| g.edge(e).etype == BUY));
    }

    #[test]
    fn missing_type_yields_empty() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(UniformTraverse.sample_edges(&g, EdgeType(7), 8, &mut rng).is_empty());
        assert!(UniformTraverse.sample_vertices(&g, Some(VertexType(9)), 8, &mut rng).is_empty());
    }

    #[test]
    fn weighted_edges_prefer_heavy() {
        // Two edges of the same type, one 100x heavier.
        let mut b = GraphBuilder::directed();
        let u = b.add_vertex(USER, AttrVector::empty());
        let i1 = b.add_vertex(ITEM, AttrVector::empty());
        let i2 = b.add_vertex(ITEM, AttrVector::empty());
        b.add_edge(u, i1, CLICK, 100.0).unwrap();
        b.add_edge(u, i2, CLICK, 1.0).unwrap();
        let g = b.build();
        let sampler = WeightedEdgeTraverse::new(&g);
        let mut rng = StdRng::seed_from_u64(4);
        let draws = sampler.sample_edges(&g, CLICK, 5_000, &mut rng);
        let heavy = draws.iter().filter(|&&e| g.edge(e).dst == i1).count();
        assert!(heavy > 4_700, "heavy drawn {heavy}/5000");
    }

    #[test]
    fn registered_build_counts_alias_rebuilds() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let registry = Registry::new();
        let s = WeightedEdgeTraverse::new_registered(&g, &registry);
        let built = registry.snapshot().counter("sampling.alias.rebuilds", &[]);
        let nonempty =
            (0..g.num_edge_types()).filter(|&t| !g.edges_of_type(EdgeType(t)).is_empty()).count();
        assert_eq!(built, nonempty as u64);
        // The registered build draws identically to the plain one.
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let plain = WeightedEdgeTraverse::new(&g);
        assert_eq!(s.sample_edges(&g, BUY, 32, &mut a), plain.sample_edges(&g, BUY, 32, &mut b));
    }

    #[test]
    fn shard_pools_partition_edges_and_replay_global_order() {
        use aligraph_partition::{EdgeCutHash, Partitioner};
        let g = TaobaoConfig::tiny().generate().unwrap();
        // One worker: pools must equal the global rosters, and sampling must
        // replay UniformTraverse::sample_edges draw for draw.
        let p1 = EdgeCutHash.partition(&g, 1);
        let pool = ShardEdgePools::build(&g, &p1, aligraph_partition::WorkerId(0));
        assert_eq!(pool.num_edges(), g.num_edge_records());
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        assert_eq!(pool.sample(BUY, 64, &mut a), UniformTraverse.sample_edges(&g, BUY, 64, &mut b));
        // Absent type: empty result, no randomness consumed.
        assert!(pool.sample(EdgeType(7), 8, &mut a).is_empty());
        assert_eq!(a.gen_range(0..1_000u32), b.gen_range(0..1_000u32));

        // Four workers: pools are disjoint, cover every edge, and each edge
        // sits with its source's owner.
        let p4 = EdgeCutHash.partition(&g, 4);
        let pools: Vec<ShardEdgePools> = (0..4)
            .map(|w| ShardEdgePools::build(&g, &p4, aligraph_partition::WorkerId(w)))
            .collect();
        assert_eq!(
            pools.iter().map(ShardEdgePools::num_edges).sum::<usize>(),
            g.num_edge_records()
        );
        for (w, pool) in pools.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(w as u64);
            for e in pool.sample(BUY, 32, &mut rng) {
                assert_eq!(p4.owner_of(g.edge(e).src).index(), w);
            }
        }
    }

    #[test]
    fn roster_sampling() {
        let roster = vec![VertexId(3), VertexId(9)];
        let mut rng = StdRng::seed_from_u64(5);
        let s = UniformTraverse::sample_from_roster(&roster, 100, &mut rng);
        assert_eq!(s.len(), 100);
        assert!(s.iter().all(|v| roster.contains(v)));
        assert!(UniformTraverse::sample_from_roster(&[], 4, &mut rng).is_empty());
    }
}
