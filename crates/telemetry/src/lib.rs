//! Unified telemetry for the AliGraph reproduction.
//!
//! One dependency-light substrate replaces the bespoke counters that used to
//! live in `storage::cost`, `serving::metrics`, and `runtime::ps`:
//!
//! - [`Counter`] — lock-free, cache-line-striped monotonic counter.
//! - [`Gauge`] — a settable signed level (queue depth, cache occupancy).
//! - [`Histogram`] — fixed-bucket latency/value distribution: p50/p95/p99
//!   without storing every sample (bounded memory, bounded error).
//! - [`Registry`] — global-free registry keyed by dotted metric name plus a
//!   label set (`storage.access{tier=remote}`). Handles are `Arc`s; the hot
//!   path never touches the registry lock.
//! - [`Span`] / [`SpanScope`] — drop-guard wall-clock timing into a
//!   histogram, with a per-thread handle cache so shard-pinned workers do
//!   not contend on shared state.
//! - [`Report`] — the one trait every human/JSON report surface implements
//!   (`render_text`, `to_json`, `merge`).
//!
//! Determinism contract: telemetry records values but **never branches on
//! them** — no code path may read a metric to make a decision. A run with a
//! [`Registry::disabled()`] registry and a live one must therefore be
//! bit-identical (the regression test in the workspace `tests/` enforces
//! this for training loss trajectories).

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

mod histogram;
mod json;
mod metric;
mod registry;
mod report;
mod span;

pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use json::Json;
pub use metric::{Counter, Gauge};
pub use registry::{MetricValue, Registry, RegistrySnapshot, Series, SeriesKey};
pub use report::Report;
pub use span::{Span, SpanScope, Stopwatch};
