//! Lightweight span timing: a drop guard measures wall-clock nanoseconds
//! into a histogram, and a per-thread scope caches name→handle lookups so
//! shard-pinned workers never touch shared state on the hot path.

use crate::histogram::Histogram;
use crate::registry::Registry;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// An in-flight timed section. Created by [`Span::enter`]; records elapsed
/// nanoseconds into its histogram when dropped (ends of early returns and
/// `?` exits included — that's the point of a drop guard).
#[derive(Debug)]
pub struct Span {
    hist: Arc<Histogram>,
    start: Instant,
}

impl Span {
    /// Starts timing into `hist`.
    #[inline]
    pub fn enter(hist: &Arc<Histogram>) -> Span {
        Span { hist: hist.clone(), start: Instant::now() }
    }

    /// Elapsed time so far (mostly for tests).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

/// A started wall-clock measurement that is read, not branched on.
///
/// Telemetry owns the clock in this workspace: `aligraph-lint`'s
/// `determinism-taint` pass flags raw `Instant::now()` that flows into
/// seeded paths (this crate is exempt), and every other layer that wants to
/// *report* how long something took (cluster build phases, run wall time,
/// per-epoch timings) goes through a `Stopwatch`. Like [`Span`], it
/// records; unlike [`Span`], the caller chooses where the reading lands
/// (a report struct, a histogram, a log line). Using a reading to steer
/// control flow in a seeded path is still a bug — and still caught,
/// because deadlines need arithmetic on `Instant`s, not elapsed readings.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts measuring.
    #[inline]
    pub fn start() -> Stopwatch {
        Stopwatch { start: Instant::now() }
    }

    /// Elapsed wall-clock time since `start`.
    #[inline]
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX`.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A per-thread cache of span histograms, resolved once per (thread, name).
///
/// Worker threads construct one `SpanScope` from the run's registry at
/// startup; `enter("sampling.neighborhood")` then costs a thread-local
/// `HashMap` hit plus an `Instant::now()` — no registry lock, no sharing
/// with sibling workers beyond the striped histogram itself.
#[derive(Debug)]
pub struct SpanScope {
    registry: Arc<Registry>,
    cache: RefCell<HashMap<&'static str, Arc<Histogram>>>,
}

impl SpanScope {
    /// A scope over `registry`. One per thread; `SpanScope` is deliberately
    /// `!Sync` (interior `RefCell`) so it cannot be shared.
    pub fn new(registry: Arc<Registry>) -> SpanScope {
        SpanScope { registry, cache: RefCell::new(HashMap::new()) }
    }

    /// The histogram behind `name` (cached after the first call).
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        self.cache
            .borrow_mut()
            .entry(name)
            .or_insert_with(|| self.registry.histogram(name, &[]))
            .clone()
    }

    /// Starts a span recording elapsed ns into `name`'s histogram.
    #[inline]
    pub fn enter(&self, name: &'static str) -> Span {
        Span::enter(&self.histogram(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let h = Arc::new(Histogram::new());
        {
            let _s = Span::enter(&h);
            std::thread::yield_now();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
    }

    #[test]
    fn scope_caches_and_registers() {
        let r = Arc::new(Registry::new());
        let scope = SpanScope::new(r.clone());
        drop(scope.enter("t.span"));
        drop(scope.enter("t.span"));
        assert_eq!(r.snapshot().histogram("t.span", &[]).count, 2);
        // Cached handle is the registered one.
        assert!(Arc::ptr_eq(&scope.histogram("t.span"), &r.histogram("t.span", &[])));
    }

    #[test]
    fn scope_on_disabled_registry_is_inert() {
        let r = Arc::new(Registry::disabled());
        let scope = SpanScope::new(r.clone());
        drop(scope.enter("x"));
        // The cached handle works (count advances) but nothing registers.
        assert_eq!(scope.histogram("x").snapshot().count, 1);
        assert!(r.snapshot().series.is_empty());
    }
}
