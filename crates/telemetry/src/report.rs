//! The one report trait every surface implements.
//!
//! `ServingReport`, `DistReport`, the bench summaries, and raw
//! [`RegistrySnapshot`](crate::RegistrySnapshot)s all speak this interface,
//! so the CLI can render any of them as a human table or stable JSON
//! without knowing which layer produced it.

use crate::json::Json;

/// A renderable, serializable, mergeable report.
pub trait Report {
    /// Human-readable rendering (tables, one fact per line).
    fn render_text(&self) -> String;

    /// Stable JSON rendering. Field order is fixed by the implementation,
    /// so output is byte-identical for identical inputs.
    fn to_json(&self) -> Json;

    /// Folds another report of the same shape into this one (counters add,
    /// histograms pool, gauges take the other side's latest level).
    fn merge(&mut self, other: &Self)
    where
        Self: Sized;
}
