//! Fixed-bucket histogram: HdrHistogram-style log-linear buckets giving
//! p50/p95/p99 over an unbounded `u64` value range in constant memory,
//! without storing individual samples.
//!
//! Bucket layout: values `0..8` get one exact bucket each; every larger
//! value lands in one of four sub-buckets of its power-of-two octave
//! (`idx = 8 + (msb - 3) * 4 + sub`, where `sub` is the next two bits below
//! the most significant one). Bucket width is at most 25% of the bucket's
//! lower bound, so reporting the midpoint bounds relative quantile error at
//! ~12.5% — ample for latency percentiles, and the determinism story is
//! simple because recording is a single atomic increment.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Octaves above the exact range: msb 3..=63 inclusive.
const OCTAVES: usize = 61;
/// Buckets: 8 exact values + 4 sub-buckets per octave.
pub const BUCKETS: usize = 8 + OCTAVES * 4;

/// Bucket index of a value.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < 8 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // >= 3 since v >= 8
    let sub = ((v >> (msb - 2)) & 3) as usize;
    8 + (msb - 3) * 4 + sub
}

/// Lower bound of a bucket (its smallest member value).
fn bucket_lower(idx: usize) -> u64 {
    if idx < 8 {
        return idx as u64;
    }
    let rel = idx - 8;
    let msb = rel / 4 + 3;
    let sub = (rel % 4) as u64;
    (1u64 << msb) + sub * (1u64 << (msb - 2))
}

/// Representative value reported for a bucket: its midpoint (for the exact
/// buckets, the value itself).
fn bucket_mid(idx: usize) -> u64 {
    if idx < 8 {
        return idx as u64;
    }
    let rel = idx - 8;
    let msb = rel / 4 + 3;
    let width = 1u64 << (msb - 2);
    let lower = bucket_lower(idx);
    // The topmost bucket's upper edge would overflow; clamp to the lower
    // bound plus half the width computed in u128 space.
    lower.saturating_add(width / 2)
}

/// A concurrent fixed-bucket histogram.
///
/// All mutation is relaxed atomic adds — recording never allocates, never
/// locks, and never reads a value it could branch on.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Fresh empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        // ordering: the five fields are independently monotone statistics;
        // no reader derives cross-field invariants stronger than "count
        // within one record of buckets" (snapshot tolerates in-flight
        // records), so Relaxed RMWs suffice — atomicity of each fetch_add
        // alone prevents lost updates.
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        // ordering: monotone scalar read; exact after writers join.
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy for reporting and merging. Concurrent with
    /// writers this is a torn-but-bounded read, like
    /// [`Counter::get`](crate::Counter::get): each field lags reality by
    /// at most the records in flight, and is exact once writers joined.
    pub fn snapshot(&self) -> HistogramSnapshot {
        // ordering: every field is independently monotone (min decreases,
        // the rest increase); Relaxed loads give per-field coherence,
        // which is all reports claim. Exactness comes from reading after
        // writer joins, not from load ordering.
        let count = self.count.load(Ordering::Relaxed);
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                // ordering: see snapshot() header — monotone bucket cells.
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u32, n))
            })
            .collect();
        HistogramSnapshot {
            count,
            // ordering: see snapshot() header — independently monotone.
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Zeroes everything. Like [`Counter::reset`](crate::Counter::reset),
    /// not linearizable against concurrent `record`s — callers reset only
    /// between measurement windows.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            // ordering: reset runs between windows with writers quiet.
            b.store(0, Ordering::Relaxed);
        }
        // ordering: reset runs between windows with writers quiet.
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("p50", &s.quantile(0.5))
            .field("max", &s.max)
            .finish()
    }
}

/// A point-in-time copy of a [`Histogram`], cheap to merge and serialize.
/// Only non-empty buckets are kept (sparse `(index, count)` pairs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Recorded values.
    pub count: u64,
    /// Sum of recorded values (wrapping add under extreme totals).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Sparse non-empty buckets: `(bucket index, count)`, ascending index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Nearest-rank quantile (`q` in `[0, 1]`), reported as the
    /// representative (midpoint) value of the bucket holding that rank,
    /// clamped to the observed `[min, max]` so one-sample and narrow
    /// distributions answer exactly. Empty histograms yield 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_mid(idx as usize).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Adds another snapshot's samples into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let mut merged: Vec<(u32, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (self.buckets.iter().peekable(), other.buckets.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia == ib {
                        merged.push((ia, na + nb));
                        a.next();
                        b.next();
                    } else if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else {
                        merged.push((ib, nb));
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_values() {
        for v in 0..8u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_mid(v as usize), v);
        }
    }

    #[test]
    fn buckets_are_monotone_and_contain_their_values() {
        let mut prev_lower = 0;
        for idx in 0..BUCKETS {
            let lower = bucket_lower(idx);
            assert!(idx == 0 || lower > prev_lower, "bucket {idx} lower {lower}");
            assert_eq!(bucket_of(lower), idx, "lower bound maps back to its bucket");
            prev_lower = lower;
        }
        // Spot-check: a bucket's width is at most 25% of its lower bound.
        for idx in 8..BUCKETS - 4 {
            let width = bucket_lower(idx + 1) - bucket_lower(idx);
            assert!(width * 4 <= bucket_lower(idx).max(1) * 2, "idx {idx}");
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn empty_and_single_sample() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        h.record(1234);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!((s.min, s.max), (1234, 1234));
        // Clamping to [min, max] makes single-sample quantiles exact.
        assert_eq!(s.quantile(0.0), 1234);
        assert_eq!(s.quantile(0.5), 1234);
        assert_eq!(s.quantile(1.0), 1234);
    }

    #[test]
    fn quantiles_track_oracle_within_bucket_error() {
        let mut values: Vec<u64> = (0..10_000).map(|i| (i * i) % 900_007 + 1).collect();
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let s = h.snapshot();
        for &q in &[0.5, 0.95, 0.99] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let oracle = values[rank - 1];
            let got = s.quantile(q);
            let err = (got as f64 - oracle as f64).abs() / oracle as f64;
            assert!(err <= 0.125, "q={q}: got {got}, oracle {oracle}, err {err}");
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let (a, b, c) = (Histogram::new(), Histogram::new(), Histogram::new());
        for i in 0..1000u64 {
            let v = i * 37 + 5;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            c.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m, c.snapshot());
        // Merging an empty snapshot is a no-op; merging into empty clones.
        let mut e = HistogramSnapshot::default();
        e.merge(&m);
        assert_eq!(e, c.snapshot());
        m.merge(&HistogramSnapshot::default());
        assert_eq!(m, c.snapshot());
    }

    #[test]
    fn overflow_bucket_handles_max() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
        // Quantile stays within [min, max] even at the saturating top bucket.
        assert!(s.quantile(0.99) >= s.min);
        assert!(s.quantile(0.99) <= s.max);
    }

    #[test]
    fn reset_empties() {
        let h = Histogram::new();
        h.record(7);
        h.reset();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn duration_recording() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(3));
        assert_eq!(h.snapshot().min, 3_000);
    }
}
