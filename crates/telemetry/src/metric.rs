//! Counter and gauge primitives.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of independent counter stripes. Each stripe sits on its own cache
/// line, so increments from different threads rarely collide. 16 stripes
/// cover the worker counts this codebase runs (benches top out well below
/// that), while keeping an idle counter at 1 KiB.
const STRIPES: usize = 16;

/// One cache-line-padded counter cell.
#[repr(align(64))]
#[derive(Default)]
struct Cell(AtomicU64);

/// A lock-free monotonic counter, striped across cache lines.
///
/// Threads hash to a stripe once (thread-local) and increment only that
/// cell, so concurrent `inc` calls from shard-pinned workers don't bounce a
/// single cache line between cores. Reads sum all stripes — slightly more
/// work, but reads happen once per report, not per event.
#[derive(Default)]
pub struct Counter {
    cells: [Cell; STRIPES],
}

thread_local! {
    /// Each thread picks one stripe for its lifetime. A simple round-robin
    /// assignment (monotonic id modulo STRIPES) spreads threads evenly.
    static STRIPE: usize = {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        (NEXT.fetch_add(1, Ordering::Relaxed) as usize) % STRIPES
    };
}

impl Counter {
    /// Fresh zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to this thread's stripe.
    #[inline]
    pub fn add(&self, n: u64) {
        let s = STRIPE.with(|s| *s);
        self.cells[s].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all stripes (relaxed; exact once writer threads
    /// are joined, which is when reports are taken).
    pub fn get(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    /// Zeroes every stripe.
    pub fn reset(&self) {
        for c in &self.cells {
            c.0.store(0, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter").field("value", &self.get()).finish()
    }
}

/// A settable signed level: queue depth, cache occupancy, replica lag.
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Fresh zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gauge").field("value", &self.get()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_add_get_reset() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_set_add() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }
}
