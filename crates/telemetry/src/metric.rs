//! Counter and gauge primitives.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of independent counter stripes. Each stripe sits on its own cache
/// line, so increments from different threads rarely collide. 16 stripes
/// cover the worker counts this codebase runs (benches top out well below
/// that), while keeping an idle counter at 1 KiB.
const STRIPES: usize = 16;

/// One cache-line-padded counter cell.
#[repr(align(64))]
#[derive(Default)]
struct Cell(AtomicU64);

/// A lock-free monotonic counter, striped across cache lines.
///
/// Threads hash to a stripe once (thread-local) and increment only that
/// cell, so concurrent `inc` calls from shard-pinned workers don't bounce a
/// single cache line between cores. Reads sum all stripes — slightly more
/// work, but reads happen once per report, not per event.
#[derive(Default)]
pub struct Counter {
    cells: [Cell; STRIPES],
}

thread_local! {
    /// Each thread picks one stripe for its lifetime. A simple round-robin
    /// assignment (monotonic id modulo STRIPES) spreads threads evenly.
    static STRIPE: usize = {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        // ordering: a unique-ticket fetch_add; only atomicity matters for
        // handing each thread a distinct id, so Relaxed suffices.
        (NEXT.fetch_add(1, Ordering::Relaxed) as usize) % STRIPES
    };
}

impl Counter {
    /// Fresh zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to this thread's stripe.
    #[inline]
    pub fn add(&self, n: u64) {
        self.add_to_stripe(STRIPE.with(|s| *s), n);
    }

    /// Number of stripes. Exposed for the mini-loom concurrency checker
    /// (`aligraph-lint`), which drives per-stripe operations directly.
    #[doc(hidden)]
    pub const fn num_stripes() -> usize {
        STRIPES
    }

    /// Adds `n` to one specific stripe — the mini-loom hook that lets the
    /// checker pin virtual writers to stripes the way the thread-local
    /// round-robin pins real threads.
    #[doc(hidden)]
    #[inline]
    pub fn add_to_stripe(&self, stripe: usize, n: u64) {
        // ordering: counter increments are commutative and carry no
        // payload another thread reads through them; the report-time sum
        // happens after writer joins (which synchronize), so Relaxed
        // suffices.
        self.cells[stripe % STRIPES].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads one stripe — the mini-loom hook that makes the 16-load
    /// snapshot tear across interleavings instead of hiding inside one
    /// library call.
    #[doc(hidden)]
    #[inline]
    pub fn read_stripe(&self, stripe: usize) -> u64 {
        // ordering: a lone monotone value; per-stripe coherence of Relaxed
        // loads on the same atomic is all the snapshot bound needs.
        self.cells[stripe % STRIPES].0.load(Ordering::Relaxed)
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all stripes (relaxed; exact once writer threads
    /// are joined, which is when reports are taken).
    ///
    /// Concurrent with writers, the sum is a *torn* read with a proven
    /// bound (mini-loom `striped-counter` target): it lies between the
    /// true total when the read started and the true total when it
    /// finished, and successive reads by one thread never go backward.
    pub fn get(&self) -> u64 {
        // ordering: each stripe is monotone and independently coherent;
        // Relaxed loads give the torn-snapshot bound above, and exactness
        // after joins comes from the join's synchronization, not ours.
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    /// Zeroes every stripe. Not linearizable against concurrent `add`s
    /// (an increment may land before its stripe is cleared and be lost);
    /// callers reset only between measurement windows, with writers quiet.
    pub fn reset(&self) {
        for c in &self.cells {
            // ordering: reset happens between measurement windows with no
            // concurrent writers; Relaxed stores are enough.
            c.0.store(0, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter").field("value", &self.get()).finish()
    }
}

/// A settable signed level: queue depth, cache occupancy, replica lag.
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Fresh zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        // ordering: a standalone level with no cross-variable invariant;
        // last-writer-wins is the intended semantics, Relaxed suffices.
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        // ordering: atomic RMW already prevents lost updates; no payload
        // is published through this value, so Relaxed suffices.
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        // ordering: point-in-time report read; staleness is acceptable.
        self.value.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gauge").field("value", &self.get()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_add_get_reset() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_set_add() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }
}
