//! The metric registry: dotted names plus label sets map to shared handles.
//!
//! There is deliberately no global registry. Each CLI command, bench, or
//! test constructs its own [`Registry`] (usually one `Arc<Registry>` per
//! run) and threads it through constructors, so two runs in one process
//! never share series and tests never race. Components that don't care get
//! a [`Registry::disabled()`] registry: handles still work (recording is
//! harmless) but register nothing, so snapshots stay empty and the hot path
//! is identical either way — the determinism guarantee depends on that.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::json::Json;
use crate::metric::{Counter, Gauge};
use crate::report::Report;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Identity of one series: dotted metric name plus sorted labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    /// Dotted metric name, e.g. `storage.access`.
    pub name: String,
    /// Label pairs, sorted by key (e.g. `[("tier", "remote")]`).
    pub labels: Vec<(String, String)>,
}

impl SeriesKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        SeriesKey { name: name.to_string(), labels }
    }

    /// `name{k=v,...}` rendering used in tables and error messages.
    pub fn render(&self) -> String {
        let mut out = self.name.clone();
        if !self.labels.is_empty() {
            out.push('{');
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{k}={v}");
            }
            out.push('}');
        }
        out
    }
}

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

/// A global-free metric registry.
///
/// Registration takes the internal lock once per series; the returned `Arc`
/// handles are lock-free to record into, so components register at
/// construction time and the hot path never sees the registry again.
pub struct Registry {
    /// `None` means disabled: handles are handed out but never retained.
    series: Option<Mutex<BTreeMap<SeriesKey, Handle>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A live registry.
    pub fn new() -> Self {
        Registry { series: Some(Mutex::new(BTreeMap::new())) }
    }

    /// A disabled registry: every `counter`/`gauge`/`histogram` call returns
    /// a fresh functional handle that is NOT retained, so recording costs
    /// the same as when enabled (determinism) but snapshots are empty.
    pub fn disabled() -> Self {
        Registry { series: None }
    }

    /// Whether this registry retains series.
    pub fn is_enabled(&self) -> bool {
        self.series.is_some()
    }

    fn lookup<T, F: FnOnce() -> Arc<T>>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: F,
        wrap: fn(Arc<T>) -> Handle,
        unwrap: fn(&Handle) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let Some(series) = &self.series else {
            return make();
        };
        let key = SeriesKey::new(name, labels);
        // invariant: the only panic possible under this lock is the kind-
        // collision below, which is a deliberate fail-fast on a programming
        // error — a poisoned registry means the process is already going down.
        let mut map = series.lock().expect("telemetry registry poisoned");
        match map.get(&key) {
            Some(h) => unwrap(h).unwrap_or_else(|| {
                // aligraph::allow(no-unwrap-in-lib): registering one series
                // key as two different metric kinds is a documented
                // fail-loudly API contract (DESIGN.md §2.12), not a
                // recoverable condition.
                panic!(
                    "telemetry series {} already registered as a {}, requested as a different kind",
                    key.render(),
                    h.kind()
                )
            }),
            None => {
                let handle = make();
                map.insert(key, wrap(handle.clone()));
                handle
            }
        }
    }

    /// Registers (or retrieves) a counter. Same name+labels → the same
    /// underlying counter; same key under a different metric kind panics —
    /// that's a programming error worth failing loudly on.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.lookup(
            name,
            labels,
            || Arc::new(Counter::new()),
            Handle::Counter,
            |h| match h {
                Handle::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Registers (or retrieves) a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.lookup(
            name,
            labels,
            || Arc::new(Gauge::new()),
            Handle::Gauge,
            |h| match h {
                Handle::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Registers (or retrieves) a histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.lookup(
            name,
            labels,
            || Arc::new(Histogram::new()),
            Handle::Histogram,
            |h| match h {
                Handle::Histogram(x) => Some(x.clone()),
                _ => None,
            },
        )
    }

    /// Point-in-time copy of every registered series, sorted by key.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let Some(series) = &self.series else {
            return RegistrySnapshot::default();
        };
        // invariant: see lookup() — only the deliberate kind-collision
        // panic can poison this lock.
        let map = series.lock().expect("telemetry registry poisoned");
        let series = map
            .iter()
            .map(|(key, handle)| Series {
                key: key.clone(),
                value: match handle {
                    Handle::Counter(c) => MetricValue::Counter(c.get()),
                    Handle::Gauge(g) => MetricValue::Gauge(g.get()),
                    Handle::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        RegistrySnapshot { series }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.series.as_ref().map(|s| s.lock().map(|m| m.len()).unwrap_or(0));
        f.debug_struct("Registry").field("series", &n).finish()
    }
}

/// The value of one series at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// Signed level.
    Gauge(i64),
    /// Distribution summary.
    Histogram(HistogramSnapshot),
}

/// One series in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Name + labels.
    pub key: SeriesKey,
    /// Value at snapshot time.
    pub value: MetricValue,
}

/// A point-in-time copy of a whole registry — the substrate every report
/// renders from, and the unit CLI `--metrics-json` serializes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// All series, ascending by key.
    pub series: Vec<Series>,
}

impl RegistrySnapshot {
    /// Finds a series by name and exact label set.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        let key = SeriesKey::new(name, labels);
        self.series.iter().find(|s| s.key == key).map(|s| &s.value)
    }

    /// Counter value by name + labels (0 when absent — absent and untouched
    /// are indistinguishable by design).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.get(name, labels) {
            Some(MetricValue::Counter(n)) => *n,
            _ => 0,
        }
    }

    /// Gauge value by name + labels (0 when absent).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> i64 {
        match self.get(name, labels) {
            Some(MetricValue::Gauge(n)) => *n,
            _ => 0,
        }
    }

    /// Histogram snapshot by name + labels (empty when absent).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> HistogramSnapshot {
        match self.get(name, labels) {
            Some(MetricValue::Histogram(h)) => h.clone(),
            _ => HistogramSnapshot::default(),
        }
    }

    /// Sums every counter whose name matches, across all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.series
            .iter()
            .filter(|s| s.key.name == name)
            .map(|s| match &s.value {
                MetricValue::Counter(n) => *n,
                _ => 0,
            })
            .sum()
    }

    /// True when any series name starts with `prefix` (e.g. `storage.`).
    pub fn has_prefix(&self, prefix: &str) -> bool {
        self.series.iter().any(|s| s.key.name.starts_with(prefix))
    }
}

fn labels_json(labels: &[(String, String)]) -> Json {
    Json::Obj(labels.iter().map(|(k, v)| (k.clone(), Json::Str(v.clone()))).collect())
}

impl Report for RegistrySnapshot {
    fn render_text(&self) -> String {
        if self.series.is_empty() {
            return "(no metrics)\n".to_string();
        }
        let width = self.series.iter().map(|s| s.key.render().len()).max().unwrap_or(0);
        let mut out = String::new();
        for s in &self.series {
            let _ = write!(out, "{:<width$}  ", s.key.render());
            match &s.value {
                MetricValue::Counter(n) => {
                    let _ = writeln!(out, "{n}");
                }
                MetricValue::Gauge(n) => {
                    let _ = writeln!(out, "{n}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "count {}  mean {:.0}  p50 {}  p95 {}  p99 {}  max {}",
                        h.count,
                        h.mean(),
                        h.quantile(0.5),
                        h.quantile(0.95),
                        h.quantile(0.99),
                        h.max
                    );
                }
            }
        }
        out
    }

    fn to_json(&self) -> Json {
        let metrics = self
            .series
            .iter()
            .map(|s| {
                let mut fields = vec![
                    ("name".to_string(), Json::Str(s.key.name.clone())),
                    ("labels".to_string(), labels_json(&s.key.labels)),
                ];
                match &s.value {
                    MetricValue::Counter(n) => {
                        fields.push(("kind".to_string(), Json::str("counter")));
                        fields.push(("value".to_string(), Json::UInt(*n)));
                    }
                    MetricValue::Gauge(n) => {
                        fields.push(("kind".to_string(), Json::str("gauge")));
                        fields.push(("value".to_string(), Json::Int(*n)));
                    }
                    MetricValue::Histogram(h) => {
                        fields.push(("kind".to_string(), Json::str("histogram")));
                        fields.push(("count".to_string(), Json::UInt(h.count)));
                        fields.push(("sum".to_string(), Json::UInt(h.sum)));
                        fields.push(("min".to_string(), Json::UInt(h.min)));
                        fields.push(("max".to_string(), Json::UInt(h.max)));
                        fields.push(("mean".to_string(), Json::Float(h.mean())));
                        fields.push(("p50".to_string(), Json::UInt(h.quantile(0.5))));
                        fields.push(("p95".to_string(), Json::UInt(h.quantile(0.95))));
                        fields.push(("p99".to_string(), Json::UInt(h.quantile(0.99))));
                    }
                }
                Json::Obj(fields)
            })
            .collect();
        Json::obj(vec![("metrics", Json::Arr(metrics))])
    }

    fn merge(&mut self, other: &Self) {
        for s in &other.series {
            match self.series.iter_mut().find(|mine| mine.key == s.key) {
                Some(mine) => match (&mut mine.value, &s.value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = *b,
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                    // Kind mismatch can't happen for snapshots taken from
                    // registries (registration panics first); keep ours.
                    _ => {}
                },
                None => self.series.push(s.clone()),
            }
        }
        self.series.sort_by(|a, b| a.key.cmp(&b.key));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_shares_handle_distinct_labels_do_not() {
        let r = Registry::new();
        let a = r.counter("x.hits", &[("tier", "local")]);
        let b = r.counter("x.hits", &[("tier", "local")]);
        let c = r.counter("x.hits", &[("tier", "remote")]);
        a.inc();
        b.inc();
        c.add(5);
        let snap = r.snapshot();
        assert_eq!(snap.counter("x.hits", &[("tier", "local")]), 2);
        assert_eq!(snap.counter("x.hits", &[("tier", "remote")]), 5);
        assert_eq!(snap.counter_total("x.hits"), 7);
    }

    #[test]
    fn label_order_is_irrelevant() {
        let r = Registry::new();
        let a = r.counter("y", &[("a", "1"), ("b", "2")]);
        let b = r.counter("y", &[("b", "2"), ("a", "1")]);
        a.inc();
        b.inc();
        assert_eq!(r.snapshot().counter("y", &[("a", "1"), ("b", "2")]), 2);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_collision_panics() {
        let r = Registry::new();
        let _ = r.counter("z", &[]);
        let _ = r.histogram("z", &[]);
    }

    #[test]
    fn disabled_registry_hands_out_working_unregistered_handles() {
        let r = Registry::disabled();
        assert!(!r.is_enabled());
        let c = r.counter("a", &[]);
        c.add(3);
        assert_eq!(c.get(), 3);
        let h = r.histogram("b", &[]);
        h.record(1);
        assert!(r.snapshot().series.is_empty());
    }

    #[test]
    fn snapshot_renders_and_serializes() {
        let r = Registry::new();
        r.counter("b.count", &[]).add(2);
        r.gauge("c.level", &[]).set(-4);
        let h = r.histogram("a.lat", &[("kind", "x")]);
        h.record(10);
        h.record(20);
        let snap = r.snapshot();
        let text = snap.render_text();
        assert!(text.contains("a.lat{kind=x}"));
        assert!(text.contains("b.count"));
        assert!(text.contains("p95"));
        let json = snap.to_json().to_string();
        assert!(json.contains(r#""name":"b.count","labels":{},"kind":"counter","value":2"#));
        assert!(json.contains(r#""kind":"gauge","value":-4"#));
        assert!(json.contains(r#""p99":"#));
        assert!(snap.has_prefix("a."));
        assert!(!snap.has_prefix("zz."));
    }

    #[test]
    fn snapshots_merge() {
        let r1 = Registry::new();
        let r2 = Registry::new();
        r1.counter("n", &[]).add(1);
        r2.counter("n", &[]).add(2);
        r2.counter("only2", &[]).add(9);
        r1.histogram("h", &[]).record(5);
        r2.histogram("h", &[]).record(500);
        let mut m = r1.snapshot();
        m.merge(&r2.snapshot());
        assert_eq!(m.counter("n", &[]), 3);
        assert_eq!(m.counter("only2", &[]), 9);
        let h = m.histogram("h", &[]);
        assert_eq!((h.count, h.min, h.max), (2, 5, 500));
    }

    #[test]
    fn missing_series_defaults() {
        let snap = Registry::new().snapshot();
        assert_eq!(snap.counter("nope", &[]), 0);
        assert_eq!(snap.gauge("nope", &[]), 0);
        assert_eq!(snap.histogram("nope", &[]).count, 0);
        assert!(snap.render_text().contains("no metrics"));
    }
}
