//! A minimal JSON value with a stable serializer.
//!
//! The workspace deliberately carries no `serde_json`; telemetry's export
//! needs are tiny (numbers, strings, nested objects), so a hand-rolled enum
//! with a deterministic `Display` keeps the crate dependency-free. Object
//! fields serialize in insertion order, so callers control key ordering and
//! the output is byte-stable run to run.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer (covers counters, counts, nanoseconds).
    UInt(u64),
    /// A signed integer (gauges).
    Int(i64),
    /// A finite float; NaN/infinite values serialize as `null`.
    Float(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; fields keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience: a string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// Looks up a field of an object (None for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Float(x) if x.is_finite() => {
                if *x == x.trunc() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Float(_) => f.write_str("null"),
            Json::Str(s) => escape(s, f),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_nesting() {
        let j = Json::obj(vec![
            ("name", Json::str("storage.access")),
            ("count", Json::UInt(42)),
            ("level", Json::Int(-3)),
            ("rate", Json::Float(0.5)),
            ("whole", Json::Float(2.0)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("tags", Json::Arr(vec![Json::str("a"), Json::str("b")])),
        ]);
        assert_eq!(
            j.to_string(),
            r#"{"name":"storage.access","count":42,"level":-3,"rate":0.5,"whole":2.0,"flag":true,"none":null,"tags":["a","b"]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::str("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::Str("\u{1}".to_string()).to_string(), "\"\\u0001\"");
    }

    #[test]
    fn nan_is_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn get_walks_objects() {
        let j = Json::obj(vec![("a", Json::UInt(1))]);
        assert_eq!(j.get("a"), Some(&Json::UInt(1)));
        assert_eq!(j.get("b"), None);
        assert_eq!(Json::Null.get("a"), None);
    }
}
