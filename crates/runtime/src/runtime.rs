//! The distributed training runtime: shard-pinned trainer workers against
//! the sparse parameter server, with bounded-staleness replica pulls,
//! synchronous epoch-boundary allreduce of dense parameters, periodic
//! checkpoints, and fault injection with checkpoint recovery.
//!
//! Workers are simulated as threads, one per [`Cluster`] partition. Each
//! worker samples mini-batches **from its own edge shard**, computes
//! gradients with the shared tape machinery ([`contrastive_step`]), pushes
//! row-sparse feature gradients to the PS shard owning each vertex, and
//! averages dense layer parameters with the other workers at every epoch
//! boundary. The [`Coordinator`] serializes workers in strict round-robin
//! order, so every run is a deterministic function of its seed — including
//! runs resumed from a checkpoint and runs interrupted by the fault
//! injector.
//!
//! With one worker, staleness 0 and a frozen sparse learning rate, the loop
//! degenerates to exactly [`aligraph::train_unsupervised`] — the
//! convergence-parity test pins the loss trajectories bit-for-bit.

use crate::checkpoint::{latest_valid_checkpoint, Checkpoint, WorkerCkpt};
use crate::error::RuntimeError;
use crate::ps::{ChannelSeqs, SparseParamServer};
use crate::report::{DistReport, WorkerReport};
use crate::ssp::{Abort, Coordinator, Deposit, Rendezvous};
use aligraph::{contrastive_step, GnnEncoder};
use aligraph_chaos::{FaultPlane, RecoveryMode, RetryPolicy};
use aligraph_graph::{AttributedHeterogeneousGraph, EdgeType, FeatureMatrix};
use aligraph_partition::WorkerId;
use aligraph_sampling::neighborhood::ClusterView;
use aligraph_sampling::{worker_rng, MeteredNeighborhood, ShardEdgePools, UniformNeighborhood};
use aligraph_storage::{Cluster, RebalanceOp};
use aligraph_telemetry::{Registry, Span, Stopwatch};
use rand::rngs::StdRng;
use rand::Rng;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Where and how often to checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory for `ckpt-<step>.bin` files (created on first write).
    pub dir: PathBuf,
    /// Also checkpoint mid-epoch every this many global steps (0 = epoch
    /// boundaries only). Epoch boundaries always checkpoint.
    pub every_steps: u64,
}

/// Fault injection: kill one worker at one global step (fires once per
/// run), forcing a restore from the latest checkpoint.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Worker to kill.
    pub worker: u32,
    /// Global step at which it dies (before computing that step).
    pub at_step: u64,
}

/// Chaos-plane configuration: a seeded [`aligraph_chaos::FaultPlan`] over
/// every PS push/pull channel plus the recovery machinery's parameters.
/// Excluded from the config fingerprint like the legacy [`FaultPlan`], so a
/// chaos run's checkpoints interchange with fault-free ones — which is what
/// lets the chaos suite assert bit-exact convergence against the fault-free
/// baseline.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// The seeded fault plan (what to inject, where, how often).
    pub plan: aligraph_chaos::FaultPlan,
    /// Capped-backoff retry policy for faulted sends.
    pub policy: RetryPolicy,
    /// Recovery machinery selection. [`RecoveryMode::Full`] is the real
    /// system; the broken variants exist for divergence-detection tests.
    pub mode: RecoveryMode,
}

impl ChaosConfig {
    /// The common CLI shape: fault seed + drop rate, defaults elsewhere.
    pub fn with_seed(seed: u64, drop_rate: f64) -> Self {
        ChaosConfig {
            plan: aligraph_chaos::FaultPlan::with_seed(seed, drop_rate),
            policy: RetryPolicy::default(),
            mode: RecoveryMode::Full,
        }
    }
}

/// One scheduled elastic topology change: after training epoch
/// `after_epoch` completes (1-based), apply `op` to the cluster and re-home
/// the parameter-server rows to match, all inside the epoch-boundary
/// allreduce rendezvous where every worker is parked. Excluded from the
/// config fingerprint: a rebalance moves only physical residency, never the
/// math, so checkpoints interchange with static-topology runs — which is
/// what lets the migration chaos suite pin bit-exact convergence across a
/// mid-training split.
#[derive(Debug, Clone, Copy)]
pub struct RebalancePlan {
    /// Apply after this many epochs have finished (1-based; `1` = after the
    /// first epoch's allreduce).
    pub after_epoch: usize,
    /// The topology change.
    pub op: RebalanceOp,
    /// Recovery machinery for the migration stream. [`RecoveryMode::Full`]
    /// is the real system; the broken variants deliberately lose moved
    /// subgraphs/rows so divergence tests have teeth.
    pub mode: RecoveryMode,
}

/// Per-attempt chaos runtime handles threaded through the worker loop.
struct ChaosRt<'p> {
    plane: &'p FaultPlane,
    policy: RetryPolicy,
    mode: RecoveryMode,
    /// Once-only latches, one per `crash_schedule` entry.
    crash_fired: &'p [AtomicBool],
}

/// Configuration of a distributed training run.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Trainer workers; must equal the cluster's partition count.
    pub workers: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batches **per worker** per epoch (weak scaling: more workers
    /// process proportionally more data per epoch).
    pub batches_per_epoch: usize,
    /// Positive edges per mini-batch.
    pub batch_size: usize,
    /// Negatives per positive.
    pub negatives: usize,
    /// Bounded staleness `s`: a worker may compute on a replica that is up
    /// to `s` steps behind before it must drain the parameter server.
    pub staleness: u64,
    /// Base seed; worker `w` derives its stream via
    /// [`aligraph_sampling::worker_seed`]`(seed, w)`.
    pub seed: u64,
    /// AdaGrad learning rate for sparse feature-row updates (0 freezes the
    /// input features, matching the sequential trainer).
    pub sparse_lr: f32,
    /// Early stopping patience over epoch losses (`None` disables).
    pub patience: Option<usize>,
    /// Minimum epoch-loss improvement that counts as progress.
    pub min_delta: f64,
    /// Checkpointing (`None` disables; fault recovery then restarts from
    /// scratch).
    pub checkpoint: Option<CheckpointConfig>,
    /// Fault injection (`None` disables).
    pub fault: Option<FaultPlan>,
    /// Chaos plane over every PS channel (`None` disables).
    pub chaos: Option<ChaosConfig>,
    /// Elastic topology changes to apply at epoch boundaries, in order.
    pub rebalance: Vec<RebalancePlan>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 1,
            epochs: 3,
            batches_per_epoch: 20,
            batch_size: 32,
            negatives: 4,
            staleness: 0,
            seed: 42,
            sparse_lr: 0.0,
            patience: None,
            min_delta: 1e-4,
            checkpoint: None,
            fault: None,
            chaos: None,
            rebalance: Vec::new(),
        }
    }
}

/// How each worker builds its (identical) local encoder. Workers construct
/// their own instance from this spec — encoders hold tapes and are not
/// shared across threads.
#[derive(Debug, Clone)]
pub struct EncoderSpec {
    /// Input feature dimension.
    pub dim_in: usize,
    /// Hidden dimension per hop.
    pub dims: Vec<usize>,
    /// Sampling fanout per hop.
    pub fanouts: Vec<usize>,
    /// Dense-layer learning rate.
    pub lr: f32,
    /// Parameter-init seed (same for all workers: replicas start equal).
    pub seed: u64,
}

impl EncoderSpec {
    fn build(&self) -> GnnEncoder {
        GnnEncoder::sage(self.dim_in, &self.dims, &self.fanouts, self.lr, self.seed)
    }
}

/// What a finished run hands back.
#[derive(Debug)]
pub struct DistOutcome {
    /// Metrics.
    pub report: DistReport,
    /// The trained encoder (post final allreduce).
    pub encoder: GnnEncoder,
    /// The final input features (trained if `sparse_lr > 0`).
    pub features: FeatureMatrix,
}

/// Cross-worker training bookkeeping guarded by one mutex; leaders mutate
/// it at rendezvous points.
#[derive(Default)]
struct SharedTrain {
    epoch_losses: Vec<f64>,
    best_loss: f64,
    stall: u64,
    early_stopped: bool,
}

/// Plain data a worker thread returns on success.
struct WorkerDone {
    state: Vec<f32>,
    edges: u64,
    busy_ns: u64,
    comm_ns: u64,
    hist: Vec<u64>,
}

/// The distributed trainer: borrows a built [`Cluster`] and initial
/// features, owns its run configuration.
pub struct DistTrainer<'a> {
    cluster: &'a Cluster,
    features: &'a FeatureMatrix,
    spec: EncoderSpec,
    cfg: RuntimeConfig,
    registry: Arc<Registry>,
}

impl std::fmt::Debug for DistTrainer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistTrainer").field("spec", &self.spec).field("cfg", &self.cfg).finish()
    }
}

impl<'a> DistTrainer<'a> {
    /// Validates shapes up front so every failure is a [`RuntimeError::Config`]
    /// before any thread spawns.
    pub fn new(
        cluster: &'a Cluster,
        features: &'a FeatureMatrix,
        spec: EncoderSpec,
        cfg: RuntimeConfig,
    ) -> Result<Self, RuntimeError> {
        let fail = |m: String| Err(RuntimeError::Config(m));
        if cfg.workers == 0 || cfg.workers != cluster.num_workers() {
            return fail(format!(
                "cfg.workers = {} but the cluster has {} partitions",
                cfg.workers,
                cluster.num_workers()
            ));
        }
        if cfg.epochs == 0 || cfg.batches_per_epoch == 0 || cfg.batch_size == 0 {
            return fail("epochs, batches_per_epoch and batch_size must all be >= 1".into());
        }
        if spec.dims.is_empty() || spec.dims.len() != spec.fanouts.len() {
            return fail(format!(
                "encoder needs one fanout per hop (got {} dims, {} fanouts)",
                spec.dims.len(),
                spec.fanouts.len()
            ));
        }
        if features.dim != spec.dim_in {
            return fail(format!("feature dim {} != encoder dim_in {}", features.dim, spec.dim_in));
        }
        if features.len() != cluster.graph().num_vertices() {
            return fail(format!(
                "feature matrix has {} rows, graph has {} vertices",
                features.len(),
                cluster.graph().num_vertices()
            ));
        }
        for plan in &cfg.rebalance {
            if plan.after_epoch == 0 || plan.after_epoch > cfg.epochs {
                return fail(format!(
                    "rebalance after_epoch {} out of range (1..={} epochs)",
                    plan.after_epoch, cfg.epochs
                ));
            }
        }
        Ok(DistTrainer { cluster, features, spec, cfg, registry: Arc::new(Registry::disabled()) })
    }

    /// Publishes the run's metrics into `registry`: the parameter server's
    /// `runtime.ps.*` meters, the `runtime.staleness` and
    /// `runtime.allreduce_ns` histograms, and the samplers'
    /// `sampling.draws{kind=...}` / `sampling.latency_ns{kind=...}` series.
    /// Telemetry only observes — the training trajectory is bit-identical
    /// with or without a live registry (the determinism regression pins
    /// this).
    pub fn with_registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = registry;
        self
    }

    /// Hashes the structural configuration: everything a checkpoint must
    /// agree on to be loadable (graph shape, partition count, batch shape,
    /// seeds, model dims) — but *not* epoch count or the checkpoint/fault
    /// plumbing, so a run can be extended or re-run with different fault
    /// plans.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::new();
        let mut push = |v: u64| bytes.extend_from_slice(&v.to_le_bytes());
        push(self.cfg.workers as u64);
        push(self.cfg.batches_per_epoch as u64);
        push(self.cfg.batch_size as u64);
        push(self.cfg.negatives as u64);
        push(self.cfg.staleness);
        push(self.cfg.seed);
        push(self.cfg.sparse_lr.to_bits() as u64);
        push(match self.cfg.patience {
            None => u64::MAX,
            Some(p) => p as u64,
        });
        push(self.cfg.min_delta.to_bits());
        push(self.spec.dim_in as u64);
        for &d in &self.spec.dims {
            push(d as u64);
        }
        for &f in &self.spec.fanouts {
            push(f as u64);
        }
        push(self.spec.lr.to_bits() as u64);
        push(self.spec.seed);
        push(self.cluster.graph().num_vertices() as u64);
        push(self.cluster.graph().num_edge_records() as u64);
        crate::checkpoint::fnv1a(&bytes)
    }

    /// Trains from scratch (restarting from the latest checkpoint only if
    /// the fault injector fires).
    pub fn train(&self) -> Result<DistOutcome, RuntimeError> {
        self.run(None)
    }

    /// Resumes from a checkpoint file and continues to `cfg.epochs`.
    pub fn train_from(&self, path: &Path) -> Result<DistOutcome, RuntimeError> {
        self.train_from_checkpoint(Checkpoint::read_from(path)?)
    }

    /// Resumes from an already-loaded checkpoint and continues to
    /// `cfg.epochs`. This is the closed loop's warm-start entry point: the
    /// caller may patch re-pulled feature rows into the shard state
    /// ([`Checkpoint::patch_feature_rows`]) before resuming. With
    /// `ckpt.global_step` already at `cfg.epochs * cfg.batches_per_epoch`,
    /// the run is a zero-step no-op that hands back exactly the
    /// checkpointed model.
    pub fn train_from_checkpoint(&self, ckpt: Checkpoint) -> Result<DistOutcome, RuntimeError> {
        self.validate_checkpoint(&ckpt)?;
        self.run(Some(ckpt))
    }

    fn validate_checkpoint(&self, ckpt: &Checkpoint) -> Result<(), RuntimeError> {
        if ckpt.fingerprint != self.fingerprint() {
            return Err(RuntimeError::Checkpoint(
                "config fingerprint mismatch: checkpoint was written by a structurally \
                 different run (workers/batch/seed/model/graph changed)"
                    .into(),
            ));
        }
        if ckpt.workers.len() != self.cfg.workers {
            return Err(RuntimeError::Checkpoint(format!(
                "checkpoint has {} workers, config has {}",
                ckpt.workers.len(),
                self.cfg.workers
            )));
        }
        let total = self.cfg.batches_per_epoch as u64 * self.cfg.epochs as u64;
        if ckpt.global_step > total {
            return Err(RuntimeError::Checkpoint(format!(
                "checkpoint is at step {} but this run only has {} steps",
                ckpt.global_step, total
            )));
        }
        for (w, wk) in ckpt.workers.iter().enumerate() {
            if wk.hist.len() != self.cfg.staleness as usize + 1 {
                return Err(RuntimeError::Checkpoint(format!(
                    "worker {w} histogram has {} bins, staleness {} needs {}",
                    wk.hist.len(),
                    self.cfg.staleness,
                    self.cfg.staleness + 1
                )));
            }
        }
        Ok(())
    }

    /// The attempt loop: run, and on an injected fault restore from the
    /// latest checkpoint (or from scratch) and retry.
    fn run(&self, resume: Option<Checkpoint>) -> Result<DistOutcome, RuntimeError> {
        let started = Stopwatch::start();
        self.cluster.stats().reset();
        // With no fault planned the flag starts "already fired".
        let fault_fired = AtomicBool::new(self.cfg.fault.is_none());
        let checkpoints = AtomicU64::new(0);
        // The plane and its crash latches outlive the attempt loop: fault
        // counters accumulate across recoveries, and each scheduled crash
        // fires exactly once per run (not once per attempt).
        let chaos_state = self.cfg.chaos.as_ref().map(|c| {
            let fired: Vec<AtomicBool> =
                c.plan.crash_schedule.iter().map(|_| AtomicBool::new(false)).collect();
            (FaultPlane::registered(c.plan.clone(), &self.registry), fired)
        });
        let max_recoveries =
            8 + self.cfg.chaos.as_ref().map_or(0, |c| c.plan.crash_schedule.len() as u64);
        let mut resume = resume;
        let mut recoveries = 0u64;
        loop {
            let chaos =
                self.cfg.chaos.as_ref().zip(chaos_state.as_ref()).map(|(c, (plane, fired))| {
                    ChaosRt { plane, policy: c.policy, mode: c.mode, crash_fired: fired }
                });
            match self.run_attempt(resume.take(), &fault_fired, &checkpoints, chaos.as_ref()) {
                Ok(mut outcome) => {
                    outcome.report.wall_ns = started.elapsed_ns();
                    outcome.report.recoveries = recoveries;
                    // ordering: read after all worker threads joined inside
                    // run_attempt; the join synchronizes, Relaxed suffices.
                    outcome.report.checkpoints_written = checkpoints.load(Ordering::Relaxed);
                    if let Some((plane, _)) = &chaos_state {
                        let snap = plane.snapshot();
                        outcome.report.faults_injected = snap.faults_injected;
                        outcome.report.retries = snap.retries;
                    }
                    return Ok(outcome);
                }
                Err(RuntimeError::Fault { .. }) => {
                    recoveries += 1;
                    if recoveries > max_recoveries {
                        return Err(RuntimeError::Unrecoverable(format!(
                            "fault recovery looped more than {max_recoveries} times"
                        )));
                    }
                    resume = match &self.cfg.checkpoint {
                        // Newest-first scan past corrupted/truncated files:
                        // a chaos-flipped checkpoint falls back to the
                        // previous valid one (or a scratch restart).
                        Some(ck) => match latest_valid_checkpoint(&ck.dir)? {
                            Some((_, ckpt)) => {
                                self.validate_checkpoint(&ckpt)?;
                                Some(ckpt)
                            }
                            None => None,
                        },
                        None => None,
                    };
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn run_attempt(
        &self,
        resume: Option<Checkpoint>,
        fault_fired: &AtomicBool,
        checkpoints: &AtomicU64,
        chaos: Option<&ChaosRt<'_>>,
    ) -> Result<DistOutcome, RuntimeError> {
        let cfg = &self.cfg;
        let p = cfg.workers;
        let batches = cfg.batches_per_epoch as u64;
        let total_steps = batches * cfg.epochs as u64;
        let t0 = resume.as_ref().map_or(0, |c| c.global_step);
        let fingerprint = self.fingerprint();

        // Pre-allocate one PS slot per scheduled split so slot indices and
        // sequence tables stay stable across every rebalance of the run.
        let splits =
            cfg.rebalance.iter().filter(|p| matches!(p.op, RebalanceOp::Split { .. })).count();
        let ps = SparseParamServer::new_elastic(
            self.cluster.partition(),
            self.features,
            cfg.sparse_lr,
            *self.cluster.cost_model(),
            &self.registry,
            cfg.workers.max(self.cluster.num_shards()) + splits,
        );
        // Registered counters are shared registry-wide, so a fault-recovery
        // retry must zero them to report only its own traffic (matching the
        // fresh-per-attempt counters the PS had before telemetry).
        ps.reset_stats();
        if let Some(ck) = &resume {
            ps.load(&ck.shards)?;
        }

        let shared = Mutex::new(match &resume {
            Some(ck) => SharedTrain {
                epoch_losses: ck.epoch_losses.clone(),
                best_loss: ck.best_loss,
                stall: ck.stall,
                early_stopped: false,
            },
            None => SharedTrain { best_loss: f64::INFINITY, ..SharedTrain::default() },
        });
        let co = Coordinator::new(p, t0);
        let rebalances = AtomicU64::new(0);
        // Materialized once, before any worker can push: each worker's
        // starting replica must be the time-t0 server state, not whatever
        // the server holds when that worker's thread happens to start.
        let initial_replica = ps.materialize()?;
        let initial_replica = &initial_replica;
        let resume = resume.as_ref();

        let results: Vec<Result<WorkerDone, RuntimeError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..p)
                .map(|me| {
                    let ps = &ps;
                    let co = &co;
                    let shared = &shared;
                    let rebalances = &rebalances;
                    scope.spawn(move || {
                        self.worker_loop(
                            me,
                            t0,
                            total_steps,
                            fingerprint,
                            resume,
                            initial_replica.clone(),
                            ps,
                            co,
                            shared,
                            fault_fired,
                            checkpoints,
                            rebalances,
                            chaos,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(RuntimeError::Unrecoverable("worker panicked".into()))
                    })
                })
                .collect()
        });

        // A non-fault error wins (it is the root cause); otherwise any fault
        // sends the attempt loop to recovery.
        let mut fault = None;
        let mut done = Vec::with_capacity(p);
        for r in results {
            match r {
                Ok(d) => done.push(d),
                Err(e @ RuntimeError::Fault { .. }) => fault = Some(e),
                Err(e) => return Err(e),
            }
        }
        if let Some(e) = fault {
            return Err(e);
        }

        let shared =
            shared.into_inner().map_err(|_| RuntimeError::Poisoned("shared train state"))?;
        let mut encoder = self.spec.build();
        encoder.load_dense_state_vec(&done[0].state).map_err(RuntimeError::Unrecoverable)?;
        let features = ps.materialize()?;

        let per_worker: Vec<WorkerReport> = done
            .iter()
            .map(|d| WorkerReport { edges: d.edges, busy_ns: d.busy_ns, comm_ns: d.comm_ns })
            .collect();
        let mut staleness_hist = vec![0u64; cfg.staleness as usize + 1];
        for d in &done {
            for (bin, &n) in d.hist.iter().enumerate() {
                staleness_hist[bin] += n;
            }
        }
        let report = DistReport {
            workers: p,
            staleness: cfg.staleness,
            epoch_losses: shared.epoch_losses,
            early_stopped: shared.early_stopped,
            edges_total: per_worker.iter().map(|w| w.edges).sum(),
            makespan_ns: per_worker.iter().map(|w| w.busy_ns + w.comm_ns).max().unwrap_or(0),
            per_worker,
            staleness_hist,
            wall_ns: 0,
            ps: ps.stats().snapshot(),
            adjacency: self.cluster.stats().snapshot(),
            checkpoints_written: 0,
            recoveries: 0,
            faults_injected: 0,
            retries: 0,
            // ordering: read after all worker threads joined above; the
            // join synchronizes, Relaxed suffices.
            rebalances: rebalances.load(Ordering::Relaxed),
        };
        Ok(DistOutcome { report, encoder, features })
    }

    /// One worker's whole life: step loop, rendezvous, checkpoints, fault.
    #[allow(clippy::too_many_arguments)]
    fn worker_loop(
        &self,
        me: usize,
        t0: u64,
        total_steps: u64,
        fingerprint: u64,
        resume: Option<&Checkpoint>,
        mut replica: FeatureMatrix,
        ps: &SparseParamServer,
        co: &Coordinator,
        shared: &Mutex<SharedTrain>,
        fault_fired: &AtomicBool,
        checkpoints: &AtomicU64,
        rebalances: &AtomicU64,
        chaos: Option<&ChaosRt<'_>>,
    ) -> Result<WorkerDone, RuntimeError> {
        let cfg = &self.cfg;
        let graph: &AttributedHeterogeneousGraph = self.cluster.graph();
        let batches = cfg.batches_per_epoch as u64;

        let mut encoder = self.spec.build();
        let mut rng = worker_rng(cfg.seed, me as u32);
        let mut last_drain = t0;
        let mut loss_sum = 0.0f64;
        let mut pairs = 0u64;
        let mut edges = 0u64;
        let mut busy_ns = 0u64;
        let mut comm_ns = 0u64;
        let mut hist = vec![0u64; cfg.staleness as usize + 1];
        if let Some(ck) = resume {
            let wk = &ck.workers[me];
            encoder.load_dense_state_vec(&wk.dense_state).map_err(RuntimeError::Checkpoint)?;
            if let Some(avg) = &ck.avg_params {
                encoder.load_dense_param_vec(avg).map_err(RuntimeError::Checkpoint)?;
            }
            rng = StdRng::from_state(wk.rng);
            last_drain = wk.last_drain;
            loss_sum = wk.loss_sum;
            pairs = wk.pairs;
            edges = wk.edges;
            busy_ns = wk.busy_ns;
            comm_ns = wk.comm_ns;
            hist.copy_from_slice(&wk.hist);
        }
        // Fresh per attempt, pairing with the PS's fresh `applied_seq`
        // table: a recovery restart replays its channels from sequence 0.
        // Sized by PS slots, not workers — after an elastic split, pushes
        // route to the spare shard's channel.
        let mut seqs = ChannelSeqs::new(ps.num_shards());
        let pools = ShardEdgePools::build(graph, self.cluster.partition(), WorkerId(me as u32));
        let view = ClusterView { cluster: self.cluster, from: WorkerId(me as u32) };
        let sampler = MeteredNeighborhood::new(UniformNeighborhood, &self.registry, "uniform");
        let staleness_hist = self.registry.histogram("runtime.staleness", &[]);
        let allreduce_ns = self.registry.histogram("runtime.allreduce_ns", &[]);

        let mut t = t0;
        while t < total_steps {
            co.acquire(me)?;
            if let Some(fp) = &cfg.fault {
                if fp.worker as usize == me
                    && t == fp.at_step
                    // ordering: SeqCst swap is the once-only latch for the
                    // injected fault; every worker must agree on which one
                    // crashed, and fault setup is cold-path, so the strongest
                    // ordering is the cheapest correct choice.
                    && !fault_fired.swap(true, Ordering::SeqCst)
                {
                    co.crash(Abort::Fault { worker: fp.worker })?;
                    return Err(RuntimeError::Fault { worker: fp.worker });
                }
            }
            if let Some(cx) = chaos {
                if let Some(i) = cx.plane.crash_scheduled(me as u32, t) {
                    // ordering: SeqCst swap is the once-only latch for this
                    // schedule entry, same rationale as the legacy fault
                    // latch above: cold path, every thread must agree.
                    if !cx.crash_fired[i].swap(true, Ordering::SeqCst) {
                        cx.plane.note_crash();
                        co.crash(Abort::Fault { worker: me as u32 })?;
                        return Err(RuntimeError::Fault { worker: me as u32 });
                    }
                }
            }

            // Bounded staleness: drain the PS once the replica is more than
            // `s` steps old, then record the age this step computed at.
            let mut age = t - last_drain;
            if age > cfg.staleness {
                comm_ns += match chaos {
                    Some(cx) => ps.drain_into_faulted(
                        me,
                        &mut replica,
                        cx.plane,
                        &cx.policy,
                        cx.mode,
                        &mut seqs,
                    )?,
                    None => ps.drain_into(me, &mut replica)?,
                };
                last_drain = t;
                age = 0;
            }
            hist[age as usize] += 1;
            staleness_hist.record(age);

            let start = Stopwatch::start();
            // Same draw sequence as the sequential trainer: edge type, then
            // the batch, then the step's internal sampling.
            let etype = EdgeType(rng.gen_range(0..graph.num_edge_types().max(1)));
            let batch = pools.sample(etype, cfg.batch_size, &mut rng);
            if !batch.is_empty() {
                let out = contrastive_step(
                    &mut encoder,
                    graph,
                    &view,
                    &replica,
                    &sampler,
                    &batch,
                    cfg.negatives,
                    &mut rng,
                );
                busy_ns += start.elapsed_ns();
                loss_sum += out.loss_sum;
                pairs += out.pairs as u64;
                edges += batch.len() as u64;
                comm_ns += ps.record_reads(me, out.feature_grads.keys());
                comm_ns += match chaos {
                    Some(cx) => ps.push_faulted(
                        me,
                        &out.feature_grads,
                        cx.plane,
                        &cx.policy,
                        cx.mode,
                        &mut seqs,
                    )?,
                    None => ps.push(me, &out.feature_grads)?,
                };
            } else {
                busy_ns += start.elapsed_ns();
            }
            co.complete(me)?;
            t += 1;

            let deposit = |state: bool| Deposit {
                params: if state { encoder.dense_param_vec() } else { Vec::new() },
                state: encoder.dense_state_vec(),
                rng: rng.state(),
                loss_sum,
                pairs,
                last_drain,
                edges,
                busy_ns,
                comm_ns,
                hist: hist.clone(),
            };

            // Mid-epoch checkpoint rendezvous (consistent cut: everyone has
            // completed exactly t steps).
            if let Some(ck) = &cfg.checkpoint {
                if ck.every_steps > 0
                    && t.is_multiple_of(ck.every_steps)
                    && !t.is_multiple_of(batches)
                    && t < total_steps
                {
                    let out = co.rendezvous(me, deposit(false), |deps| {
                        let sh = shared
                            .lock()
                            .map_err(|_| RuntimeError::Poisoned("shared train state"))?;
                        write_checkpoint(fingerprint, t, &sh, None, &deps, ps, &ck.dir, chaos)?;
                        // ordering: report-only tally read after worker
                        // joins; the join synchronizes, Relaxed suffices.
                        checkpoints.fetch_add(1, Ordering::Relaxed);
                        // Checkpoint cuts refresh every replica to the
                        // materialized server state — exactly the state a
                        // restore rebuilds (`initial_replica`) — so resumes
                        // are bit-exact at any staleness bound. The drain
                        // *schedule* (`last_drain`) is deliberately left
                        // untouched: pending drains still fire at the same
                        // steps, and the refresh itself cannot change what
                        // a later drain would deliver (undrained dirty rows
                        // are re-read from the server either way).
                        Ok(Rendezvous { drain: Some(ps.materialize()?), ..Rendezvous::default() })
                    })?;
                    if let Some(m) = &out.drain {
                        replica = m.clone();
                    }
                }
            }

            // Epoch boundary: average dense parameters, account the epoch
            // loss, decide early stop, checkpoint the averaged state.
            if t.is_multiple_of(batches) {
                let out = co.rendezvous(me, deposit(true), |mut deps| {
                    // Times the leader's allreduce + epoch bookkeeping into
                    // `runtime.allreduce_ns` (recorded when the guard drops).
                    let _allreduce = Span::enter(&allreduce_ns);
                    // Elastic boundary: every worker is parked at this
                    // rendezvous — no push, pull, sample, or drain is in
                    // flight — so scheduled topology changes migrate
                    // residency (graph shards + PS rows) here. Runs before
                    // the checkpoint below so the cut captures the
                    // post-move shard layout.
                    let epoch = (t / batches) as usize;
                    for (i, plan) in cfg.rebalance.iter().enumerate() {
                        if plan.after_epoch == epoch {
                            self.apply_rebalance(i, plan, ps, chaos)?;
                            // ordering: report-only tally read after worker
                            // joins; the join synchronizes, Relaxed
                            // suffices.
                            rebalances.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    let mut sh =
                        shared.lock().map_err(|_| RuntimeError::Poisoned("shared train state"))?;
                    let loss: f64 = deps.iter().map(|d| d.loss_sum).sum();
                    let n: u64 = deps.iter().map(|d| d.pairs).sum();
                    let mean = loss / n.max(1) as f64;
                    sh.epoch_losses.push(mean);
                    let mut stop = false;
                    if let Some(patience) = cfg.patience {
                        if mean + cfg.min_delta < sh.best_loss {
                            sh.best_loss = mean;
                            sh.stall = 0;
                        } else {
                            sh.stall += 1;
                            if sh.stall >= patience as u64 {
                                sh.early_stopped = true;
                                stop = true;
                            }
                        }
                    }
                    // Synchronous allreduce: elementwise mean of every
                    // worker's dense parameters. With one worker this is the
                    // bitwise identity (sum of one, divided by 1).
                    let mut avg = std::mem::take(&mut deps[0].params);
                    for d in &deps[1..] {
                        for (a, b) in avg.iter_mut().zip(&d.params) {
                            *a += *b;
                        }
                    }
                    let inv = 1.0 / deps.len() as f32;
                    for a in &mut avg {
                        *a *= inv;
                    }
                    let mut drain = None;
                    if let Some(ck) = &cfg.checkpoint {
                        // Epoch checkpoints store zeroed loss accumulators
                        // (the epoch just closed) plus the averaged params,
                        // and refresh replicas like the mid-epoch cut above.
                        for d in &mut deps {
                            d.loss_sum = 0.0;
                            d.pairs = 0;
                        }
                        write_checkpoint(
                            fingerprint,
                            t,
                            &sh,
                            Some(&avg),
                            &deps,
                            ps,
                            &ck.dir,
                            chaos,
                        )?;
                        // ordering: report-only tally read after worker
                        // joins; the join synchronizes, Relaxed suffices.
                        checkpoints.fetch_add(1, Ordering::Relaxed);
                        drain = Some(ps.materialize()?);
                    }
                    Ok(Rendezvous { avg_params: Some(avg), drain, stop })
                })?;
                let avg = out.avg_params.as_ref().ok_or(RuntimeError::Poisoned("allreduce"))?;
                encoder.load_dense_param_vec(avg).map_err(RuntimeError::Unrecoverable)?;
                if let Some(m) = &out.drain {
                    replica = m.clone();
                }
                loss_sum = 0.0;
                pairs = 0;
                if out.stop {
                    break;
                }
            }
        }
        Ok(WorkerDone { state: encoder.dense_state_vec(), edges, busy_ns, comm_ns, hist })
    }

    /// Applies one scheduled rebalance (leader-only, all workers parked).
    ///
    /// The cluster's topology outlives fault-recovery attempts, so the
    /// graph-side migration is guarded by the membership epoch — plan `i`
    /// takes the topology from epoch `i` to `i + 1`, and a recovery re-run
    /// that reaches this boundary again skips it. The PS is fresh per
    /// attempt, so its rows always re-home here; when the restored
    /// checkpoint already captured the post-move layout that re-home finds
    /// nothing to move.
    fn apply_rebalance(
        &self,
        index: usize,
        plan: &RebalancePlan,
        ps: &SparseParamServer,
        chaos: Option<&ChaosRt<'_>>,
    ) -> Result<(), RuntimeError> {
        let clean;
        let (plane, policy) = match chaos {
            Some(cx) => (cx.plane, cx.policy),
            None => {
                clean = FaultPlane::new(aligraph_chaos::FaultPlan::default());
                (&clean, RetryPolicy::default())
            }
        };
        if self.cluster.topology().current_epoch() <= index as u64 {
            self.cluster
                .rebalance(plan.op, plane, &policy, plan.mode)
                .map_err(|e| RuntimeError::Unrecoverable(format!("rebalance failed: {e}")))?;
        }
        ps.rehome(&self.cluster.residency_snapshot(), plane, &policy, plan.mode)?;
        Ok(())
    }
}

/// Assembles and atomically writes one checkpoint from the rendezvous
/// deposits (leader-only; runs under the coordinator lock). When the chaos
/// plan corrupts checkpoints, the plane picks a seeded subset of steps and
/// flips one byte in the written file — recovery must detect the bad
/// checksum and fall back to the previous valid checkpoint.
#[allow(clippy::too_many_arguments)]
fn write_checkpoint(
    fingerprint: u64,
    global_step: u64,
    sh: &SharedTrain,
    avg_params: Option<&[f32]>,
    deps: &[Deposit],
    ps: &SparseParamServer,
    dir: &Path,
    chaos: Option<&ChaosRt<'_>>,
) -> Result<(), RuntimeError> {
    let ckpt = Checkpoint {
        fingerprint,
        global_step,
        epoch_losses: sh.epoch_losses.clone(),
        best_loss: sh.best_loss,
        stall: sh.stall,
        avg_params: avg_params.map(<[f32]>::to_vec),
        workers: deps
            .iter()
            .map(|d| WorkerCkpt {
                rng: d.rng,
                last_drain: d.last_drain,
                loss_sum: d.loss_sum,
                pairs: d.pairs,
                edges: d.edges,
                busy_ns: d.busy_ns,
                comm_ns: d.comm_ns,
                hist: d.hist.clone(),
                dense_state: d.state.clone(),
            })
            .collect(),
        shards: ps.export()?,
    };
    let path = ckpt.write_to_dir(dir)?;
    if let Some(cx) = chaos {
        if let Some(offset) = cx.plane.corrupts_checkpoint(global_step) {
            let mut bytes = std::fs::read(&path)?;
            let i = (offset % bytes.len() as u64) as usize;
            bytes[i] ^= 0xff;
            std::fs::write(&path, &bytes)?;
        }
    }
    Ok(())
}
