//! The distributed-training report: throughput, modelled makespan,
//! staleness histogram, and comm traffic split by tier.

use aligraph_storage::{AccessStatsSnapshot, TierMeterSnapshot};
use aligraph_telemetry::{Json, Report};
use std::fmt;

/// Per-worker totals.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerReport {
    /// Positive edges consumed.
    pub edges: u64,
    /// Measured compute nanoseconds (this worker's own steps).
    pub busy_ns: u64,
    /// Modelled comm nanoseconds (PS pushes/pulls/reads under the cost
    /// model).
    pub comm_ns: u64,
}

/// Outcome metrics of one distributed training run.
#[derive(Debug, Clone, Default)]
pub struct DistReport {
    /// Worker count.
    pub workers: usize,
    /// Bounded-staleness parameter `s`.
    pub staleness: u64,
    /// Mean contrastive loss per epoch (cluster-wide).
    pub epoch_losses: Vec<f64>,
    /// Whether early stopping fired.
    pub early_stopped: bool,
    /// Per-worker totals.
    pub per_worker: Vec<WorkerReport>,
    /// `hist[a]` = steps computed on a replica `a` steps stale (summed over
    /// workers); length `s + 1`.
    pub staleness_hist: Vec<u64>,
    /// Total positive edges consumed across workers.
    pub edges_total: u64,
    /// Wall-clock nanoseconds as executed on this machine (workers are
    /// serialized here, so this is roughly the *sum* of worker times).
    pub wall_ns: u64,
    /// Modelled cluster makespan: `max` over workers of busy + comm time —
    /// what `p` real machines would take, given the per-worker costs
    /// measured exactly by serializing them.
    pub makespan_ns: u64,
    /// Parameter-server traffic by tier.
    pub ps: TierMeterSnapshot,
    /// Graph-adjacency traffic (neighbor reads through the cluster).
    pub adjacency: AccessStatsSnapshot,
    /// Checkpoints written during the run.
    pub checkpoints_written: u64,
    /// Fault recoveries performed (checkpoint restores mid-run).
    pub recoveries: u64,
    /// Faults the chaos plane injected (drops, delays, lost acks,
    /// corruptions, replayed duplicates, crashes, checkpoint flips).
    pub faults_injected: u64,
    /// Message retries the recovery machinery performed.
    pub retries: u64,
    /// Elastic topology changes applied at epoch boundaries (shard splits
    /// or merges, with their PS row re-homes).
    pub rebalances: u64,
}

impl DistReport {
    /// Final epoch loss.
    pub fn final_loss(&self) -> f64 {
        self.epoch_losses.last().copied().unwrap_or(f64::NAN)
    }

    /// Modelled throughput: edges/s at the cluster makespan.
    pub fn modeled_edges_per_sec(&self) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        self.edges_total as f64 / (self.makespan_ns as f64 / 1e9)
    }

    /// As-executed throughput on this machine (workers serialized).
    pub fn wall_edges_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.edges_total as f64 / (self.wall_ns as f64 / 1e9)
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

impl fmt::Display for DistReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "workers {}  staleness {}  epochs {}  edges {}",
            self.workers,
            self.staleness,
            self.epoch_losses.len(),
            self.edges_total
        )?;
        writeln!(
            f,
            "loss {:.6} (first {:.6}){}",
            self.final_loss(),
            self.epoch_losses.first().copied().unwrap_or(f64::NAN),
            if self.early_stopped { "  [early stop]" } else { "" }
        )?;
        writeln!(
            f,
            "throughput {:.0} edges/s modeled (makespan {:.1} ms), {:.0} edges/s as-executed ({:.1} ms wall)",
            self.modeled_edges_per_sec(),
            ms(self.makespan_ns),
            self.wall_edges_per_sec(),
            ms(self.wall_ns)
        )?;
        write!(f, "staleness hist [")?;
        for (a, &n) in self.staleness_hist.iter().enumerate() {
            write!(f, "{}{a}:{n}", if a == 0 { "" } else { " " })?;
        }
        writeln!(f, "]")?;
        writeln!(
            f,
            "ps comm: local {} msgs / {} B, cached {} msgs / {} B, remote {} msgs / {} B, cold {} msgs / {} B ({:.2} ms virtual)",
            self.ps.local_ops,
            self.ps.local_bytes,
            self.ps.cached_ops,
            self.ps.cached_bytes,
            self.ps.remote_ops,
            self.ps.remote_bytes,
            self.ps.cold_ops,
            self.ps.cold_bytes,
            self.ps.virtual_ns as f64 / 1e6
        )?;
        writeln!(
            f,
            "adjacency: local {}, cached {}, remote {}, cold {} ({:.2} ms virtual)",
            self.adjacency.local,
            self.adjacency.cached_remote,
            self.adjacency.remote,
            self.adjacency.cold,
            self.adjacency.virtual_ns as f64 / 1e6
        )?;
        write!(
            f,
            "checkpoints {}  recoveries {}  faults {}  retries {}  rebalances {}",
            self.checkpoints_written,
            self.recoveries,
            self.faults_injected,
            self.retries,
            self.rebalances
        )
    }
}

fn tier_json(s: &TierMeterSnapshot) -> Json {
    Json::obj(vec![
        ("local_ops", Json::UInt(s.local_ops)),
        ("cached_ops", Json::UInt(s.cached_ops)),
        ("remote_ops", Json::UInt(s.remote_ops)),
        ("cold_ops", Json::UInt(s.cold_ops)),
        ("local_bytes", Json::UInt(s.local_bytes)),
        ("cached_bytes", Json::UInt(s.cached_bytes)),
        ("remote_bytes", Json::UInt(s.remote_bytes)),
        ("cold_bytes", Json::UInt(s.cold_bytes)),
        ("virtual_ns", Json::UInt(s.virtual_ns)),
    ])
}

impl Report for DistReport {
    fn render_text(&self) -> String {
        self.to_string()
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("workers", Json::UInt(self.workers as u64)),
            ("staleness", Json::UInt(self.staleness)),
            ("epochs", Json::UInt(self.epoch_losses.len() as u64)),
            (
                "epoch_losses",
                Json::Arr(self.epoch_losses.iter().map(|&l| Json::Float(l)).collect()),
            ),
            ("final_loss", Json::Float(self.final_loss())),
            ("early_stopped", Json::Bool(self.early_stopped)),
            ("edges_total", Json::UInt(self.edges_total)),
            ("wall_ns", Json::UInt(self.wall_ns)),
            ("makespan_ns", Json::UInt(self.makespan_ns)),
            ("modeled_edges_per_sec", Json::Float(self.modeled_edges_per_sec())),
            (
                "staleness_hist",
                Json::Arr(self.staleness_hist.iter().map(|&n| Json::UInt(n)).collect()),
            ),
            (
                "per_worker",
                Json::Arr(
                    self.per_worker
                        .iter()
                        .map(|w| {
                            Json::obj(vec![
                                ("edges", Json::UInt(w.edges)),
                                ("busy_ns", Json::UInt(w.busy_ns)),
                                ("comm_ns", Json::UInt(w.comm_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("ps", tier_json(&self.ps)),
            (
                "adjacency",
                Json::obj(vec![
                    ("local", Json::UInt(self.adjacency.local)),
                    ("cached_remote", Json::UInt(self.adjacency.cached_remote)),
                    ("remote", Json::UInt(self.adjacency.remote)),
                    ("cold", Json::UInt(self.adjacency.cold)),
                    ("replacements", Json::UInt(self.adjacency.replacements)),
                    ("virtual_ns", Json::UInt(self.adjacency.virtual_ns)),
                ]),
            ),
            ("checkpoints_written", Json::UInt(self.checkpoints_written)),
            ("recoveries", Json::UInt(self.recoveries)),
            ("faults_injected", Json::UInt(self.faults_injected)),
            ("retries", Json::UInt(self.retries)),
            ("rebalances", Json::UInt(self.rebalances)),
        ])
    }

    /// Combines two runs: traffic and work add, the makespan takes the max,
    /// epoch losses and per-worker rows concatenate, staleness histograms
    /// add bin-wise (the wider run sets the bin count).
    fn merge(&mut self, other: &Self) {
        self.workers = self.workers.max(other.workers);
        self.staleness = self.staleness.max(other.staleness);
        self.epoch_losses.extend_from_slice(&other.epoch_losses);
        self.early_stopped |= other.early_stopped;
        self.per_worker.extend_from_slice(&other.per_worker);
        if other.staleness_hist.len() > self.staleness_hist.len() {
            self.staleness_hist.resize(other.staleness_hist.len(), 0);
        }
        for (bin, &n) in other.staleness_hist.iter().enumerate() {
            self.staleness_hist[bin] += n;
        }
        self.edges_total += other.edges_total;
        self.wall_ns += other.wall_ns;
        self.makespan_ns = self.makespan_ns.max(other.makespan_ns);
        self.ps.local_ops += other.ps.local_ops;
        self.ps.cached_ops += other.ps.cached_ops;
        self.ps.remote_ops += other.ps.remote_ops;
        self.ps.cold_ops += other.ps.cold_ops;
        self.ps.local_bytes += other.ps.local_bytes;
        self.ps.cached_bytes += other.ps.cached_bytes;
        self.ps.remote_bytes += other.ps.remote_bytes;
        self.ps.cold_bytes += other.ps.cold_bytes;
        self.ps.virtual_ns += other.ps.virtual_ns;
        self.adjacency.local += other.adjacency.local;
        self.adjacency.cached_remote += other.adjacency.cached_remote;
        self.adjacency.remote += other.adjacency.remote;
        self.adjacency.cold += other.adjacency.cold;
        self.adjacency.replacements += other.adjacency.replacements;
        self.adjacency.virtual_ns += other.adjacency.virtual_ns;
        self.checkpoints_written += other.checkpoints_written;
        self.recoveries += other.recoveries;
        self.faults_injected += other.faults_injected;
        self.retries += other.retries;
        self.rebalances += other.rebalances;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math_and_display() {
        let r = DistReport {
            workers: 2,
            staleness: 1,
            epoch_losses: vec![0.9, 0.5],
            per_worker: vec![WorkerReport { edges: 500, busy_ns: 1_000_000, comm_ns: 0 }; 2],
            staleness_hist: vec![3, 7],
            edges_total: 1_000,
            wall_ns: 2_000_000,
            makespan_ns: 1_000_000,
            ..DistReport::default()
        };
        // 1000 edges in 1 ms modeled = 1M edges/s; wall is 2 ms = 500k.
        assert!((r.modeled_edges_per_sec() - 1e6).abs() < 1.0);
        assert!((r.wall_edges_per_sec() - 5e5).abs() < 1.0);
        assert_eq!(r.final_loss(), 0.5);
        let text = r.to_string();
        assert!(text.contains("workers 2"));
        assert!(text.contains("0:3 1:7"));
        assert!(!DistReport::default().to_string().is_empty());
    }

    #[test]
    fn report_trait_json_and_merge() {
        let mut a = DistReport {
            workers: 2,
            edges_total: 10,
            staleness_hist: vec![1],
            ps: TierMeterSnapshot { remote_bytes: 8, ..TierMeterSnapshot::default() },
            ..DistReport::default()
        };
        let b = DistReport {
            workers: 2,
            edges_total: 5,
            staleness_hist: vec![2, 3],
            ..DistReport::default()
        };
        let j = a.to_json();
        assert_eq!(j.get("edges_total"), Some(&Json::UInt(10)));
        assert_eq!(j.get("ps").and_then(|p| p.get("remote_bytes")), Some(&Json::UInt(8)));
        assert_eq!(a.render_text(), a.to_string());
        a.merge(&b);
        assert_eq!(a.edges_total, 15);
        assert_eq!(a.staleness_hist, vec![3, 3]);
        assert_eq!(a.ps.remote_bytes, 8);
    }
}
