//! Versioned on-disk checkpoints: everything needed to resume a distributed
//! run mid-epoch — PS shards, per-worker dense model + optimizer state, RNG
//! states, step counters, and the loss/early-stop bookkeeping.
//!
//! Binary layout (little-endian), version 1:
//!
//! ```text
//! magic "ALGRCKP1" | u32 version | u64 config fingerprint | u64 global_step
//! epoch_losses: u32 len, f64 × len | f64 best_loss | u64 stall
//! avg_params:   u8 present, [u32 len, f32 × len]
//! workers:      u32 count, per worker:
//!               rng u64 × 4 | u64 last_drain | f64 loss_sum | u64 pairs
//!               u64 edges | u64 busy_ns | u64 comm_ns
//!               hist u32 len, u64 × len | dense state u32 len, f32 × len
//! ps shards:    u32 count, per shard:
//!               ids u32 len, u32 × len | weights u32 len, f32 × len
//!               accum u8 present, [f32 × weights len]
//! trailer:      u64 FNV-1a of all preceding bytes
//! ```
//!
//! The fingerprint hashes the *structural* configuration (workers, batch
//! shape, seeds, model dims — not epoch count or fault/checkpoint plumbing)
//! so a checkpoint can extend a run with more epochs but never silently
//! load into a differently shaped one. Corrupt or truncated files fail with
//! a [`RuntimeError::Checkpoint`] naming the failing section — never a
//! panic.

use crate::error::RuntimeError;
use crate::ps::PsShardState;
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"ALGRCKP1";
const VERSION: u32 = 1;

/// FNV-1a, the integrity trailer and the fingerprint mixer.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One worker's resumable state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerCkpt {
    /// Raw RNG state after the worker's last completed step.
    pub rng: [u64; 4],
    /// Step of the worker's last replica drain.
    pub last_drain: u64,
    /// Partial epoch loss sum (zero at epoch-boundary checkpoints).
    pub loss_sum: f64,
    /// Partial epoch pair count.
    pub pairs: u64,
    /// Lifetime positive edges consumed.
    pub edges: u64,
    /// Lifetime measured compute nanoseconds.
    pub busy_ns: u64,
    /// Lifetime modelled comm nanoseconds.
    pub comm_ns: u64,
    /// Staleness histogram.
    pub hist: Vec<u64>,
    /// Dense parameters + optimizer state (pre-allreduce at boundaries).
    pub dense_state: Vec<f32>,
}

/// A complete training checkpoint.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Checkpoint {
    /// Structural-config fingerprint; must match on restore.
    pub fingerprint: u64,
    /// Per-worker completed steps at the cut (identical across workers).
    pub global_step: u64,
    /// Completed-epoch mean losses.
    pub epoch_losses: Vec<f64>,
    /// Best epoch loss so far (early stopping).
    pub best_loss: f64,
    /// Consecutive non-improving epochs so far.
    pub stall: u64,
    /// Allreduced dense parameters — present only at epoch boundaries,
    /// applied after per-worker state so restored workers start the next
    /// epoch from the averaged model, exactly like uninterrupted ones.
    pub avg_params: Option<Vec<f32>>,
    /// Per-worker state.
    pub workers: Vec<WorkerCkpt>,
    /// Parameter-server shard contents.
    pub shards: Vec<PsShardState>,
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32s(&mut self, vs: &[f32]) {
        self.u32(vs.len() as u32);
        for v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    fn u64s(&mut self, vs: &[u64]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.u64(v);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Reader<'a> {
    fn fail(&self, what: &str) -> RuntimeError {
        RuntimeError::Checkpoint(format!(
            "truncated or corrupt {} ({what} at byte {})",
            self.section, self.pos
        ))
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], RuntimeError> {
        if self.buf.len() - self.pos < n {
            return Err(self.fail("unexpected end of data"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    fn u32(&mut self) -> Result<u32, RuntimeError> {
        // invariant: take(4) returned exactly 4 bytes or already errored
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, RuntimeError> {
        // invariant: take(8) returned exactly 8 bytes or already errored
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn f64(&mut self) -> Result<f64, RuntimeError> {
        // invariant: take(8) returned exactly 8 bytes or already errored
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn f32s(&mut self) -> Result<Vec<f32>, RuntimeError> {
        let n = self.u32()? as usize;
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            // invariant: chunks_exact(4) yields exactly-4-byte slices
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }
    fn u64s(&mut self) -> Result<Vec<u64>, RuntimeError> {
        let n = self.u32()? as usize;
        let raw = self.take(n * 8)?;
        Ok(raw
            .chunks_exact(8)
            // invariant: chunks_exact(8) yields exactly-8-byte slices
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }
    fn u32s(&mut self) -> Result<Vec<u32>, RuntimeError> {
        let n = self.u32()? as usize;
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            // invariant: chunks_exact(4) yields exactly-4-byte slices
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }
}

impl Checkpoint {
    /// Serializes to bytes (with integrity trailer).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer { buf: Vec::new() };
        w.buf.extend_from_slice(MAGIC);
        w.u32(VERSION);
        w.u64(self.fingerprint);
        w.u64(self.global_step);
        w.u32(self.epoch_losses.len() as u32);
        for &l in &self.epoch_losses {
            w.f64(l);
        }
        w.f64(self.best_loss);
        w.u64(self.stall);
        match &self.avg_params {
            None => w.buf.push(0),
            Some(p) => {
                w.buf.push(1);
                w.f32s(p);
            }
        }
        w.u32(self.workers.len() as u32);
        for wk in &self.workers {
            for &s in &wk.rng {
                w.u64(s);
            }
            w.u64(wk.last_drain);
            w.f64(wk.loss_sum);
            w.u64(wk.pairs);
            w.u64(wk.edges);
            w.u64(wk.busy_ns);
            w.u64(wk.comm_ns);
            w.u64s(&wk.hist);
            w.f32s(&wk.dense_state);
        }
        w.u32(self.shards.len() as u32);
        for s in &self.shards {
            w.u32(s.ids.len() as u32);
            for &id in &s.ids {
                w.u32(id);
            }
            w.f32s(&s.weights);
            match &s.accum {
                None => w.buf.push(0),
                Some(a) => {
                    w.buf.push(1);
                    w.f32s(a);
                }
            }
        }
        let sum = fnv1a(&w.buf);
        w.u64(sum);
        w.buf
    }

    /// Parses bytes written by [`to_bytes`](Self::to_bytes), verifying
    /// magic, version, and checksum before touching any section.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, RuntimeError> {
        if buf.len() < MAGIC.len() + 4 + 8 {
            return Err(RuntimeError::Checkpoint(format!(
                "file too short to be a checkpoint ({} bytes)",
                buf.len()
            )));
        }
        if &buf[..8] != MAGIC {
            return Err(RuntimeError::Checkpoint("bad magic (not a checkpoint file)".into()));
        }
        let (body, trailer) = buf.split_at(buf.len() - 8);
        // invariant: split_at(len - 8) yields an exactly-8-byte trailer
        let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
        if fnv1a(body) != stored {
            return Err(RuntimeError::Checkpoint(
                "checksum mismatch (corrupted or truncated file)".into(),
            ));
        }
        let mut r = Reader { buf: body, pos: 8, section: "header" };
        let version = r.u32()?;
        if version != VERSION {
            return Err(RuntimeError::Checkpoint(format!(
                "unsupported checkpoint version {version} (this build reads {VERSION})"
            )));
        }
        let fingerprint = r.u64()?;
        let global_step = r.u64()?;
        let n_losses = r.u32()? as usize;
        let mut epoch_losses = Vec::with_capacity(n_losses.min(1 << 16));
        for _ in 0..n_losses {
            epoch_losses.push(r.f64()?);
        }
        let best_loss = r.f64()?;
        let stall = r.u64()?;
        let avg_params = match r.take(1)?[0] {
            0 => None,
            _ => Some(r.f32s()?),
        };
        r.section = "worker state";
        let n_workers = r.u32()? as usize;
        let mut workers = Vec::with_capacity(n_workers.min(1 << 16));
        for _ in 0..n_workers {
            let mut rng = [0u64; 4];
            for s in &mut rng {
                *s = r.u64()?;
            }
            workers.push(WorkerCkpt {
                rng,
                last_drain: r.u64()?,
                loss_sum: r.f64()?,
                pairs: r.u64()?,
                edges: r.u64()?,
                busy_ns: r.u64()?,
                comm_ns: r.u64()?,
                hist: r.u64s()?,
                dense_state: r.f32s()?,
            });
        }
        r.section = "ps shards";
        let n_shards = r.u32()? as usize;
        let mut shards = Vec::with_capacity(n_shards.min(1 << 16));
        for _ in 0..n_shards {
            let ids = r.u32s()?;
            let weights = r.f32s()?;
            let accum = match r.take(1)?[0] {
                0 => None,
                _ => Some(r.f32s()?),
            };
            shards.push(PsShardState { ids, weights, accum });
        }
        if r.pos != body.len() {
            return Err(RuntimeError::Checkpoint(format!(
                "{} trailing bytes after ps shards",
                body.len() - r.pos
            )));
        }
        Ok(Checkpoint {
            fingerprint,
            global_step,
            epoch_losses,
            best_loss,
            stall,
            avg_params,
            workers,
            shards,
        })
    }

    /// Writes atomically (temp file + rename) to `dir/ckpt-<step>.bin`.
    pub fn write_to_dir(&self, dir: &Path) -> Result<PathBuf, RuntimeError> {
        fs::create_dir_all(dir)?;
        let name = format!("ckpt-{:010}.bin", self.global_step);
        let tmp = dir.join(format!(".{name}.tmp"));
        let target = dir.join(&name);
        fs::write(&tmp, self.to_bytes())?;
        fs::rename(&tmp, &target)?;
        Ok(target)
    }

    /// Reads a checkpoint file.
    pub fn read_from(path: &Path) -> Result<Self, RuntimeError> {
        let bytes = fs::read(path)
            .map_err(|e| RuntimeError::Checkpoint(format!("read {}: {e}", path.display())))?;
        Self::from_bytes(&bytes)
    }

    /// Overwrites the PS rows for the given vertices with fresh feature
    /// values and clears their AdaGrad accumulators — the incremental
    /// trainer's "re-pull touched rows" step: when an upstream update
    /// changes a vertex's features, the next delta epoch must train from
    /// the new values, not the stale learned ones. Returns how many rows
    /// were patched; vertices not owned by any shard and rows whose length
    /// is not `dim` are skipped.
    pub fn patch_feature_rows<'a, I>(&mut self, dim: usize, rows: I) -> usize
    where
        I: IntoIterator<Item = (u32, &'a [f32])>,
    {
        let mut slot: HashMap<u32, (usize, usize)> = HashMap::new();
        for (s, shard) in self.shards.iter().enumerate() {
            if shard.weights.len() != shard.ids.len() * dim {
                continue;
            }
            for (i, &v) in shard.ids.iter().enumerate() {
                slot.insert(v, (s, i));
            }
        }
        let mut patched = 0;
        for (v, feat) in rows {
            if feat.len() != dim {
                continue;
            }
            if let Some(&(s, i)) = slot.get(&v) {
                let shard = &mut self.shards[s];
                shard.weights[i * dim..(i + 1) * dim].copy_from_slice(feat);
                if let Some(acc) = &mut shard.accum {
                    for a in &mut acc[i * dim..(i + 1) * dim] {
                        *a = 0.0;
                    }
                }
                patched += 1;
            }
        }
        patched
    }
}

/// The newest checkpoint in `dir` (by step number in the file name), if any.
/// Used by fault recovery to pick its restore point.
pub fn latest_checkpoint(dir: &Path) -> Result<Option<PathBuf>, RuntimeError> {
    if !dir.exists() {
        return Ok(None);
    }
    let mut best: Option<PathBuf> = None;
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("ckpt-")
            && name.ends_with(".bin")
            && best.as_ref().is_none_or(|b| path > *b)
        {
            best = Some(path);
        }
    }
    Ok(best)
}

/// The newest checkpoint in `dir` that parses and passes its checksum,
/// scanning newest-first so a corrupted or truncated latest file falls back
/// to the previous valid one instead of aborting recovery. Returns `None`
/// when no file survives (recovery then restarts from scratch).
pub fn latest_valid_checkpoint(dir: &Path) -> Result<Option<(PathBuf, Checkpoint)>, RuntimeError> {
    if !dir.exists() {
        return Ok(None);
    }
    let mut candidates: Vec<PathBuf> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("ckpt-") && name.ends_with(".bin") {
            candidates.push(path);
        }
    }
    candidates.sort();
    for path in candidates.into_iter().rev() {
        if let Ok(ckpt) = Checkpoint::read_from(&path) {
            return Ok(Some((path, ckpt)));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            fingerprint: 0xdead_beef,
            global_step: 17,
            epoch_losses: vec![0.9, 0.7],
            best_loss: 0.7,
            stall: 1,
            avg_params: Some(vec![1.0, -2.5, 3.25]),
            workers: vec![WorkerCkpt {
                rng: [1, 2, 3, 4],
                last_drain: 16,
                loss_sum: 2.5,
                pairs: 10,
                edges: 320,
                busy_ns: 1_000,
                comm_ns: 2_000,
                hist: vec![5, 2],
                dense_state: vec![0.5; 7],
            }],
            shards: vec![PsShardState {
                ids: vec![0, 2, 5],
                weights: vec![0.1; 9],
                accum: Some(vec![0.01; 9]),
            }],
        }
    }

    #[test]
    fn byte_roundtrip_is_exact() {
        let c = sample();
        assert_eq!(Checkpoint::from_bytes(&c.to_bytes()).unwrap(), c);
    }

    #[test]
    fn corruption_and_truncation_fail_cleanly() {
        let bytes = sample().to_bytes();
        // Every prefix truncation is an error, never a panic.
        for cut in [0, 5, 12, bytes.len() / 2, bytes.len() - 1] {
            assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // A flipped byte anywhere trips the checksum.
        for i in [9, 30, bytes.len() - 4] {
            let mut bad = bytes.clone();
            bad[i] ^= 0xff;
            let err = Checkpoint::from_bytes(&bad).unwrap_err();
            assert!(matches!(err, RuntimeError::Checkpoint(_)), "byte {i}: {err}");
        }
        // Wrong magic gets its own message.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(Checkpoint::from_bytes(&bad).unwrap_err().to_string().contains("magic"));
    }

    #[test]
    fn dir_write_and_latest_selection() {
        let dir = std::env::temp_dir().join(format!("algr-ckpt-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(latest_checkpoint(&dir).unwrap(), None);
        let mut a = sample();
        a.global_step = 5;
        let mut b = sample();
        b.global_step = 40;
        a.write_to_dir(&dir).unwrap();
        let path_b = b.write_to_dir(&dir).unwrap();
        assert_eq!(latest_checkpoint(&dir).unwrap(), Some(path_b.clone()));
        assert_eq!(Checkpoint::read_from(&path_b).unwrap().global_step, 40);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_trailer_falls_back_to_previous_checkpoint() {
        let dir = std::env::temp_dir().join(format!("algr-ckpt-corrupt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut old = sample();
        old.global_step = 10;
        let old_path = old.write_to_dir(&dir).unwrap();
        let mut newest = sample();
        newest.global_step = 20;
        let newest_path = newest.write_to_dir(&dir).unwrap();

        // Healthy dir: the newest wins.
        let (path, ckpt) = latest_valid_checkpoint(&dir).unwrap().unwrap();
        assert_eq!((path, ckpt.global_step), (newest_path.clone(), 20));

        // Flip one byte in the newest file's trailer: restore must fall
        // back to the older valid checkpoint, not error out.
        let mut bytes = fs::read(&newest_path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&newest_path, &bytes).unwrap();
        assert!(Checkpoint::read_from(&newest_path).is_err());
        let (path, ckpt) = latest_valid_checkpoint(&dir).unwrap().unwrap();
        assert_eq!((path, ckpt.global_step), (old_path.clone(), 10));

        // Corrupt the older one too: nothing valid remains.
        let mut bytes = fs::read(&old_path).unwrap();
        bytes[12] ^= 0xff;
        fs::write(&old_path, &bytes).unwrap();
        assert_eq!(latest_valid_checkpoint(&dir).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_file_falls_back_to_previous_checkpoint() {
        let dir = std::env::temp_dir().join(format!("algr-ckpt-trunc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut old = sample();
        old.global_step = 3;
        old.write_to_dir(&dir).unwrap();
        let mut newest = sample();
        newest.global_step = 9;
        let newest_path = newest.write_to_dir(&dir).unwrap();

        // Chop the newest file mid-body (a crash during a non-atomic copy).
        let bytes = fs::read(&newest_path).unwrap();
        fs::write(&newest_path, &bytes[..bytes.len() / 2]).unwrap();
        let (_, ckpt) = latest_valid_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(ckpt.global_step, 3);

        // An empty stray file is skipped the same way.
        fs::write(dir.join("ckpt-9999999999.bin"), []).unwrap();
        let (_, ckpt) = latest_valid_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(ckpt.global_step, 3);
        fs::remove_dir_all(&dir).unwrap();
    }
}
