//! Runtime error type. Every lock/IO/shape failure in the training runtime
//! propagates through [`RuntimeError`] instead of panicking — the hot paths
//! are `unwrap`-free by construction.

use std::fmt;

/// Failure modes of the distributed training runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Invalid runtime configuration (caught before any thread spawns).
    Config(String),
    /// A checkpoint could not be written, read, or validated.
    Checkpoint(String),
    /// A worker aborted the run with an unrecoverable error.
    Unrecoverable(String),
    /// A shared lock was poisoned by a panicking thread.
    Poisoned(&'static str),
    /// The injected fault fired (internal: the attempt loop converts this
    /// into a restore-and-retry; it only escapes if recovery keeps failing).
    Fault {
        /// Worker that was killed.
        worker: u32,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Config(m) => write!(f, "invalid runtime config: {m}"),
            RuntimeError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            RuntimeError::Unrecoverable(m) => write!(f, "training aborted: {m}"),
            RuntimeError::Poisoned(what) => write!(f, "poisoned lock: {what}"),
            RuntimeError::Fault { worker } => write!(f, "worker {worker} killed by fault plan"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<std::io::Error> for RuntimeError {
    fn from(e: std::io::Error) -> Self {
        RuntimeError::Checkpoint(format!("io: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        assert!(RuntimeError::Config("bad".into()).to_string().contains("bad"));
        assert!(RuntimeError::Checkpoint("short".into()).to_string().contains("checkpoint"));
        assert!(RuntimeError::Fault { worker: 3 }.to_string().contains('3'));
        let io: RuntimeError = std::io::Error::other("disk gone").into();
        assert!(io.to_string().contains("disk gone"));
    }
}
