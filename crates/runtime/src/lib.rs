//! # aligraph-runtime
//!
//! The distributed training runtime of the AliGraph reproduction: the layer
//! that turns the storage cluster + sampling + operator stack into a
//! data-parallel trainer (paper §2.3's distributed mode, simulated on one
//! machine).
//!
//! * [`runtime::DistTrainer`] — N shard-pinned trainer workers (threads,
//!   one per [`aligraph_storage::Cluster`] partition), each sampling
//!   mini-batches from its own edge shard and training a local dense model;
//! * [`ps::SparseParamServer`] — the input-feature embedding rows, sharded
//!   by the graph partition; workers push row-sparse AdaGrad deltas and
//!   pull with bounded staleness, every message metered through the storage
//!   cost model;
//! * [`ssp::Coordinator`] — deterministic lockstep scheduling plus the
//!   epoch-boundary allreduce rendezvous, so every run (including restores
//!   and fault recoveries) replays bit-for-bit from its seed;
//! * [`checkpoint::Checkpoint`] — versioned on-disk snapshots (PS shards,
//!   dense model + optimizer state, RNG states, step counters) with
//!   mid-epoch restore and corruption detection.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod error;
pub mod ps;
pub mod report;
pub mod runtime;
pub mod ssp;

pub use checkpoint::{latest_checkpoint, latest_valid_checkpoint, Checkpoint, WorkerCkpt};
pub use error::RuntimeError;
pub use ps::{ChannelSeqs, PsShardState, SparseParamServer};
pub use report::{DistReport, WorkerReport};
pub use runtime::{
    ChaosConfig, CheckpointConfig, DistOutcome, DistTrainer, EncoderSpec, FaultPlan, RebalancePlan,
    RuntimeConfig,
};
