//! Deterministic worker scheduling: a coordinator that serializes simulated
//! workers in strict `(completed_steps, worker_id)` order and runs the
//! epoch/checkpoint rendezvous.
//!
//! Real distributed trainers interleave workers arbitrarily; on this
//! simulator the coordinator pins the interleaving so every run is
//! reproducible from its seed. The schedule keeps workers in lockstep
//! (nobody starts step `t + 1` before everyone finished step `t`), which
//! has two consequences the rest of the runtime relies on:
//!
//! * every step boundary where all workers have completed `t` steps is a
//!   **consistent cut** — the mid-epoch checkpoint points;
//! * bounded staleness `s` governs *data visibility* (how long a worker may
//!   train on an un-drained replica), not run-ahead, so staleness effects
//!   are isolated from scheduling noise.
//!
//! All waits return `Result`: a crashed worker (fault injection) or a
//! failed leader computation wakes every waiter with an error instead of
//! deadlocking or panicking.

use crate::error::RuntimeError;
use std::sync::{Condvar, Mutex};

/// Why a run was torn down early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Abort {
    /// Fault injection killed a worker; the attempt loop restores/retries.
    Fault {
        /// The killed worker.
        worker: u32,
    },
    /// A worker or barrier leader hit a real error.
    Failed(String),
}

impl Abort {
    fn to_error(&self) -> RuntimeError {
        match self {
            Abort::Fault { worker } => RuntimeError::Fault { worker: *worker },
            Abort::Failed(m) => RuntimeError::Unrecoverable(m.clone()),
        }
    }
}

/// What one worker contributes at a rendezvous.
#[derive(Debug, Clone, Default)]
pub struct Deposit {
    /// Dense parameters (pre-average), flattened.
    pub params: Vec<f32>,
    /// Dense parameters + optimizer state, flattened.
    pub state: Vec<f32>,
    /// The worker's RNG state after its last completed step.
    pub rng: [u64; 4],
    /// Running loss sum of the current epoch.
    pub loss_sum: f64,
    /// Running pair count of the current epoch.
    pub pairs: u64,
    /// Step of the worker's last replica drain.
    pub last_drain: u64,
    /// Positive edges consumed so far (throughput numerator).
    pub edges: u64,
    /// Measured compute time so far, nanoseconds.
    pub busy_ns: u64,
    /// Modelled comm time so far, nanoseconds.
    pub comm_ns: u64,
    /// Staleness histogram: `hist[a]` = steps run at replica age `a`.
    pub hist: Vec<u64>,
}

/// What the rendezvous leader hands back to every worker.
#[derive(Debug, Default)]
pub struct Rendezvous {
    /// Averaged dense parameters (epoch barriers only).
    pub avg_params: Option<Vec<f32>>,
    /// Replica refresh (checkpoint rendezvous only): the materialized
    /// server state at the cut. Every worker adopts it as its replica —
    /// without touching its drain schedule — so the checkpoint is a
    /// self-contained restore point at any staleness bound (a restore
    /// rebuilds replicas from the same materialized state).
    pub drain: Option<aligraph_graph::FeatureMatrix>,
    /// Early-stop signal: workers leave their epoch loop.
    pub stop: bool,
}

struct CoState {
    /// Completed steps per worker.
    steps: Vec<u64>,
    /// Torn down?
    crashed: Option<Abort>,
    /// Rendezvous state.
    arrived: usize,
    deposits: Vec<Option<Deposit>>,
    generation: u64,
    outcome: Option<std::sync::Arc<Rendezvous>>,
}

/// The scheduler + rendezvous shared by one attempt's workers.
pub struct Coordinator {
    state: Mutex<CoState>,
    cv: Condvar,
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator").finish_non_exhaustive()
    }
}

impl Coordinator {
    /// A coordinator for `workers` workers that have each already completed
    /// `start_step` steps (0 for a fresh run, the checkpoint step after a
    /// restore).
    pub fn new(workers: usize, start_step: u64) -> Self {
        Coordinator {
            state: Mutex::new(CoState {
                steps: vec![start_step; workers],
                crashed: None,
                arrived: 0,
                deposits: (0..workers).map(|_| None).collect(),
                generation: 0,
                outcome: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> Result<std::sync::MutexGuard<'_, CoState>, RuntimeError> {
        self.state.lock().map_err(|_| RuntimeError::Poisoned("coordinator"))
    }

    /// Blocks until worker `me` is the strict `(steps, id)` minimum — its
    /// turn to run one step. Errors out if the run was torn down.
    pub fn acquire(&self, me: usize) -> Result<(), RuntimeError> {
        let mut st = self.lock()?;
        loop {
            if let Some(a) = &st.crashed {
                return Err(a.to_error());
            }
            let min =
                // invariant: SspCoordinator::new requires at least one worker
                (0..st.steps.len()).min_by_key(|&w| (st.steps[w], w)).expect("at least one worker");
            if min == me {
                return Ok(());
            }
            st = self.cv.wait(st).map_err(|_| RuntimeError::Poisoned("coordinator"))?;
        }
    }

    /// Marks worker `me`'s current step complete and wakes the next worker.
    pub fn complete(&self, me: usize) -> Result<(), RuntimeError> {
        let mut st = self.lock()?;
        st.steps[me] += 1;
        self.cv.notify_all();
        Ok(())
    }

    /// Rendezvous: deposits `me`'s contribution and blocks until all workers
    /// arrive. The last arriver runs `leader` over the deposits (in worker
    /// order) while holding the coordinator lock — rendezvous are serialized
    /// anyway, so no extra concurrency is lost — and its result is handed to
    /// every worker. A leader error tears the run down for everyone.
    pub fn rendezvous<F>(
        &self,
        me: usize,
        deposit: Deposit,
        leader: F,
    ) -> Result<std::sync::Arc<Rendezvous>, RuntimeError>
    where
        F: FnOnce(Vec<Deposit>) -> Result<Rendezvous, RuntimeError>,
    {
        let mut st = self.lock()?;
        if let Some(a) = &st.crashed {
            return Err(a.to_error());
        }
        st.deposits[me] = Some(deposit);
        st.arrived += 1;
        if st.arrived == st.steps.len() {
            let deposits: Vec<Deposit> =
                // invariant: arrived == steps.len() means every deposit slot
                // was filled this round
                st.deposits.iter_mut().map(|d| d.take().expect("every worker deposited")).collect();
            st.arrived = 0;
            match leader(deposits) {
                Ok(out) => {
                    let out = std::sync::Arc::new(out);
                    st.outcome = Some(out.clone());
                    st.generation += 1;
                    self.cv.notify_all();
                    Ok(out)
                }
                Err(e) => {
                    st.crashed = Some(Abort::Failed(e.to_string()));
                    self.cv.notify_all();
                    Err(e)
                }
            }
        } else {
            let gen = st.generation;
            loop {
                if let Some(a) = &st.crashed {
                    return Err(a.to_error());
                }
                if st.generation != gen {
                    return st.outcome.clone().ok_or(RuntimeError::Poisoned("rendezvous outcome"));
                }
                st = self.cv.wait(st).map_err(|_| RuntimeError::Poisoned("coordinator"))?;
            }
        }
    }

    /// Tears the run down: every current and future wait returns the abort.
    pub fn crash(&self, abort: Abort) -> Result<(), RuntimeError> {
        let mut st = self.lock()?;
        if st.crashed.is_none() {
            st.crashed = Some(abort);
        }
        self.cv.notify_all();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn schedule_is_strict_round_robin() {
        // 3 workers, 4 steps each: the acquire order must be
        // 0,1,2,0,1,2,... regardless of thread scheduling.
        let co = Arc::new(Coordinator::new(3, 0));
        let order = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for me in 0..3usize {
                let co = co.clone();
                let order = order.clone();
                s.spawn(move || {
                    for _ in 0..4 {
                        co.acquire(me).unwrap();
                        order.lock().unwrap().push(me);
                        co.complete(me).unwrap();
                    }
                });
            }
        });
        let order = order.lock().unwrap();
        assert_eq!(*order, vec![0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn rendezvous_runs_leader_once_with_all_deposits() {
        let co = Arc::new(Coordinator::new(4, 0));
        let leader_runs = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for me in 0..4usize {
                let co = co.clone();
                let leader_runs = leader_runs.clone();
                s.spawn(move || {
                    let dep = Deposit { loss_sum: me as f64, ..Deposit::default() };
                    let out = co
                        .rendezvous(me, dep, |deps| {
                            leader_runs.fetch_add(1, Ordering::SeqCst);
                            // Deposits arrive in worker order, not arrival order.
                            let sums: Vec<f64> = deps.iter().map(|d| d.loss_sum).collect();
                            assert_eq!(sums, vec![0.0, 1.0, 2.0, 3.0]);
                            Ok(Rendezvous { avg_params: Some(vec![1.5]), ..Rendezvous::default() })
                        })
                        .unwrap();
                    assert_eq!(out.avg_params.as_deref(), Some(&[1.5][..]));
                });
            }
        });
        assert_eq!(leader_runs.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn crash_wakes_scheduler_and_rendezvous_waiters() {
        let co = Arc::new(Coordinator::new(2, 0));
        std::thread::scope(|s| {
            let co0 = co.clone();
            let h = s.spawn(move || {
                // Worker 1 never runs step 0, so worker 0 finishes its step
                // and then blocks at the rendezvous until the crash.
                co0.acquire(0).unwrap();
                co0.complete(0).unwrap();
                co0.rendezvous(0, Deposit::default(), |_| Ok(Rendezvous::default()))
            });
            let co1 = co.clone();
            s.spawn(move || {
                co1.acquire(1).unwrap();
                co1.crash(Abort::Fault { worker: 1 }).unwrap();
            });
            assert!(matches!(h.join().unwrap(), Err(RuntimeError::Fault { worker: 1 })));
        });
        // Post-crash waits fail immediately instead of hanging.
        assert!(co.acquire(0).is_err());
    }

    #[test]
    fn leader_error_tears_down_every_worker() {
        let co = Arc::new(Coordinator::new(2, 0));
        let results: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2usize)
                .map(|me| {
                    let co = co.clone();
                    s.spawn(move || {
                        co.rendezvous(me, Deposit::default(), |_| {
                            Err(RuntimeError::Checkpoint("disk full".into()))
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|r| r.is_err()));
    }
}
