//! The sparse parameter server: input-feature embedding rows sharded by the
//! graph partition, so each row lives next to the worker that owns its
//! vertex (the paper's storage-aware placement).
//!
//! Workers *push* row-sparse AdaGrad deltas to the owning shard after every
//! step, and *pull* by draining dirty rows into a local replica at most
//! `staleness` steps later. Every push, pull, and read is metered through
//! the storage [`CostModel`] so the comm accounting in the benches stays
//! honest: reads of replica rows count as `Local` (own shard) or
//! `CachedRemote` (remote-owned row served from the replica), while pushes
//! and pulls that cross shards count as `Remote`. Pushes and pulls are
//! batched into one message per shard per step — the request batching the
//! paper's platform applies to all cross-worker traffic — so a message
//! costs one model latency regardless of row count, while payload bytes
//! accumulate per row.

use crate::error::RuntimeError;
use aligraph_chaos::{Delivery, FaultPlane, RecoveryMode, RetryPolicy, TICK_NS};
use aligraph_graph::{FeatureMatrix, VertexId};
use aligraph_partition::Partition;
use aligraph_storage::{AccessKind, CostModel, TierMeter, MIGRATION_TAG};
use aligraph_telemetry::{Counter, Registry};
use aligraph_tensor::EmbeddingTable;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

/// One shard: the embedding rows of the vertices one worker owns.
#[derive(Debug)]
struct PsShard {
    /// Owned vertex ids in ascending order.
    ids: Vec<u32>,
    /// Vertex id → row slot in `table`.
    slot_of: HashMap<u32, u32>,
    /// The shard's rows (AdaGrad accumulators live inside).
    table: EmbeddingTable,
}

/// Serializable state of one PS shard (checkpoint payload).
#[derive(Debug, Clone, PartialEq)]
pub struct PsShardState {
    /// Owned vertex ids, ascending.
    pub ids: Vec<u32>,
    /// Row-major weights, one row per id.
    pub weights: Vec<f32>,
    /// AdaGrad accumulators, if any updates happened yet.
    pub accum: Option<Vec<f32>>,
}

/// Sender-held sequence counters for one worker's fault-plane channels:
/// one push stream and one pull-response stream per destination shard.
/// Fresh counters per run attempt pair with the server's fresh
/// `applied_seq` table, so a recovery restart replays cleanly.
#[derive(Debug, Clone)]
pub struct ChannelSeqs {
    push: Vec<u64>,
    pull: Vec<u64>,
}

impl ChannelSeqs {
    /// Zeroed counters for `shards` destination shards.
    pub fn new(shards: usize) -> Self {
        ChannelSeqs { push: vec![0; shards], pull: vec![0; shards] }
    }

    fn next_push(&mut self, shard: usize) -> u64 {
        let s = self.push[shard];
        self.push[shard] += 1;
        s
    }

    fn next_pull(&mut self, shard: usize) -> u64 {
        let s = self.pull[shard];
        self.pull[shard] += 1;
        s
    }
}

/// The sharded sparse parameter server.
#[derive(Debug)]
pub struct SparseParamServer {
    dim: usize,
    lr: f32,
    cost: CostModel,
    num_vertices: usize,
    /// Vertex id → owning shard slot. Atomic because an elastic rebalance
    /// ([`rehome`](Self::rehome)) re-points rows at an epoch boundary while
    /// the struct is shared across worker threads.
    owner: Vec<AtomicU32>,
    shards: Vec<Mutex<PsShard>>,
    /// Per-worker dirty sets: rows updated since that worker last drained.
    dirty: Vec<Mutex<HashSet<u32>>>,
    /// `applied_seq[shard][sender]`: next delta sequence number expected on
    /// the `sender → shard` push channel. Retried deltas whose sequence
    /// number is below this were already applied and are discarded — the
    /// idempotence that makes lost acks invisible to the math.
    applied_seq: Vec<Mutex<Vec<u64>>>,
    stats: TierMeter,
    /// Payload bytes landed on each destination shard (pushes + pulls),
    /// published as `runtime.ps.bytes{shard=<w>}`.
    shard_bytes: Vec<Arc<Counter>>,
    /// Sender-held next sequence number per `(src, dst)` rehome channel.
    rehome_seq: Mutex<BTreeMap<(u32, u32), u64>>,
    /// Receiver-side expected sequence per `(src, dst)` rehome channel:
    /// duplicates of an applied row move are discarded, which is what makes
    /// the destructive move idempotent under lost acks.
    rehome_applied: Mutex<BTreeMap<(u32, u32), u64>>,
}

impl SparseParamServer {
    /// Shards `features` by `partition` across `workers` shards. `lr` is the
    /// AdaGrad learning rate for pushed deltas (0 freezes the features,
    /// which is what the sequential-parity mode uses). Counters stay
    /// detached; see [`new_registered`](Self::new_registered).
    pub fn new(partition: &Partition, features: &FeatureMatrix, lr: f32, cost: CostModel) -> Self {
        Self::new_registered(partition, features, lr, cost, &Registry::disabled())
    }

    /// Like [`new`](Self::new), publishing the comm meters in `registry`:
    /// `runtime.ps.ops{tier=...}`, `runtime.ps.bytes{tier=...}`,
    /// `runtime.ps.virtual_ns`, and per-destination-shard payload counters
    /// `runtime.ps.bytes{shard=<w>}`.
    pub fn new_registered(
        partition: &Partition,
        features: &FeatureMatrix,
        lr: f32,
        cost: CostModel,
        registry: &Registry,
    ) -> Self {
        Self::new_elastic(partition, features, lr, cost, registry, partition.num_workers)
    }

    /// Like [`new_registered`](Self::new_registered) but pre-allocating
    /// `slots >= workers` shard slots. The extra slots start empty and
    /// receive rows when an elastic shard split
    /// ([`rehome`](Self::rehome)s) lands — pre-allocation keeps slot
    /// indices, sequence tables, and telemetry labels stable for the whole
    /// run.
    pub fn new_elastic(
        partition: &Partition,
        features: &FeatureMatrix,
        lr: f32,
        cost: CostModel,
        registry: &Registry,
        slots: usize,
    ) -> Self {
        let n = features.len();
        let dim = features.dim;
        let workers = partition.num_workers;
        let slots = slots.max(workers);
        let mut owner = Vec::with_capacity(n);
        let mut ids: Vec<Vec<u32>> = vec![Vec::new(); slots];
        for v in 0..n as u32 {
            let w = partition.owner_of(VertexId(v)).index();
            owner.push(AtomicU32::new(w as u32));
            ids[w].push(v);
        }
        let shards = ids
            .into_iter()
            .map(|ids| {
                let mut weights = Vec::with_capacity(ids.len() * dim);
                for &v in &ids {
                    weights.extend_from_slice(features.row(VertexId(v)));
                }
                let table = EmbeddingTable::from_flat(ids.len(), dim, weights)
                    // invariant: weights was built as ids.len() * dim entries
                    // in the loop above
                    .expect("weights sized from ids");
                let slot_of = ids.iter().enumerate().map(|(s, &v)| (v, s as u32)).collect();
                Mutex::new(PsShard { ids, slot_of, table })
            })
            .collect();
        let dirty = (0..workers).map(|_| Mutex::new(HashSet::new())).collect();
        let applied_seq = (0..slots).map(|_| Mutex::new(vec![0u64; workers])).collect();
        let shard_bytes = (0..slots)
            .map(|w| registry.counter("runtime.ps.bytes", &[("shard", &w.to_string())]))
            .collect();
        SparseParamServer {
            dim,
            lr,
            cost,
            num_vertices: n,
            owner,
            shards,
            dirty,
            applied_seq,
            stats: TierMeter::registered(registry, "runtime.ps"),
            shard_bytes,
            rehome_seq: Mutex::new(BTreeMap::new()),
            rehome_applied: Mutex::new(BTreeMap::new()),
        }
    }

    /// The shard slot currently owning a vertex's row.
    #[inline]
    fn owner_slot(&self, v: u32) -> usize {
        // ordering: Acquire pairs with rehome()'s Release store, so a
        // worker that sees the new owner also sees the moved row behind the
        // destination shard's lock.
        self.owner[v as usize].load(Ordering::Acquire) as usize
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Comm counters.
    pub fn stats(&self) -> &TierMeter {
        &self.stats
    }

    /// Zeroes the comm meters (tier counters and per-shard bytes) — the
    /// attempt loop calls this so a fault-recovery retry reports only its
    /// own traffic, exactly like the pre-registry per-attempt counters.
    pub fn reset_stats(&self) {
        self.stats.reset();
        for c in &self.shard_bytes {
            c.reset();
        }
    }

    /// Pushes one step's row-sparse feature gradients from worker `from` to
    /// the owning shards and marks the rows dirty for every worker's next
    /// drain. Rows are batched into **one message per destination shard**
    /// (the paper's request batching): each involved shard costs one
    /// [`CostModel`] latency, and every row adds its payload bytes to that
    /// message's tier. Returns the modelled comm time in nanoseconds.
    ///
    /// Row updates commute (each touches one row under the shard lock), so
    /// the non-deterministic `HashMap` iteration order cannot change the
    /// resulting parameters.
    pub fn push(&self, from: usize, grads: &HashMap<u32, Vec<f32>>) -> Result<u64, RuntimeError> {
        let row_bytes = self.dim as u64 * 4;
        let mut shard_rows = vec![0u64; self.shards.len()];
        let mut ordered: Vec<(&u32, &Vec<f32>)> = grads.iter().collect();
        ordered.sort_unstable_by_key(|(v, _)| **v);
        for (&v, g) in ordered {
            let w = self.owner_slot(v);
            {
                let mut shard =
                    self.shards[w].lock().map_err(|_| RuntimeError::Poisoned("ps shard"))?;
                let slot = shard.slot_of[&v] as usize;
                shard.table.adagrad_update(slot, g, self.lr);
            }
            shard_rows[w] += 1;
            for set in &self.dirty {
                set.lock().map_err(|_| RuntimeError::Poisoned("ps dirty set"))?.insert(v);
            }
        }
        let mut ns = 0u64;
        for (w, &rows) in shard_rows.iter().enumerate() {
            if rows > 0 {
                let kind = if w == from { AccessKind::Local } else { AccessKind::Remote };
                ns += self.stats.record(kind, rows * row_bytes, &self.cost);
                self.shard_bytes[w].add(rows * row_bytes);
            }
        }
        Ok(ns)
    }

    /// Pull barrier for worker `who`: copies every row updated since its
    /// last drain from the owning shard into `replica`. After this call the
    /// replica is element-identical to the server (rows not drained were
    /// never pushed to, by induction). Pulls batch like pushes: one metered
    /// message per shard that contributed rows. Returns modelled comm
    /// nanoseconds.
    pub fn drain_into(&self, who: usize, replica: &mut FeatureMatrix) -> Result<u64, RuntimeError> {
        let mut rows: Vec<u32> = {
            let mut set =
                self.dirty[who].lock().map_err(|_| RuntimeError::Poisoned("ps dirty set"))?;
            set.drain().collect()
        };
        rows.sort_unstable();
        let row_bytes = self.dim as u64 * 4;
        let mut shard_rows = vec![0u64; self.shards.len()];
        for v in rows {
            let w = self.owner_slot(v);
            {
                let shard =
                    self.shards[w].lock().map_err(|_| RuntimeError::Poisoned("ps shard"))?;
                let slot = shard.slot_of[&v] as usize;
                replica.row_mut(VertexId(v)).copy_from_slice(shard.table.row(slot));
            }
            shard_rows[w] += 1;
        }
        let mut ns = 0u64;
        for (w, &n) in shard_rows.iter().enumerate() {
            if n > 0 {
                let kind = if w == who { AccessKind::Local } else { AccessKind::Remote };
                ns += self.stats.record(kind, n * row_bytes, &self.cost);
                self.shard_bytes[w].add(n * row_bytes);
            }
        }
        Ok(ns)
    }

    /// [`push`](Self::push) through a [`FaultPlane`]: each per-shard message
    /// is sequence-numbered on its `from → shard` channel and subject to the
    /// plane's drop/delay/lost-ack/corruption decisions. Drops and
    /// corruptions are retried with `policy`'s capped backoff (each backoff
    /// tick adds [`TICK_NS`] of modelled comm time); lost acks apply the
    /// delta and retry it, relying on the shard's sequence dedup to discard
    /// the duplicate; the reorder fault re-delivers late duplicates the same
    /// dedup must absorb. With [`RecoveryMode::Full`] the surviving update
    /// stream is byte-identical to the fault-free one — only the modelled
    /// time differs. The broken modes exist for the chaos suite's
    /// divergence-detection tests.
    #[allow(clippy::too_many_arguments)]
    pub fn push_faulted(
        &self,
        from: usize,
        grads: &HashMap<u32, Vec<f32>>,
        plane: &FaultPlane,
        policy: &RetryPolicy,
        mode: RecoveryMode,
        seqs: &mut ChannelSeqs,
    ) -> Result<u64, RuntimeError> {
        let row_bytes = self.dim as u64 * 4;
        let mut by_shard: Vec<Vec<(u32, &[f32])>> = vec![Vec::new(); self.shards.len()];
        let mut ordered: Vec<(&u32, &Vec<f32>)> = grads.iter().collect();
        ordered.sort_unstable_by_key(|(v, _)| **v);
        for (&v, g) in ordered {
            by_shard[self.owner_slot(v)].push((v, g.as_slice()));
        }
        let mut ns = 0u64;
        for (w, rows) in by_shard.iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let seq = seqs.next_push(w);
            let channel = FaultPlane::channel(from as u64, w as u64);
            let mut attempt = 0u32;
            let delivered = loop {
                if attempt > 0 {
                    if mode == RecoveryMode::NoRetry {
                        break false; // deliberately broken: the message is lost
                    }
                    if policy.exhausted(attempt) {
                        return Err(RuntimeError::Unrecoverable(format!(
                            "ps push {from}->{w} seq {seq}: retry deadline exhausted \
                             after {attempt} attempts"
                        )));
                    }
                    plane.note_retry();
                    ns += policy.backoff_ticks(attempt) * TICK_NS;
                }
                match plane.decide(channel, seq, attempt) {
                    Delivery::Deliver => {
                        self.apply_push_message(w, from, seq, rows, mode)?;
                        break true;
                    }
                    Delivery::Delay(d) => {
                        ns += d * TICK_NS;
                        self.apply_push_message(w, from, seq, rows, mode)?;
                        break true;
                    }
                    Delivery::AckLost => {
                        // Applied on the shard, but the sender never learns:
                        // the resend is a duplicate the dedup discards.
                        self.apply_push_message(w, from, seq, rows, mode)?;
                        attempt += 1;
                    }
                    Delivery::Drop | Delivery::Corrupt => attempt += 1,
                }
            };
            if delivered {
                let kind = if w == from { AccessKind::Local } else { AccessKind::Remote };
                ns += self.stats.record(kind, rows.len() as u64 * row_bytes, &self.cost);
                self.shard_bytes[w].add(rows.len() as u64 * row_bytes);
                if plane.replays_duplicate(channel, seq) {
                    // The reorder fault: a stale duplicate shows up after
                    // delivery; sequence dedup must make it a no-op.
                    self.apply_push_message(w, from, seq, rows, mode)?;
                }
            }
        }
        Ok(ns)
    }

    /// Applies (or dedup-discards) one sequenced push message on shard `w`.
    fn apply_push_message(
        &self,
        w: usize,
        from: usize,
        seq: u64,
        rows: &[(u32, &[f32])],
        mode: RecoveryMode,
    ) -> Result<(), RuntimeError> {
        if mode != RecoveryMode::NoDedup {
            let mut expected =
                self.applied_seq[w].lock().map_err(|_| RuntimeError::Poisoned("ps seq table"))?;
            if seq < expected[from] {
                return Ok(()); // duplicate of an already-applied delta
            }
            expected[from] = seq + 1;
        }
        for &(v, g) in rows {
            {
                let mut shard =
                    self.shards[w].lock().map_err(|_| RuntimeError::Poisoned("ps shard"))?;
                let slot = shard.slot_of[&v] as usize;
                shard.table.adagrad_update(slot, g, self.lr);
            }
            for set in &self.dirty {
                set.lock().map_err(|_| RuntimeError::Poisoned("ps dirty set"))?.insert(v);
            }
        }
        Ok(())
    }

    /// [`drain_into`](Self::drain_into) through a [`FaultPlane`]: each
    /// per-shard pull response is sequence-numbered on its `shard → who`
    /// channel and retried on drops/corruptions like pushes. Pull responses
    /// are idempotent reads, so no dedup is needed — but under
    /// [`RecoveryMode::NoRetry`] a dropped response permanently loses its
    /// rows (they were already drained from the dirty set), leaving the
    /// replica stale forever: exactly the silent divergence the chaos suite
    /// must catch.
    pub fn drain_into_faulted(
        &self,
        who: usize,
        replica: &mut FeatureMatrix,
        plane: &FaultPlane,
        policy: &RetryPolicy,
        mode: RecoveryMode,
        seqs: &mut ChannelSeqs,
    ) -> Result<u64, RuntimeError> {
        let mut rows: Vec<u32> = {
            let mut set =
                self.dirty[who].lock().map_err(|_| RuntimeError::Poisoned("ps dirty set"))?;
            set.drain().collect()
        };
        rows.sort_unstable();
        let row_bytes = self.dim as u64 * 4;
        let mut by_shard: Vec<Vec<u32>> = vec![Vec::new(); self.shards.len()];
        for v in rows {
            by_shard[self.owner_slot(v)].push(v);
        }
        let mut ns = 0u64;
        for (w, rows) in by_shard.iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let seq = seqs.next_pull(w);
            let channel = FaultPlane::channel_with(1, w as u64, who as u64);
            let mut attempt = 0u32;
            let delivered = loop {
                if attempt > 0 {
                    if mode == RecoveryMode::NoRetry {
                        break false; // deliberately broken: rows stay stale
                    }
                    if policy.exhausted(attempt) {
                        return Err(RuntimeError::Unrecoverable(format!(
                            "ps pull {w}->{who} seq {seq}: retry deadline exhausted \
                             after {attempt} attempts"
                        )));
                    }
                    plane.note_retry();
                    ns += policy.backoff_ticks(attempt) * TICK_NS;
                }
                match plane.decide(channel, seq, attempt) {
                    Delivery::Deliver => break true,
                    Delivery::Delay(d) => {
                        ns += d * TICK_NS;
                        break true;
                    }
                    // A pull with a lost ack or corrupt payload is a retry
                    // from the reader's side; re-reading is idempotent.
                    Delivery::AckLost | Delivery::Drop | Delivery::Corrupt => attempt += 1,
                }
            };
            if !delivered {
                continue;
            }
            for &v in rows {
                let shard =
                    self.shards[w].lock().map_err(|_| RuntimeError::Poisoned("ps shard"))?;
                let slot = shard.slot_of[&v] as usize;
                replica.row_mut(VertexId(v)).copy_from_slice(shard.table.row(slot));
            }
            let kind = if w == who { AccessKind::Local } else { AccessKind::Remote };
            ns += self.stats.record(kind, rows.len() as u64 * row_bytes, &self.cost);
            self.shard_bytes[w].add(rows.len() as u64 * row_bytes);
        }
        Ok(ns)
    }

    /// Meters the embedding-row reads of one training step (the rows the
    /// tape touched): own-shard rows are `Local`, remote-owned rows are
    /// `CachedRemote` because the replica serves them without a round trip.
    pub fn record_reads<'a, I: IntoIterator<Item = &'a u32>>(&self, who: usize, rows: I) -> u64 {
        let row_bytes = self.dim as u64 * 4;
        let mut ns = 0u64;
        for &v in rows {
            let kind = if self.owner_slot(v) == who {
                AccessKind::Local
            } else {
                AccessKind::CachedRemote
            };
            ns += self.stats.record(kind, row_bytes, &self.cost);
        }
        ns
    }

    /// A full dense copy of the server's current rows — the initial replica
    /// of a (re)starting worker, and the final feature matrix of a run.
    pub fn materialize(&self) -> Result<FeatureMatrix, RuntimeError> {
        let mut out = FeatureMatrix::zeros(self.num_vertices, self.dim);
        for shard in &self.shards {
            let shard = shard.lock().map_err(|_| RuntimeError::Poisoned("ps shard"))?;
            for (slot, &v) in shard.ids.iter().enumerate() {
                out.row_mut(VertexId(v)).copy_from_slice(shard.table.row(slot));
            }
        }
        Ok(out)
    }

    /// Serializable shard states for checkpointing.
    pub fn export(&self) -> Result<Vec<PsShardState>, RuntimeError> {
        self.shards
            .iter()
            .map(|shard| {
                let shard = shard.lock().map_err(|_| RuntimeError::Poisoned("ps shard"))?;
                Ok(PsShardState {
                    ids: shard.ids.clone(),
                    weights: shard.table.as_slice().to_vec(),
                    accum: shard.table.accum_slice().map(<[f32]>::to_vec),
                })
            })
            .collect()
    }

    /// Restores shard contents from a checkpoint, *adopting* its rosters:
    /// each shard rebuilds from the checkpointed id list, and the owner
    /// table re-points accordingly. A checkpoint written after an elastic
    /// rebalance therefore restores onto a fresh (partition-rostered)
    /// server without a separate replay of the rebalance.
    pub fn load(&self, states: &[PsShardState]) -> Result<(), RuntimeError> {
        if states.len() != self.shards.len() {
            return Err(RuntimeError::Checkpoint(format!(
                "checkpoint has {} PS shards, runtime has {}",
                states.len(),
                self.shards.len()
            )));
        }
        for (i, (shard, state)) in self.shards.iter().zip(states).enumerate() {
            if state.weights.len() != state.ids.len() * self.dim {
                return Err(RuntimeError::Checkpoint(format!(
                    "PS shard {i}: {} weights for {} ids at dim {}",
                    state.weights.len(),
                    state.ids.len(),
                    self.dim
                )));
            }
            let mut shard = shard.lock().map_err(|_| RuntimeError::Poisoned("ps shard"))?;
            if shard.ids != state.ids {
                let table =
                    EmbeddingTable::from_flat(state.ids.len(), self.dim, state.weights.clone())
                        .map_err(|e| RuntimeError::Checkpoint(format!("PS shard {i}: {e}")))?;
                shard.ids = state.ids.clone();
                shard.slot_of = state.ids.iter().enumerate().map(|(s, &v)| (v, s as u32)).collect();
                shard.table = table;
            }
            shard
                .table
                .load_state(&state.weights, state.accum.as_deref())
                .map_err(|e| RuntimeError::Checkpoint(format!("PS shard {i}: {e}")))?;
            for &v in &state.ids {
                if v as usize >= self.owner.len() {
                    return Err(RuntimeError::Checkpoint(format!(
                        "PS shard {i}: checkpoint id {v} beyond {} vertices",
                        self.owner.len()
                    )));
                }
                // ordering: Release pairs with owner_slot()'s Acquire; load
                // runs before any worker thread starts, so this is belt and
                // braces.
                self.owner[v as usize].store(i as u32, Ordering::Release);
            }
        }
        Ok(())
    }

    /// Re-homes embedding rows to follow a new physical residency (the
    /// storage layer's post-rebalance `Residency` snapshot): every row whose
    /// owner table disagrees with `residency` moves to its new shard slot
    /// over the chaos plane (tag [`MIGRATION_TAG`], one batched message per
    /// `(src, dst)` shard pair, sequence-deduplicated).
    ///
    /// Must be called at a quiescent point — the epoch-boundary allreduce
    /// barrier, where every worker is parked and no push or drain is in
    /// flight. Row values and AdaGrad accumulators move losslessly, so the
    /// math after the move is bit-identical to not having moved; only the
    /// comm *accounting* changes (rows now local to a different slot).
    /// Under [`RecoveryMode::NoRetry`] a lost move message still flips
    /// ownership but lands zero rows at the destination — the deliberate
    /// data loss the migration chaos test must catch. Returns modelled comm
    /// nanoseconds.
    pub fn rehome(
        &self,
        residency: &[u32],
        plane: &FaultPlane,
        policy: &RetryPolicy,
        mode: RecoveryMode,
    ) -> Result<u64, RuntimeError> {
        if residency.len() != self.owner.len() {
            return Err(RuntimeError::Unrecoverable(format!(
                "rehome residency covers {} vertices, PS has {}",
                residency.len(),
                self.owner.len()
            )));
        }
        // Group the moves: (src, dst) -> ascending vertex ids. BTreeMap so
        // message order (and thus fault-plane decisions) is deterministic.
        let mut moves: BTreeMap<(u32, u32), Vec<u32>> = BTreeMap::new();
        for (v, &dst) in residency.iter().enumerate() {
            let src = self.owner_slot(v as u32) as u32;
            if src == dst {
                continue;
            }
            if dst as usize >= self.shards.len() {
                return Err(RuntimeError::Unrecoverable(format!(
                    "rehome of vertex {v} to slot {dst}, but PS has {} slots \
                     (pre-allocate with new_elastic)",
                    self.shards.len()
                )));
            }
            moves.entry((src, dst)).or_default().push(v as u32);
        }
        let row_bytes = self.dim as u64 * 4;
        let mut ns = 0u64;
        for (&(src, dst), rows) in &moves {
            let seq = {
                let mut seqs =
                    self.rehome_seq.lock().map_err(|_| RuntimeError::Poisoned("rehome seq"))?;
                let slot = seqs.entry((src, dst)).or_insert(0);
                let s = *slot;
                *slot += 1;
                s
            };
            let channel = FaultPlane::channel_with(MIGRATION_TAG, u64::from(src), u64::from(dst));
            let mut attempt = 0u32;
            let delivered = loop {
                if attempt > 0 {
                    if mode == RecoveryMode::NoRetry {
                        break false; // deliberately broken: the rows are lost
                    }
                    if policy.exhausted(attempt) {
                        return Err(RuntimeError::Unrecoverable(format!(
                            "ps rehome {src}->{dst} seq {seq}: retry deadline exhausted \
                             after {attempt} attempts"
                        )));
                    }
                    plane.note_retry();
                    ns += policy.backoff_ticks(attempt) * TICK_NS;
                }
                match plane.decide(channel, seq, attempt) {
                    Delivery::Deliver => {
                        self.apply_rehome(src, dst, seq, rows, mode, true)?;
                        break true;
                    }
                    Delivery::Delay(d) => {
                        ns += d * TICK_NS;
                        self.apply_rehome(src, dst, seq, rows, mode, true)?;
                        break true;
                    }
                    Delivery::AckLost => {
                        self.apply_rehome(src, dst, seq, rows, mode, true)?;
                        attempt += 1;
                    }
                    Delivery::Drop | Delivery::Corrupt => attempt += 1,
                }
            };
            if delivered {
                ns += self.stats.record(
                    AccessKind::Remote,
                    rows.len() as u64 * row_bytes,
                    &self.cost,
                );
                self.shard_bytes[dst as usize].add(rows.len() as u64 * row_bytes);
                if plane.replays_duplicate(channel, seq) {
                    self.apply_rehome(src, dst, seq, rows, mode, true)?;
                }
            } else {
                // The broken variant: ownership flips anyway, the payload
                // never arrives, the destination re-homes the rows
                // zero-filled. Training over them genuinely diverges — the
                // teeth of the migration chaos test.
                self.apply_rehome(src, dst, seq, rows, mode, false)?;
            }
            for &v in rows {
                // ordering: Release pairs with owner_slot()'s Acquire — a
                // reader that sees the new owner also sees the moved row
                // behind the destination shard's lock.
                self.owner[v as usize].store(dst, Ordering::Release);
            }
        }
        Ok(ns)
    }

    /// Applies (or dedup-discards) one sequenced rehome message: removes
    /// the rows from `src`'s shard and inserts them into `dst`'s, carrying
    /// weights and AdaGrad accumulators when `with_payload` (zero-filled
    /// rows otherwise — the lost-message path of a broken recovery mode).
    fn apply_rehome(
        &self,
        src: u32,
        dst: u32,
        seq: u64,
        rows: &[u32],
        mode: RecoveryMode,
        with_payload: bool,
    ) -> Result<(), RuntimeError> {
        if mode != RecoveryMode::NoDedup {
            let mut applied =
                self.rehome_applied.lock().map_err(|_| RuntimeError::Poisoned("rehome applied"))?;
            let cursor = applied.entry((src, dst)).or_insert(0);
            if seq < *cursor {
                return Ok(()); // duplicate of an already-applied move
            }
            *cursor = seq + 1;
        }
        // Extract the moving rows from the source shard and rebuild it
        // around the hole. A NoDedup double-apply finds the rows already
        // gone and skips them — the PS mirror of the storage layer's
        // idempotent absorb.
        let mut moving: BTreeMap<u32, (Vec<f32>, Option<Vec<f32>>)> = BTreeMap::new();
        {
            let mut shard =
                self.shards[src as usize].lock().map_err(|_| RuntimeError::Poisoned("ps shard"))?;
            let mut remaining = Self::snapshot_rows(&shard, self.dim);
            for &v in rows {
                if let Some(row) = remaining.remove(&v) {
                    moving.insert(v, row);
                }
            }
            if !moving.is_empty() {
                Self::install_rows(&mut shard, self.dim, remaining)?;
            }
        }
        // Land them at the destination: carried payload normally,
        // zero-filled rows when the move message was lost (the broken
        // recovery mode's data loss — extraction already destroyed the
        // source copy).
        let mut shard =
            self.shards[dst as usize].lock().map_err(|_| RuntimeError::Poisoned("ps shard"))?;
        let mut combined = Self::snapshot_rows(&shard, self.dim);
        let mut landed = false;
        for &v in rows {
            let row = if with_payload {
                match moving.remove(&v) {
                    Some(row) => row,
                    None => continue,
                }
            } else if combined.contains_key(&v) {
                continue;
            } else {
                (vec![0.0; self.dim], None)
            };
            combined.insert(v, row);
            landed = true;
        }
        if landed {
            Self::install_rows(&mut shard, self.dim, combined)?;
        }
        Ok(())
    }

    /// Snapshots a shard as id → (weights row, AdaGrad accumulator row).
    fn snapshot_rows(shard: &PsShard, dim: usize) -> BTreeMap<u32, (Vec<f32>, Option<Vec<f32>>)> {
        let accum = shard.table.accum_slice();
        shard
            .ids
            .iter()
            .enumerate()
            .map(|(slot, &v)| {
                let w = shard.table.row(slot).to_vec();
                let a = accum.map(|acc| acc[slot * dim..(slot + 1) * dim].to_vec());
                (v, (w, a))
            })
            .collect()
    }

    /// Rebuilds a shard to hold exactly `rows` (ascending by vertex id),
    /// restoring AdaGrad accumulators when any row carries them.
    fn install_rows(
        shard: &mut PsShard,
        dim: usize,
        rows: BTreeMap<u32, (Vec<f32>, Option<Vec<f32>>)>,
    ) -> Result<(), RuntimeError> {
        let ids: Vec<u32> = rows.keys().copied().collect();
        let mut weights = Vec::with_capacity(ids.len() * dim);
        let mut accum = vec![0.0f32; ids.len() * dim];
        let mut any_accum = false;
        for (slot, (w, a)) in rows.values().enumerate() {
            weights.extend_from_slice(w);
            if let Some(a) = a {
                accum[slot * dim..(slot + 1) * dim].copy_from_slice(a);
                any_accum = true;
            }
        }
        let table = EmbeddingTable::from_flat(ids.len(), dim, weights.clone())
            .map_err(|e| RuntimeError::Unrecoverable(format!("rehome rebuild: {e}")))?;
        shard.slot_of = ids.iter().enumerate().map(|(s, &v)| (v, s as u32)).collect();
        shard.ids = ids;
        shard.table = table;
        if any_accum {
            shard
                .table
                .load_state(&weights, Some(&accum))
                .map_err(|e| RuntimeError::Unrecoverable(format!("rehome rebuild: {e}")))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aligraph_graph::generate::TaobaoConfig;
    use aligraph_graph::Featurizer;
    use aligraph_partition::{EdgeCutHash, Partitioner};
    use aligraph_storage::TierMeterSnapshot;

    fn setup(workers: usize) -> (SparseParamServer, FeatureMatrix, Partition) {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let f = Featurizer::new(8).matrix(&g);
        let p = EdgeCutHash.partition(&g, workers);
        (SparseParamServer::new(&p, &f, 0.1, CostModel::default()), f, p)
    }

    #[test]
    fn materialize_roundtrips_initial_features() {
        let (ps, f, _) = setup(4);
        assert_eq!(ps.materialize().unwrap().as_slice(), f.as_slice());
        assert_eq!(ps.num_shards(), 4);
    }

    #[test]
    fn push_then_drain_syncs_replica_with_tier_accounting() {
        let (ps, f, p) = setup(2);
        let mut replica = f.clone();
        // Find one vertex owned by worker 0 and one by worker 1.
        let local = (0..f.len() as u32).find(|&v| p.owner_of(VertexId(v)).index() == 0).unwrap();
        let remote = (0..f.len() as u32).find(|&v| p.owner_of(VertexId(v)).index() == 1).unwrap();
        let mut grads = HashMap::new();
        grads.insert(local, vec![1.0; 8]);
        grads.insert(remote, vec![-1.0; 8]);
        let ns = ps.push(0, &grads).unwrap();
        assert!(ns > 0);
        let snap = ps.stats().snapshot();
        assert_eq!((snap.local_ops, snap.remote_ops), (1, 1));
        assert_eq!(snap.remote_bytes, 8 * 4);

        // Replica still stale, drain fixes it for both workers.
        assert_ne!(replica.as_slice(), ps.materialize().unwrap().as_slice());
        ps.drain_into(0, &mut replica).unwrap();
        assert_eq!(replica.as_slice(), ps.materialize().unwrap().as_slice());
        let mut replica1 = f.clone();
        ps.drain_into(1, &mut replica1).unwrap();
        assert_eq!(replica1.as_slice(), replica.as_slice());
        // A second drain moves nothing (dirty set consumed).
        let before = ps.stats().snapshot().total_ops();
        ps.drain_into(0, &mut replica).unwrap();
        assert_eq!(ps.stats().snapshot().total_ops(), before);
    }

    #[test]
    fn read_metering_splits_local_and_cached() {
        let (ps, f, p) = setup(2);
        let local = (0..f.len() as u32).find(|&v| p.owner_of(VertexId(v)).index() == 0).unwrap();
        let remote = (0..f.len() as u32).find(|&v| p.owner_of(VertexId(v)).index() == 1).unwrap();
        ps.record_reads(0, [local, remote].iter());
        let snap = ps.stats().snapshot();
        assert_eq!((snap.local_ops, snap.cached_ops, snap.remote_ops), (1, 1, 0));
    }

    #[test]
    fn export_load_roundtrip_and_mismatch_errors() {
        let (ps, f, p) = setup(3);
        let mut grads = HashMap::new();
        grads.insert(0u32, vec![0.5; 8]);
        ps.push(0, &grads).unwrap();
        let state = ps.export().unwrap();
        let fresh = SparseParamServer::new(&p, &f, 0.1, CostModel::default());
        fresh.load(&state).unwrap();
        assert_eq!(fresh.materialize().unwrap().as_slice(), ps.materialize().unwrap().as_slice());
        // Wrong shard count is a checkpoint error, not a panic.
        assert!(matches!(fresh.load(&state[..2]), Err(RuntimeError::Checkpoint(_))));
    }

    #[test]
    fn registered_ps_publishes_tier_and_shard_series() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let f = Featurizer::new(8).matrix(&g);
        let p = EdgeCutHash.partition(&g, 2);
        let registry = Registry::new();
        let ps = SparseParamServer::new_registered(&p, &f, 0.1, CostModel::default(), &registry);
        let local = (0..f.len() as u32).find(|&v| p.owner_of(VertexId(v)).index() == 0).unwrap();
        let remote = (0..f.len() as u32).find(|&v| p.owner_of(VertexId(v)).index() == 1).unwrap();
        let mut grads = HashMap::new();
        grads.insert(local, vec![1.0; 8]);
        grads.insert(remote, vec![-1.0; 8]);
        ps.push(0, &grads).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("runtime.ps.ops", &[("tier", "local")]), 1);
        assert_eq!(snap.counter("runtime.ps.ops", &[("tier", "remote")]), 1);
        // One 8-dim f32 row landed on each shard: 32 payload bytes apiece.
        assert_eq!(snap.counter("runtime.ps.bytes", &[("shard", "0")]), 32);
        assert_eq!(snap.counter("runtime.ps.bytes", &[("shard", "1")]), 32);
        ps.reset_stats();
        assert_eq!(ps.stats().snapshot(), TierMeterSnapshot::default());
        assert_eq!(registry.snapshot().counter("runtime.ps.bytes", &[("shard", "0")]), 0);
    }

    /// Runs a fixed 12-step push/drain workload on 2 workers through a
    /// fault plane, returning final server params ++ worker-0 replica and
    /// the plane's fault counters. `drop = 0` with `Full` is the clean
    /// baseline (the plane delivers everything).
    fn run_workload(
        mode: RecoveryMode,
        drop: f64,
        seed: u64,
    ) -> (Vec<f32>, aligraph_chaos::FaultSnapshot) {
        use aligraph_chaos::FaultPlan;
        let (ps, f, _) = setup(2);
        let plane = FaultPlane::new(FaultPlan::with_seed(seed, drop));
        let policy = RetryPolicy::default();
        let mut seqs = [ChannelSeqs::new(2), ChannelSeqs::new(2)];
        let mut replicas = [f.clone(), f.clone()];
        for step in 0..12u32 {
            for (w, seq) in seqs.iter_mut().enumerate() {
                let mut grads = HashMap::new();
                for k in 0..4u32 {
                    let v = (step * 7 + k * 3 + w as u32) % f.len() as u32;
                    grads.insert(v, vec![0.1 * (k as f32 + 1.0); 8]);
                }
                ps.push_faulted(w, &grads, &plane, &policy, mode, seq).unwrap();
            }
            for (w, (replica, seq)) in replicas.iter_mut().zip(seqs.iter_mut()).enumerate() {
                ps.drain_into_faulted(w, replica, &plane, &policy, mode, seq).unwrap();
            }
        }
        let mut out = ps.materialize().unwrap().as_slice().to_vec();
        out.extend_from_slice(replicas[0].as_slice());
        (out, plane.snapshot())
    }

    #[test]
    fn faulted_push_pull_is_bit_exact_with_full_recovery() {
        let (clean, quiet) = run_workload(RecoveryMode::Full, 0.0, 0);
        assert_eq!(quiet.faults_injected, 0);
        for seed in [1u64, 7, 42] {
            let (faulted, snap) = run_workload(RecoveryMode::Full, 0.3, seed);
            assert!(snap.faults_injected > 0, "seed {seed}: no faults fired");
            assert!(snap.retries > 0, "seed {seed}: no retries performed");
            assert_eq!(
                clean.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                faulted.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "seed {seed}: faulted run diverged from clean run"
            );
        }
    }

    #[test]
    fn broken_recovery_modes_are_caught_by_divergence() {
        let (clean, _) = run_workload(RecoveryMode::Full, 0.0, 0);
        // Teeth check: with recovery deliberately broken, some fault seed
        // must produce bit-different parameters — otherwise the parity
        // assertion above proves nothing.
        let diverges =
            |mode: RecoveryMode| (0..8u64).any(|seed| run_workload(mode, 0.3, seed).0 != clean);
        assert!(diverges(RecoveryMode::NoRetry), "silent message loss went undetected");
        assert!(diverges(RecoveryMode::NoDedup), "double-applied deltas went undetected");
    }

    /// An elastic PS (one spare slot) after a few training pushes, plus the
    /// residency that moves every even-id worker-0 vertex to the spare slot.
    fn elastic_setup() -> (SparseParamServer, Partition, Vec<u32>) {
        use aligraph_chaos::FaultPlan;
        let g = TaobaoConfig::tiny().generate().unwrap();
        let f = Featurizer::new(8).matrix(&g);
        let p = EdgeCutHash.partition(&g, 2);
        let ps = SparseParamServer::new_elastic(
            &p,
            &f,
            0.1,
            CostModel::default(),
            &Registry::disabled(),
            3,
        );
        // A few pushes so AdaGrad accumulators exist and must survive the
        // move bit-for-bit.
        let plane = FaultPlane::new(FaultPlan::default());
        let policy = RetryPolicy::default();
        let mut seqs = ChannelSeqs::new(ps.num_shards());
        for step in 0..4u32 {
            let mut grads = HashMap::new();
            for k in 0..4u32 {
                grads.insert((step * 5 + k) % f.len() as u32, vec![0.2; 8]);
            }
            ps.push_faulted(0, &grads, &plane, &policy, RecoveryMode::Full, &mut seqs).unwrap();
        }
        let residency: Vec<u32> = (0..f.len() as u32)
            .map(|v| {
                let owner = p.owner_of(VertexId(v)).index() as u32;
                if owner == 0 && v % 2 == 0 {
                    2
                } else {
                    owner
                }
            })
            .collect();
        (ps, p, residency)
    }

    #[test]
    fn rehome_moves_rows_losslessly() {
        use aligraph_chaos::FaultPlan;
        let (ps, _, residency) = elastic_setup();
        let before = ps.materialize().unwrap();
        let before_state = ps.export().unwrap();
        let plane = FaultPlane::new(FaultPlan::default());
        let ns =
            ps.rehome(&residency, &plane, &RetryPolicy::default(), RecoveryMode::Full).unwrap();
        assert!(ns > 0, "a real move must cost modelled time");
        // The math is location-independent: materialized rows identical.
        assert_eq!(ps.materialize().unwrap().as_slice(), before.as_slice());
        // Rows physically landed in the spare slot, with accumulators.
        let after_state = ps.export().unwrap();
        let moved: Vec<u32> =
            (0..residency.len() as u32).filter(|&v| residency[v as usize] == 2).collect();
        assert!(!moved.is_empty());
        assert_eq!(after_state[2].ids, moved);
        assert!(after_state[2].accum.is_some(), "AdaGrad state must move with the rows");
        for &v in &moved {
            assert!(!before_state[0].ids.contains(&v) || !after_state[0].ids.contains(&v));
        }
        // A second identical rehome is a no-op (nothing left to move).
        let ns2 =
            ps.rehome(&residency, &plane, &RetryPolicy::default(), RecoveryMode::Full).unwrap();
        assert_eq!(ns2, 0);
        // Pushes to moved rows now land on the new shard and still train.
        let mut grads = HashMap::new();
        grads.insert(moved[0], vec![1.0; 8]);
        ps.push(1, &grads).unwrap();
        assert_ne!(ps.materialize().unwrap().as_slice(), before.as_slice());
    }

    #[test]
    fn faulted_rehome_matches_clean_rehome_exactly() {
        use aligraph_chaos::FaultPlan;
        let (clean_ps, _, residency) = elastic_setup();
        let plane = FaultPlane::new(FaultPlan::default());
        clean_ps.rehome(&residency, &plane, &RetryPolicy::default(), RecoveryMode::Full).unwrap();
        let clean = clean_ps.export().unwrap();
        for seed in [1u64, 7, 42] {
            let (ps, _, residency) = elastic_setup();
            let plane = FaultPlane::new(FaultPlan::with_seed(seed, 0.4));
            ps.rehome(&residency, &plane, &RetryPolicy::default(), RecoveryMode::Full).unwrap();
            assert_eq!(ps.export().unwrap(), clean, "seed {seed}: faulted rehome diverged");
        }
    }

    #[test]
    fn broken_rehome_zero_fills_lost_rows() {
        use aligraph_chaos::FaultPlan;
        let (clean_ps, _, residency) = elastic_setup();
        let plane = FaultPlane::new(FaultPlan::default());
        clean_ps.rehome(&residency, &plane, &RetryPolicy::default(), RecoveryMode::Full).unwrap();
        let clean = clean_ps.materialize().unwrap();
        let diverged = (0..8u64).any(|seed| {
            let (ps, _, residency) = elastic_setup();
            let plane = FaultPlane::new(FaultPlan::with_seed(seed, 0.9));
            ps.rehome(&residency, &plane, &RetryPolicy::default(), RecoveryMode::NoRetry).unwrap();
            ps.materialize().unwrap().as_slice() != clean.as_slice()
        });
        assert!(diverged, "lost migration payloads went undetected");
    }

    #[test]
    fn rehome_rejects_bad_shapes() {
        let (ps, _, residency) = elastic_setup();
        use aligraph_chaos::FaultPlan;
        let plane = FaultPlane::new(FaultPlan::default());
        let policy = RetryPolicy::default();
        // Wrong vertex count.
        assert!(ps.rehome(&residency[..3], &plane, &policy, RecoveryMode::Full).is_err());
        // Destination slot beyond the pre-allocated range.
        let bad: Vec<u32> = residency.iter().map(|&d| if d == 2 { 9 } else { d }).collect();
        assert!(ps.rehome(&bad, &plane, &policy, RecoveryMode::Full).is_err());
    }

    #[test]
    fn zero_lr_push_freezes_weights() {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let f = Featurizer::new(8).matrix(&g);
        let p = EdgeCutHash.partition(&g, 2);
        let ps = SparseParamServer::new(&p, &f, 0.0, CostModel::default());
        let mut grads = HashMap::new();
        grads.insert(0u32, vec![3.0; 8]);
        ps.push(1, &grads).unwrap();
        assert_eq!(ps.materialize().unwrap().as_slice(), f.as_slice());
    }
}
