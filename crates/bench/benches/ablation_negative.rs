//! Ablation: alias-table negative sampling (O(1) per draw) vs a naive
//! linear-scan weighted draw — the design choice behind the NEGATIVE
//! sampler's latency in Table 4.

use aligraph_bench::taobao_small_bench;
use aligraph_sampling::{AliasTable, NegativeSampler, UnigramNegative};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Duration;

fn bench_negative(c: &mut Criterion) {
    let graph = taobao_small_bench();
    let weights: Vec<f32> = graph
        .vertices()
        .map(|v| ((graph.in_degree(v) + graph.out_degree(v)) as f32).powf(0.75))
        .collect();

    let mut group = c.benchmark_group("ablation_negative");
    group.sample_size(20).measurement_time(Duration::from_secs(5));

    group.bench_function("alias_table", |b| {
        let table = AliasTable::new(&weights).expect("positive weights");
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..1_000 {
                acc += table.sample(&mut rng);
            }
            acc
        })
    });

    group.bench_function("linear_scan", |b| {
        let total: f32 = weights.iter().sum();
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..1_000 {
                let mut x = rng.gen::<f32>() * total;
                for (i, &w) in weights.iter().enumerate() {
                    if x < w {
                        acc += i;
                        break;
                    }
                    x -= w;
                }
            }
            acc
        })
    });

    group.bench_function("sampler_end_to_end", |b| {
        let negative = UnigramNegative::new(&graph, None, 0.75);
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| negative.sample(&graph, &[], 1_000, &mut rng).len())
    });
    group.finish();
}

criterion_group!(benches, bench_negative);
criterion_main!(benches);
