//! Criterion bench for Figure 9: neighborhood access latency under the
//! three neighbor-cache strategies at a 20% budget.

use aligraph_bench::taobao_small_bench;
use aligraph_partition::{EdgeCutHash, WorkerId};
use aligraph_sampling::neighborhood::ClusterView;
use aligraph_sampling::{NeighborhoodSampler, UniformNeighborhood};
use aligraph_storage::{CacheStrategy, Cluster, CostModel};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::sync::Arc;
use std::time::Duration;

fn bench_strategies(c: &mut Criterion) {
    let graph = Arc::new(taobao_small_bench());
    let mut group = c.benchmark_group("fig9_cache_strategy");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    let strategies: [(&str, CacheStrategy); 3] = [
        ("importance", CacheStrategy::ImportanceBudget { k: 2, fraction: 0.2 }),
        ("random", CacheStrategy::Random { fraction: 0.2, seed: 7 }),
        ("lru", CacheStrategy::Lru { fraction: 0.2 }),
    ];
    for (name, strategy) in strategies {
        let (cluster, _) = Cluster::builder(Arc::clone(&graph))
            .partitioner(&EdgeCutHash)
            .shards(8)
            .cache(strategy)
            .max_hop(2)
            .cost_model(CostModel::default())
            .build();
        group.bench_function(name, |b| {
            let view = ClusterView { cluster: &cluster, from: WorkerId(0) };
            let mut rng = StdRng::seed_from_u64(3);
            let n = graph.num_vertices() as u32;
            b.iter(|| {
                let seeds: Vec<aligraph_graph::VertexId> =
                    (0..64).map(|_| aligraph_graph::VertexId(rng.gen_range(0..n))).collect();
                UniformNeighborhood
                    .sample_context(&view, &seeds, None, &[8, 4], &mut rng)
                    .context_size()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
