//! Criterion bench for Table 4: TRAVERSE / NEIGHBORHOOD / NEGATIVE latency
//! at batch size 512 with a 20% importance cache.

use aligraph_bench::taobao_small_bench;
use aligraph_partition::{EdgeCutHash, WorkerId};
use aligraph_sampling::neighborhood::ClusterView;
use aligraph_sampling::{
    NegativeSampler, NeighborhoodSampler, TraverseSampler, UniformNeighborhood, UniformTraverse,
    UnigramNegative,
};
use aligraph_storage::{CacheStrategy, Cluster, CostModel};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

const BATCH: usize = 512;

fn bench_samplers(c: &mut Criterion) {
    let graph = Arc::new(taobao_small_bench());
    let (cluster, _) = Cluster::builder(Arc::clone(&graph))
        .partitioner(&EdgeCutHash)
        .shards(8)
        .cache(CacheStrategy::ImportanceBudget { k: 2, fraction: 0.2 })
        .max_hop(2)
        .cost_model(CostModel::default())
        .build();
    let mut group = c.benchmark_group("table4_sampling");
    group.sample_size(20).measurement_time(Duration::from_secs(5));

    group.bench_function("traverse_512", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            UniformTraverse.sample_edges(&graph, aligraph_graph::EdgeType(0), BATCH, &mut rng).len()
        })
    });

    group.bench_function("neighborhood_512_h10_5", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let view = ClusterView { cluster: &cluster, from: WorkerId(0) };
        let seeds = UniformTraverse.sample_vertices(&graph, None, BATCH, &mut rng);
        b.iter(|| {
            UniformNeighborhood
                .sample_context(&view, &seeds, None, &[10, 5], &mut rng)
                .context_size()
        })
    });

    group.bench_function("negative_512x10", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let negative = UnigramNegative::new(&graph, None, 0.75);
        let seeds = UniformTraverse.sample_vertices(&graph, None, BATCH, &mut rng);
        b.iter(|| {
            let mut total = 0usize;
            for &v in &seeds {
                total += negative.sample(&graph, &[v], 10, &mut rng).len();
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
