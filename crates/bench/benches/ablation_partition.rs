//! Ablation: the four built-in partitioners (paper §3.2) — build time on
//! the same graph. Quality (edge cut, balance) is reported by the
//! `platform_tour` example; this bench isolates speed.

use aligraph_bench::taobao_small_bench;
use aligraph_partition::{
    EdgeCutHash, Grid2D, MetisLike, Partitioner, StreamingLdg, VertexCutGreedy,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_partitioners(c: &mut Criterion) {
    let graph = taobao_small_bench();
    let mut group = c.benchmark_group("ablation_partition");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    let partitioners: Vec<Box<dyn Partitioner>> = vec![
        Box::new(EdgeCutHash),
        Box::new(VertexCutGreedy::default()),
        Box::new(Grid2D),
        Box::new(StreamingLdg::default()),
        Box::new(MetisLike::default()),
    ];
    for p in &partitioners {
        group.bench_function(p.name(), |b| b.iter(|| p.partition(&graph, 8).num_workers));
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
