//! Ablation: lock-free request-flow buckets (Figure 6) vs a global mutex,
//! under concurrent sampler weight updates.

use aligraph_graph::VertexId;
use aligraph_storage::{LockFreeWeightService, MutexWeightService, WeightService};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

const N: usize = 10_000;
const UPDATES_PER_THREAD: usize = 5_000;
const THREADS: usize = 4;

fn hammer(service: Arc<dyn WeightService>) {
    let threads: Vec<_> = (0..THREADS)
        .map(|t| {
            let svc = Arc::clone(&service);
            std::thread::spawn(move || {
                for i in 0..UPDATES_PER_THREAD {
                    svc.update(VertexId(((t * 7919 + i) % N) as u32), 0.01);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("worker");
    }
    service.flush().expect("service running");
}

fn bench_buckets(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bucket");
    group.sample_size(10).measurement_time(Duration::from_secs(5));

    group.bench_function("lock_free_buckets", |b| {
        b.iter(|| {
            let svc: Arc<dyn WeightService> = Arc::new(LockFreeWeightService::new(N, 4, 0.0));
            hammer(Arc::clone(&svc));
        })
    });

    group.bench_function("global_mutex", |b| {
        b.iter(|| {
            let svc: Arc<dyn WeightService> = Arc::new(MutexWeightService::new(N, 0.0));
            hammer(Arc::clone(&svc));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_buckets);
criterion_main!(benches);
