//! Criterion bench for Table 5: the AGGREGATE/COMBINE mini-batch with the
//! materialization cache on vs. off (the paper's primary operator ablation).

use aligraph::{EpisodeTape, GnnEncoder};
use aligraph_bench::taobao_small_bench;
use aligraph_graph::{Featurizer, VertexId};
use aligraph_sampling::UniformNeighborhood;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Duration;

fn bench_operators(c: &mut Criterion) {
    let graph = taobao_small_bench();
    let features = Featurizer::new(32).matrix(&graph);
    let encoder = GnnEncoder::sage(32, &[64, 32], &[10, 5], 0.01, 1);
    let n = graph.num_vertices() as u32;

    let mut group = c.benchmark_group("table5_operators");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    for (name, memoized) in [("with_cache", true), ("without_cache", false)] {
        group.bench_function(name, |b| {
            let mut rng = StdRng::seed_from_u64(9);
            b.iter(|| {
                let seeds: Vec<VertexId> =
                    (0..128).map(|_| VertexId(rng.gen_range(0..n))).collect();
                let mut tape =
                    if memoized { EpisodeTape::new() } else { EpisodeTape::without_memoization() };
                let mut acc = 0.0f32;
                for &v in &seeds {
                    let idx = encoder.forward(
                        &graph,
                        &features,
                        &UniformNeighborhood,
                        v,
                        &mut tape,
                        &mut rng,
                    );
                    acc += tape.output(idx)[0];
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);
