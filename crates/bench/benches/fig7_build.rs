//! Criterion bench for Figure 7: cluster build time vs. number of workers.

use aligraph_bench::taobao_small_bench;
use aligraph_partition::EdgeCutHash;
use aligraph_storage::{CacheStrategy, Cluster, CostModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn bench_build(c: &mut Criterion) {
    let graph = Arc::new(taobao_small_bench());
    let mut group = c.benchmark_group("fig7_build");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                let (cluster, _) = Cluster::builder(Arc::clone(&graph))
                    .partitioner(&EdgeCutHash)
                    .shards(w)
                    .cache(CacheStrategy::None)
                    .max_hop(2)
                    .cost_model(CostModel::default())
                    .build();
                cluster.num_workers()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
