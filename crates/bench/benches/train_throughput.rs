//! Weak-scaling bench for the distributed training runtime: modelled
//! edges/s and speedup vs 1 worker as the worker count grows. Not a
//! criterion timing loop — each configuration trains once and the runtime's
//! own cost-model report supplies the numbers (the container is
//! single-core, so wall-clock scaling is meaningless; see DESIGN.md).

use aligraph_bench::{f, header, row, taobao_small_bench};
use aligraph_graph::Featurizer;
use aligraph_partition::EdgeCutHash;
use aligraph_runtime::{DistTrainer, EncoderSpec, RuntimeConfig};
use aligraph_storage::{CacheStrategy, Cluster, CostModel};
use std::sync::Arc;

fn main() {
    let graph = Arc::new(taobao_small_bench());
    let dim = 16;
    let features = Featurizer::new(dim).matrix(&graph);
    let spec =
        EncoderSpec { dim_in: dim, dims: vec![16, 8], fanouts: vec![5, 3], lr: 0.05, seed: 7 };

    println!("train_throughput: {} vertices / {} edges", graph.num_vertices(), graph.num_edges());
    header(&["workers", "staleness", "edges/s (modeled)", "speedup", "remote msgs", "loss"]);

    let mut base = None;
    for workers in [1usize, 2, 4, 8] {
        let (cluster, _) = Cluster::builder(Arc::clone(&graph))
            .partitioner(&EdgeCutHash)
            .shards(workers)
            .cache(CacheStrategy::None)
            .max_hop(2)
            .cost_model(CostModel::default())
            .build();
        let cfg = RuntimeConfig {
            workers,
            epochs: 2,
            batches_per_epoch: 16,
            batch_size: 32,
            negatives: 4,
            staleness: 2,
            seed: 42,
            sparse_lr: 0.05,
            ..RuntimeConfig::default()
        };
        let out = DistTrainer::new(&cluster, &features, spec.clone(), cfg)
            .expect("valid config")
            .train()
            .expect("training run");
        let eps = out.report.modeled_edges_per_sec();
        let base_eps = *base.get_or_insert(eps);
        row(&[
            workers.to_string(),
            out.report.staleness.to_string(),
            f(eps, 0),
            format!("{:.2}x", eps / base_eps),
            out.report.ps.remote_ops.to_string(),
            f(out.report.final_loss(), 4),
        ]);
    }
}
