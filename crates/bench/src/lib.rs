//! # aligraph-bench
//!
//! Shared workload builders and reporting helpers for the experiment
//! binaries (`src/bin/*`) and Criterion benches (`benches/*`). The
//! DESIGN.md experiment index maps every paper table/figure to one target
//! here.
//!
//! Scale knobs (environment variables):
//! * `ALIGRAPH_SCALE` — linear multiplier on the default simulated dataset
//!   sizes (default 1.0; the defaults are already ~1000× below production);
//! * `ALIGRAPH_FAST=1` — shrink the algorithm experiments for smoke runs.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

use aligraph_graph::generate::{amazon_sim_scaled, DynamicConfig, TaobaoConfig};
use aligraph_graph::{AttributedHeterogeneousGraph, DynamicGraph};

/// The global linear scale multiplier.
pub fn scale() -> f64 {
    std::env::var("ALIGRAPH_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

/// True when `ALIGRAPH_FAST=1`.
pub fn fast_mode() -> bool {
    std::env::var("ALIGRAPH_FAST").map(|v| v == "1").unwrap_or(false)
}

/// Taobao-small simulator at system-bench scale (~5% of the already-scaled
/// sim: ≈7.4K users / 450 items / ≈33K edges by default).
pub fn taobao_small_bench() -> AttributedHeterogeneousGraph {
    let mut cfg = TaobaoConfig::small_sim().scaled(0.05 * scale());
    // Production behavior graphs store both u2i and i2u relation tables;
    // the reverse edges keep the importance metric (Eq. 1) non-degenerate.
    cfg.reverse_ui_prob = 0.15;
    cfg.generate().expect("valid config")
}

/// Taobao-large simulator at system-bench scale (6× the storage of small).
pub fn taobao_large_bench() -> AttributedHeterogeneousGraph {
    let mut cfg = TaobaoConfig::large_sim().scaled(0.05 * scale());
    cfg.reverse_ui_prob = 0.15;
    cfg.generate().expect("valid config")
}

/// Taobao-style graph at *algorithm* scale (walk-based training has to
/// finish in seconds, not minutes).
pub fn taobao_algo() -> AttributedHeterogeneousGraph {
    let f = if fast_mode() { 0.2 } else { 1.0 };
    TaobaoConfig {
        users: (2_000.0 * f * scale()) as usize,
        items: (300.0 * f * scale()).max(30.0) as usize,
        ui_edges: (12_000.0 * f * scale()) as usize,
        ii_edges: (3_000.0 * f * scale()) as usize,
        user_attr_fields: 27,
        item_attr_fields: 32,
        attr_profiles: 128,
        reverse_ui_prob: 0.2,
        interest_clusters: 8,
        seed: 0xa190,
    }
    .generate()
    .expect("valid config")
}

/// Amazon-style graph. Full Table 6 scale unless fast mode.
pub fn amazon_algo() -> AttributedHeterogeneousGraph {
    if fast_mode() {
        amazon_sim_scaled(1_000, 14_000, 0xa3a2).expect("valid config")
    } else {
        amazon_sim_scaled(10_166, 148_865, 0xa3a2).expect("valid config")
    }
}

/// Dynamic graph for the Table 11 experiment.
pub fn dynamic_algo() -> DynamicGraph {
    let f = if fast_mode() { 0.3 } else { 1.0 };
    DynamicConfig {
        vertices: (1_500.0 * f) as usize,
        initial_edges: (7_000.0 * f) as usize,
        timestamps: 5,
        normal_per_step: (700.0 * f) as usize,
        removed_per_step: (250.0 * f) as usize,
        burst_size: (350.0 * f) as usize,
        burst_every: 2,
        edge_types: 3,
        seed: 0xd1a,
    }
    .generate()
    .expect("valid config")
}

/// Holds out one interacted item per (eligible) user — the leave-one-out
/// protocol shared by the recommendation experiments (Table 9, Figure 1).
pub fn leave_one_out(
    graph: &AttributedHeterogeneousGraph,
    seed: u64,
) -> (AttributedHeterogeneousGraph, Vec<(aligraph_graph::VertexId, aligraph_graph::VertexId)>) {
    use aligraph_graph::ids::well_known::{ITEM, USER};
    use rand::prelude::*;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut held: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    let mut truth = Vec::new();
    for &u in graph.vertices_of_type(USER) {
        let items: Vec<_> =
            graph.out_neighbors(u).iter().filter(|n| graph.vertex_type(n.vertex) == ITEM).collect();
        if items.len() >= 2 {
            let pick = items[rng.gen_range(0..items.len())];
            held.insert(u.0, pick.edge.0);
            truth.push((u, pick.vertex));
        }
    }
    let mut b = aligraph_graph::GraphBuilder::directed()
        .with_capacity(graph.num_vertices(), graph.num_edge_records());
    for v in graph.vertices() {
        b.add_vertex(graph.vertex_type(v), graph.vertex_attrs(v).clone());
    }
    for v in graph.vertices() {
        for nb in graph.out_neighbors(v) {
            if held.get(&v.0) == Some(&nb.edge.0) {
                continue;
            }
            b.add_edge(v, nb.vertex, nb.etype, nb.weight).expect("valid edges");
        }
    }
    (b.build(), truth)
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown-style header + separator.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!("|{}|", cells.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

/// Formats a float with fixed precision.
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_datasets_have_expected_shape() {
        let small = taobao_small_bench();
        assert_eq!(small.num_vertex_types(), 2);
        assert_eq!(small.num_edge_types(), 4);
        assert!(small.num_vertices() > 1_000);
        let algo = taobao_algo();
        assert!(algo.num_edges() > 1_000);
    }

    #[test]
    fn large_is_bigger_than_small() {
        let small = taobao_small_bench();
        let large = taobao_large_bench();
        assert!(large.num_edges() > 2 * small.num_edges());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.5), "50.00%");
    }
}
