//! Table 12: Bayesian GNN — hit recall of GraphSAGE with and without the
//! Bayesian prior correction, at brand and category granularity.
//!
//! Paper shape: the correction lifts HR@10/30/50 by 1–3 points at both
//! granularities, for both click and buy behaviors. Setup: the *knowledge*
//! prior comes from GraphSAGE embeddings of the item–item co-occurrence
//! graph; the Bayesian layer corrects them against the full behavior graph
//! (Eq. 7). A recommendation hits at granularity g when a top-k item shares
//! the held-out item's g-attribute (brand = categorical field 1 of the item
//! profile; category = that code modulo 8, a coarser rollup).

use aligraph::models::bayesian::{train_bayesian, BayesianConfig};
use aligraph::models::graphsage::{train_graphsage_with_features, GraphSageConfig};
use aligraph_bench::{f, header, row, taobao_algo};
use aligraph_graph::ids::well_known::{BUY, CLICK, ITEM, USER};
use aligraph_graph::{AttrValue, AttributedHeterogeneousGraph, EdgeType, Featurizer, VertexId};
use aligraph_tensor::Matrix;
use rand::prelude::*;
use rand::rngs::StdRng;

fn brand(graph: &AttributedHeterogeneousGraph, item: VertexId) -> u32 {
    match graph.vertex_attrs(item).0.get(1) {
        Some(AttrValue::Categorical(c)) => *c,
        _ => 0,
    }
}

fn category(graph: &AttributedHeterogeneousGraph, item: VertexId) -> u32 {
    brand(graph, item) % 8
}

/// HR@k at a granularity: hit when a top-k item shares the held-out item's
/// granularity code.
fn hr_at(
    graph: &AttributedHeterogeneousGraph,
    embed: &dyn Fn(VertexId) -> Vec<f32>,
    tests: &[(VertexId, VertexId)],
    items: &[VertexId],
    k: usize,
    gran: &dyn Fn(&AttributedHeterogeneousGraph, VertexId) -> u32,
) -> f64 {
    let mut hits = 0usize;
    for &(user, truth) in tests {
        let zu = embed(user);
        let mut scored: Vec<(VertexId, f32)> =
            items.iter().map(|&i| (i, aligraph_tensor::dot(&zu, &embed(i)))).collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let want = gran(graph, truth);
        if scored.iter().take(k).any(|&(i, _)| gran(graph, i) == want) {
            hits += 1;
        }
    }
    hits as f64 / tests.len().max(1) as f64
}

fn test_pairs(
    graph: &AttributedHeterogeneousGraph,
    etype: EdgeType,
    count: usize,
    seed: u64,
) -> Vec<(VertexId, VertexId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let users = graph.vertices_of_type(USER);
    while out.len() < count {
        let u = users[rng.gen_range(0..users.len())];
        let typed = graph.out_neighbors_typed(u, etype);
        if typed.is_empty() {
            continue;
        }
        out.push((u, typed[rng.gen_range(0..typed.len())].vertex));
    }
    out
}

fn main() {
    println!("# Table 12 — Bayesian GNN correction (hit recall)\n");
    let graph = taobao_algo();
    let items: Vec<VertexId> = graph.vertices_of_type(ITEM).to_vec();

    // Prior: GraphSAGE on the behavior graph (the paper's baseline column).
    let mut sage_cfg = GraphSageConfig::quick();
    sage_cfg.train.batches_per_epoch = 40;
    sage_cfg.train.epochs = 5;
    let features = Featurizer::new(sage_cfg.feature_dim).with_identity().matrix(&graph);
    let sage = train_graphsage_with_features(&graph, &features, &sage_cfg);
    let prior_matrix = sage.embeddings.matrix.clone();

    // Bayesian correction toward the behavior graph (Eq. 7).
    let mut bayes_cfg = BayesianConfig::quick();
    bayes_cfg.prior_strength = 0.25; // stronger anchor: correct, don't replace
    let corrected = train_bayesian(
        Matrix::from_vec(prior_matrix.rows, prior_matrix.cols, prior_matrix.as_slice().to_vec()),
        &graph,
        &bayes_cfg,
    );

    let base_embed = |v: VertexId| prior_matrix.row(v.index()).to_vec();
    let corr_embed = |v: VertexId| corrected.corrected(v);

    header(&["granularity", "HR", "behavior", "GraphSAGE", "GraphSAGE + Bayesian"]);
    for (gran_name, gran) in [
        ("Brand", &brand as &dyn Fn(&AttributedHeterogeneousGraph, VertexId) -> u32),
        ("Category", &category),
    ] {
        for (bname, etype) in [("Click", CLICK), ("Buy", BUY)] {
            let tests = test_pairs(&graph, etype, 150, 7 + etype.0 as u64);
            for k in [10usize, 30, 50] {
                let hb = hr_at(&graph, &base_embed, &tests, &items, k, gran);
                let hc = hr_at(&graph, &corr_embed, &tests, &items, k, gran);
                row(&[
                    gran_name.into(),
                    k.to_string(),
                    bname.into(),
                    f(hb * 100.0, 2),
                    f(hc * 100.0, 2),
                ]);
            }
        }
    }
    println!("\npaper: the Bayesian correction lifts HR by 1-3 points at every k and granularity.");
}
