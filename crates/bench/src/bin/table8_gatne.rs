//! Table 8: GATNE vs ten competitors on Amazon(sim) and Taobao-small(sim),
//! link prediction (ROC-AUC / PR-AUC / F1, averaged over edge types).
//!
//! Paper shape: GATNE wins on every metric on both datasets (e.g. F1
//! +16.43% over the best competitor on Amazon). Several baselines cannot
//! handle Taobao-scale data ("N.A." in the paper); we run everything at
//! simulator scale and still report the Taobao columns for the scalable
//! subset the paper reports (DeepWalk, MVE, MNE, GATNE).

use aligraph::models::gatne::{train_gatne, GatneConfig};
use aligraph::trainer::evaluate_split;
use aligraph::EmbeddingModel;
use aligraph_baselines::anrl::train_anrl;
use aligraph_baselines::{
    train_deepwalk, train_line, train_metapath2vec, train_mne, train_mve, train_node2vec,
    train_pmne, LineOrder, PmneVariant, SkipGramParams,
};
use aligraph_bench::{amazon_algo, header, pct, row, taobao_algo};
use aligraph_eval::{LinkMetrics, LinkSplit};
use aligraph_graph::ids::well_known::{ITEM, USER};

fn gatne_metrics(split: &LinkSplit, cfg: &GatneConfig) -> LinkMetrics {
    let model = train_gatne(&split.train, cfg);
    let mut per_type = Vec::new();
    for t in split.test_edge_types() {
        let (pos, neg) = split.of_type(t);
        if pos.is_empty() || neg.is_empty() {
            continue;
        }
        let mut scored = Vec::new();
        for e in pos {
            scored.push((model.score_typed(e.src, e.dst, t), true));
        }
        for e in neg {
            scored.push((model.score_typed(e.src, e.dst, t), false));
        }
        per_type.push(LinkMetrics::from_scored(&scored));
    }
    LinkMetrics::average(&per_type)
}

fn cells(name: &str, m: Option<LinkMetrics>) -> Vec<String> {
    match m {
        Some(m) => vec![name.into(), pct(m.roc_auc), pct(m.pr_auc), pct(m.f1)],
        None => vec![name.into(), "N.A.".into(), "N.A.".into(), "N.A.".into()],
    }
}

fn main() {
    println!("# Table 8 — GATNE vs competitors\n");
    let params = SkipGramParams { dim: 48, epochs: 2, ..SkipGramParams::quick() };
    // GATNE trains longer than the quick defaults — the paper trains it to
    // convergence on 150 workers; 10 epochs is this simulator's equivalent.
    let gatne_cfg = GatneConfig {
        dim: 48,
        epochs: 10,
        walks_per_vertex: 3,
        window: 3,
        lr: 0.015,
        alpha: 0.5,
        beta: 1.5,
        ..GatneConfig::quick()
    };

    for (dataset, graph, taobao) in
        [("Amazon(sim)", amazon_algo(), false), ("Taobao-small(sim)", taobao_algo(), true)]
    {
        println!("\n## {dataset}\n");
        let split = aligraph_eval::link_prediction_split(&graph, 0.15, 88);
        header(&["method", "ROC-AUC", "PR-AUC", "F1"]);

        let eval = |m: &dyn EmbeddingModel| -> LinkMetrics { evaluate_split(m, &split) };
        // The paper marks most baselines N.A. on Taobao; we mirror that
        // reporting (they are *run* in unit tests, just not in this table).
        let run_all = !taobao;

        row(&cells("DeepWalk", Some(eval(&train_deepwalk(&split.train, &params)))));
        row(&cells(
            "Node2Vec",
            run_all.then(|| eval(&train_node2vec(&split.train, &params, 1.0, 0.5))),
        ));
        row(&cells(
            "LINE",
            run_all.then(|| eval(&train_line(&split.train, &params, LineOrder::Both))),
        ));
        row(&cells("ANRL", run_all.then(|| eval(&train_anrl(&split.train, &params, 0.05)))));
        row(&cells(
            "Metapath2Vec",
            run_all.then(|| {
                let pattern =
                    if taobao { vec![USER, ITEM] } else { vec![aligraph_graph::VertexType(0)] };
                eval(&train_metapath2vec(&split.train, &params, &pattern))
            }),
        ));
        row(&cells(
            "PMNE-n",
            run_all.then(|| eval(&train_pmne(&split.train, &params, PmneVariant::N))),
        ));
        row(&cells(
            "PMNE-r",
            run_all.then(|| eval(&train_pmne(&split.train, &params, PmneVariant::R))),
        ));
        row(&cells(
            "PMNE-c",
            run_all.then(|| eval(&train_pmne(&split.train, &params, PmneVariant::C))),
        ));
        row(&cells("MVE", Some(eval(&train_mve(&split.train, &params, 2.0)))));
        row(&cells("MNE", Some(eval(&train_mne(&split.train, &params)))));
        row(&cells("GATNE", Some(gatne_metrics(&split, &gatne_cfg))));
    }
    println!(
        "\npaper: GATNE tops every column (Amazon 96.25/94.77/91.36; Taobao 84.20/95.04/89.94)."
    );
}
