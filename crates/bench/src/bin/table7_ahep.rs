//! Table 7: effectiveness of AHEP vs HEP (link prediction on Taobao-small).
//!
//! Paper shape: AHEP's quality is close to HEP's (ROC-AUC 75.51 vs 77.77,
//! F1 50.97 vs 57.93) at a fraction of the cost; the other GNN baselines do
//! not finish at production scale at all ("N.A." / "O.O.M" in the paper).

use aligraph::models::hep::{train_hep, HepConfig};
use aligraph::trainer::evaluate_split;
use aligraph_bench::{header, pct, row, taobao_algo};
use aligraph_eval::link_prediction_split;

fn main() {
    println!("# Table 7 — AHEP vs HEP effectiveness\n");
    let graph = taobao_algo();
    let split = link_prediction_split(&graph, 0.15, 77);

    let dim = 64;
    let mut hep_cfg = HepConfig::hep_quick(dim);
    hep_cfg.epochs = 15;
    hep_cfg.batches_per_epoch = (split.train.num_vertices() / hep_cfg.batch_size).max(12);
    let mut ahep_cfg = HepConfig::ahep_quick(dim, 5);
    ahep_cfg.epochs = hep_cfg.epochs;
    ahep_cfg.batches_per_epoch = hep_cfg.batches_per_epoch;
    let hep = train_hep(&split.train, &hep_cfg);
    let ahep = train_hep(&split.train, &ahep_cfg);
    let mh = evaluate_split(&hep, &split);
    let ma = evaluate_split(&ahep, &split);

    header(&["method", "ROC-AUC", "F1-score"]);
    row(&["Structural2Vec".into(), "N.A.".into(), "N.A.".into()]);
    row(&["GCN".into(), "N.A.".into(), "N.A.".into()]);
    row(&["FastGCN".into(), "N.A.".into(), "N.A.".into()]);
    row(&["GraphSAGE".into(), "N.A.".into(), "N.A.".into()]);
    row(&["AS-GCN".into(), "O.O.M.".into(), "O.O.M.".into()]);
    row(&["HEP".into(), pct(mh.roc_auc), pct(mh.f1)]);
    row(&["AHEP".into(), pct(ma.roc_auc), pct(ma.f1)]);
    println!("\n('N.A.'/'O.O.M.' rows mirror the paper: those baselines do not");
    println!(" terminate at full Taobao scale — the system experiments run them");
    println!(" at simulator scale instead.)");
    println!("paper: HEP 77.77/57.93, AHEP 75.51/50.97 — AHEP close to HEP.");
}
