//! Table 9: Mixture GNN vs DAE and β-VAE on the recommendation task,
//! hit recall rate HR@20 / HR@50.
//!
//! Paper shape: Mixture GNN lifts HR by ~2 points over the autoencoder
//! baselines. Protocol: leave-one-out — one interacted item per test user
//! is held out; each model ranks the unseen items; a hit means the held-out
//! item appears in the top-k.

use aligraph::models::mixture::{train_mixture, MixtureConfig};
use aligraph_baselines::{train_recommender, RecommenderConfig};
use aligraph_bench::{f, header, leave_one_out, row, taobao_algo};
use aligraph_graph::ids::well_known::ITEM;
use aligraph_graph::VertexId;

fn hr(hits: &[bool]) -> f64 {
    hits.iter().filter(|&&h| h).count() as f64 / hits.len().max(1) as f64
}

fn main() {
    println!("# Table 9 — Mixture GNN vs DAE / β-VAE (hit recall rate)\n");
    let graph = taobao_algo();
    let (train, truth) = leave_one_out(&graph, 99);
    let items: Vec<VertexId> = train.vertices_of_type(ITEM).to_vec();

    // --- DAE and β-VAE. ---
    let mut dae_cfg = RecommenderConfig::dae_quick();
    dae_cfg.hidden = 48;
    let mut vae_cfg = RecommenderConfig::beta_vae_quick();
    vae_cfg.hidden = 48;
    let dae = train_recommender(&train, &dae_cfg);
    let vae = train_recommender(&train, &vae_cfg);

    // --- Mixture GNN. ---
    let mix_cfg = MixtureConfig { dim: 48, epochs: 2, ..MixtureConfig::quick() };
    let mixture = train_mixture(&train, &mix_cfg);

    let ks = [20usize, 50];
    let mut results: Vec<(&str, Vec<f64>)> = Vec::new();
    for (name, recommend) in [
        (
            "DAE",
            Box::new(|u: VertexId, k: usize| dae.recommend(&train, u, k))
                as Box<dyn Fn(VertexId, usize) -> Vec<VertexId>>,
        ),
        ("beta*-VAE", Box::new(|u, k| vae.recommend(&train, u, k))),
        (
            "Mixture GNN",
            Box::new(|u, k| {
                let seen: Vec<VertexId> = train.out_neighbors(u).iter().map(|n| n.vertex).collect();
                let candidates: Vec<VertexId> =
                    items.iter().copied().filter(|i| !seen.contains(i)).collect();
                let mut ranked = mixture.recommend(u, &candidates);
                ranked.truncate(k);
                ranked
            }),
        ),
    ] {
        let mut hrs = Vec::new();
        for &k in &ks {
            let hits: Vec<bool> =
                truth.iter().map(|&(u, item)| recommend(u, k).contains(&item)).collect();
            hrs.push(hr(&hits));
        }
        results.push((name, hrs));
    }

    header(&["method", "HR Rate@20", "HR Rate@50"]);
    for (name, hrs) in &results {
        row(&[name.to_string(), f(hrs[0], 5), f(hrs[1], 5)]);
    }
    println!(
        "\npaper: DAE 0.126/0.216, beta*-VAE 0.118/0.200, Mixture GNN 0.143/0.237 (~+2 points)."
    );
}
