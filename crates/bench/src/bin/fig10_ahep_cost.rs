//! Figure 10: per-batch running time and memory (working set) of AHEP vs
//! HEP on the Taobao-small simulator.
//!
//! Paper shape: AHEP is 2–3× faster than HEP and uses much less memory,
//! because it samples a handful of neighbors per node type instead of
//! propagating from all of them.

use aligraph::models::hep::{train_hep, HepConfig};
use aligraph_bench::{f, header, row};
use aligraph_graph::generate::TaobaoConfig;

fn main() {
    println!("# Figure 10 — per-batch cost of AHEP vs HEP\n");
    // A dense behavior graph (mean degree ~40): embedding propagation's cost
    // is linear in neighborhood size, which is exactly what AHEP attacks.
    let graph = TaobaoConfig {
        users: 1_500,
        items: 150,
        ui_edges: 45_000,
        ii_edges: 4_000,
        user_attr_fields: 27,
        item_attr_fields: 32,
        attr_profiles: 128,
        reverse_ui_prob: 0.3,
        interest_clusters: 8,
        seed: 0xf16a,
    }
    .generate()
    .expect("valid config");
    let dim = 64;
    let mut hep_cfg = HepConfig::hep_quick(dim);
    hep_cfg.epochs = 2;
    hep_cfg.batches_per_epoch = 8;
    let mut ahep_cfg = HepConfig::ahep_quick(dim, 5);
    ahep_cfg.epochs = 2;
    ahep_cfg.batches_per_epoch = 8;

    let hep = train_hep(&graph, &hep_cfg);
    let ahep = train_hep(&graph, &ahep_cfg);

    header(&["method", "ms / batch", "working set KB / batch"]);
    row(&["HEP".into(), f(hep.cost.ms_per_batch, 2), f(hep.cost.bytes_per_batch / 1024.0, 1)]);
    row(&["AHEP".into(), f(ahep.cost.ms_per_batch, 2), f(ahep.cost.bytes_per_batch / 1024.0, 1)]);
    println!(
        "\nAHEP speedup: {:.1}x   memory reduction: {:.1}x",
        hep.cost.ms_per_batch / ahep.cost.ms_per_batch,
        hep.cost.bytes_per_batch / ahep.cost.bytes_per_batch
    );
    println!("paper: AHEP 2-3x faster, much less memory; several competitors cannot run at all at this scale.");
}
