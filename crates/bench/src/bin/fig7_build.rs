//! Figure 7: graph building time vs. number of workers, both datasets.
//!
//! Paper shape: build time decreases with workers; whole builds finish in
//! minutes even for Taobao-large (vs hours on PowerGraph). Here the
//! simulated datasets are ~20,000× smaller, so absolute times are in the
//! millisecond–second range; the *scaling* with workers is the result.

use aligraph_bench::{f, header, row, taobao_large_bench, taobao_small_bench};
use aligraph_partition::EdgeCutHash;
use aligraph_storage::{CacheStrategy, Cluster, CostModel};
use std::sync::Arc;

fn main() {
    println!("# Figure 7 — graph building time vs number of workers\n");
    let datasets = [
        ("Taobao-small(sim)", Arc::new(taobao_small_bench())),
        ("Taobao-large(sim)", Arc::new(taobao_large_bench())),
    ];
    header(&[
        "dataset",
        "vertices",
        "edges",
        "workers",
        "partition(ms)",
        "slowest shard ingest(ms)",
        "cluster build(ms)",
    ]);
    for (name, graph) in &datasets {
        for workers in [1usize, 2, 4, 8, 16, 32] {
            // Best of 3 runs (build time is allocation-noise sensitive).
            let report = (0..3)
                .map(|_| {
                    Cluster::builder(Arc::clone(graph))
                        .partitioner(&EdgeCutHash)
                        .shards(workers)
                        .cache(CacheStrategy::None)
                        .max_hop(2)
                        .cost_model(CostModel::default())
                        .build()
                        .1
                })
                .min_by_key(|r| r.modeled_parallel_total())
                .expect("three runs");
            row(&[
                name.to_string(),
                graph.num_vertices().to_string(),
                graph.num_edges().to_string(),
                workers.to_string(),
                f(report.partition_time.as_secs_f64() * 1e3, 1),
                f(report.ingest_makespan().as_secs_f64() * 1e3, 2),
                f(report.modeled_parallel_total().as_secs_f64() * 1e3, 2),
            ]);
        }
    }
    println!("\n'cluster build' = partition + slowest shard's ingest (the distributed");
    println!("makespan; on a machine with >= `workers` cores it equals wall time).");
    println!(
        "paper: build time decreases w.r.t. workers; Taobao-large builds in ~5 min on 400 workers."
    );
}
