//! Figure 1: normalized effectiveness summary of the five in-house models
//! vs their best competitors.
//!
//! Paper shape: every in-house model beats its competitor set, with lifts
//! of +4.12% (GATNE) up to +17.19% (Evolving GNN). This binary re-runs the
//! five comparisons at a reduced scale and prints each model's primary
//! metric normalized by its best competitor (1.00 = parity).

use aligraph::models::evolving::{train_evolving, EvolvingConfig};
use aligraph::models::gatne::{train_gatne, GatneConfig};
use aligraph::models::graphsage::{train_graphsage, GraphSageConfig};
use aligraph::models::hierarchical::{train_hierarchical, HierarchicalConfig};
use aligraph::models::mixture::{train_mixture, MixtureConfig};
use aligraph::trainer::evaluate_split;
use aligraph_baselines::{
    train_deepwalk, train_mne, train_recommender, train_tne, EdgeTypeHead, RecommenderConfig,
    SkipGramParams,
};
use aligraph_bench::{dynamic_algo, header, leave_one_out, row, taobao_algo};
use aligraph_eval::{link_prediction_split, micro_f1, LinkMetrics};
use aligraph_graph::ids::well_known::ITEM;
use aligraph_graph::{DynamicGraph, EvolutionKind, VertexId};

fn main() {
    println!("# Figure 1 — normalized effectiveness of the in-house models\n");
    header(&["model", "metric", "best competitor", "AliGraph", "lift"]);

    let graph = taobao_algo();
    let split = link_prediction_split(&graph, 0.15, 11);
    let params = SkipGramParams { dim: 32, ..SkipGramParams::quick() };

    // --- GATNE vs DeepWalk / MNE (F1). ---
    {
        let dw = evaluate_split(&train_deepwalk(&split.train, &params), &split);
        let mne = evaluate_split(&train_mne(&split.train, &params), &split);
        let gatne = train_gatne(
            &split.train,
            &GatneConfig {
                dim: 32,
                epochs: 8,
                walks_per_vertex: 3,
                window: 3,
                lr: 0.015,
                alpha: 0.5,
                beta: 1.5,
                ..GatneConfig::quick()
            },
        );
        let mut per_type = Vec::new();
        for t in split.test_edge_types() {
            let (pos, neg) = split.of_type(t);
            let mut scored = Vec::new();
            for e in pos {
                scored.push((gatne.score_typed(e.src, e.dst, t), true));
            }
            for e in neg {
                scored.push((gatne.score_typed(e.src, e.dst, t), false));
            }
            per_type.push(LinkMetrics::from_scored(&scored));
        }
        let g = LinkMetrics::average(&per_type);
        emit("GATNE", "F1", dw.f1.max(mne.f1), g.f1);
    }

    // --- Mixture GNN vs DAE (leave-one-out HR@50). ---
    {
        let (train, truth) = leave_one_out(&graph, 19);
        let mut dae_cfg = RecommenderConfig::dae_quick();
        dae_cfg.hidden = 48;
        let dae = train_recommender(&train, &dae_cfg);
        let mixture =
            train_mixture(&train, &MixtureConfig { dim: 48, epochs: 2, ..MixtureConfig::quick() });
        let items: Vec<VertexId> = train.vertices_of_type(ITEM).to_vec();
        let mut dae_hits = 0usize;
        let mut mix_hits = 0usize;
        let subset = &truth[..truth.len().min(200)];
        for &(u, item) in subset {
            if dae.recommend(&train, u, 50).contains(&item) {
                dae_hits += 1;
            }
            let seen: Vec<VertexId> = train.out_neighbors(u).iter().map(|n| n.vertex).collect();
            let candidates: Vec<VertexId> =
                items.iter().copied().filter(|i| !seen.contains(i)).collect();
            let ranked = mixture.recommend(u, &candidates);
            if ranked[..50.min(ranked.len())].contains(&item) {
                mix_hits += 1;
            }
        }
        let n = subset.len().max(1) as f64;
        emit("Mixture GNN", "HR@50", dae_hits as f64 / n, mix_hits as f64 / n);
    }

    // --- Hierarchical GNN vs GraphSAGE (ROC-AUC). ---
    {
        let mut sage_cfg = GraphSageConfig::quick();
        sage_cfg.feature_dim = 128;
        sage_cfg.dims = vec![96, 48];
        sage_cfg.lr = 0.01;
        sage_cfg.train.epochs = 6;
        sage_cfg.train.batches_per_epoch = 50;
        let sage = train_graphsage(&split.train, &sage_cfg);
        let hier = train_hierarchical(
            &split.train,
            &HierarchicalConfig {
                dim: 64,
                clusters: 96,
                pairs_per_epoch: 40_000,
                epochs: 12,
                ..HierarchicalConfig::quick()
            },
        );
        emit(
            "Hierarchical GNN",
            "ROC-AUC",
            evaluate_split(&sage.embeddings, &split).roc_auc,
            evaluate_split(&hier, &split).roc_auc,
        );
    }

    // --- Evolving GNN vs TNE (micro-F1, burst edges). ---
    {
        let dynamic = dynamic_algo();
        let t = dynamic.num_snapshots();
        let prefix = DynamicGraph::new(
            dynamic.snapshots()[..t - 1].to_vec(),
            dynamic.deltas()[..t - 1].to_vec(),
        )
        .expect("aligned");
        let last = prefix.snapshot(prefix.num_snapshots() - 1).expect("non-empty");
        let classes = last.num_edge_types() as usize;
        let burst: Vec<_> = dynamic
            .delta(t - 1)
            .expect("in range")
            .added
            .iter()
            .filter(|e| e.kind == EvolutionKind::Burst)
            .collect();
        let tne = train_tne(&prefix, &params, 0.3);
        let head = EdgeTypeHead::fit(last, &tne, 3, 0.1, 5);
        let tne_pred: Vec<usize> = burst.iter().map(|e| head.predict(&tne, e.src, e.dst)).collect();
        let mut ev_cfg = EvolvingConfig::quick();
        ev_cfg.sage.feature_dim = 64;
        ev_cfg.sage.dims = vec![48, 32];
        ev_cfg.sage.lr = 0.01;
        ev_cfg.sage.train.epochs = 3;
        ev_cfg.sage.train.batches_per_epoch = 40;
        ev_cfg.sage.train.batch_size = 32;
        ev_cfg.gamma = 0.6;
        ev_cfg.head_epochs = 8;
        let evolving = train_evolving(&prefix, &ev_cfg);
        let ev_pred: Vec<usize> =
            burst.iter().map(|e| evolving.predict_class(e.src, e.dst)).collect();
        let truth: Vec<usize> = burst.iter().map(|e| e.etype.index()).collect();
        emit(
            "Evolving GNN",
            "micro-F1 (burst)",
            micro_f1(&tne_pred, &truth),
            micro_f1(&ev_pred, &truth),
        );
        let _ = classes;
    }

    // --- Bayesian GNN: see table12_bayesian for the full grid. ---
    println!("\n(Bayesian GNN's lift is reported per-granularity by `table12_bayesian`.)");
    println!("paper: +4.12%..+16.43% (GATNE), +8.73%..+15.58% (Mixture), +13.99% (Hierarchical),");
    println!("       +5.72%..+17.19% (Evolving), +15.48% (Bayesian).");
}

fn emit(model: &str, metric: &str, competitor: f64, ours: f64) {
    row(&[
        model.into(),
        metric.into(),
        format!("{competitor:.4}"),
        format!("{ours:.4}"),
        format!("{:+.2}%", (ours / competitor.max(1e-9) - 1.0) * 100.0),
    ]);
}
