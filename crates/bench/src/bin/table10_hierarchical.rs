//! Table 10: Hierarchical GNN vs GraphSAGE on link prediction.
//!
//! Paper shape: the hierarchical model clearly beats flat GraphSAGE
//! (ROC-AUC 87.34 vs 82.89, PR-AUC 54.87 vs 44.45, F1 53.20 vs 45.76).

use aligraph::models::graphsage::{train_graphsage, GraphSageConfig};
use aligraph::models::hierarchical::{train_hierarchical, HierarchicalConfig};
use aligraph::trainer::evaluate_split;
use aligraph_bench::{header, pct, row, taobao_algo};
use aligraph_eval::link_prediction_split;

fn main() {
    println!("# Table 10 — Hierarchical GNN vs GraphSAGE\n");
    let graph = taobao_algo();
    let split = link_prediction_split(&graph, 0.15, 1010);

    let mut sage_cfg = GraphSageConfig::quick();
    sage_cfg.feature_dim = 128;
    sage_cfg.dims = vec![96, 48];
    sage_cfg.fanouts = vec![10, 5];
    sage_cfg.lr = 0.01;
    sage_cfg.train.epochs = 6;
    sage_cfg.train.batches_per_epoch = 50;
    sage_cfg.train.batch_size = 32;
    let sage = train_graphsage(&split.train, &sage_cfg);
    let ms = evaluate_split(&sage.embeddings, &split);

    let hier_cfg = HierarchicalConfig {
        dim: 64,
        levels: 2,
        clusters: 96,
        pairs_per_epoch: 40_000,
        epochs: 12,
        lr: 0.05,
        ..HierarchicalConfig::quick()
    };
    let hier = train_hierarchical(&split.train, &hier_cfg);
    let mh = evaluate_split(&hier, &split);

    header(&["method", "ROC-AUC", "PR-AUC", "F1-score"]);
    row(&["GraphSAGE".into(), pct(ms.roc_auc), pct(ms.pr_auc), pct(ms.f1)]);
    row(&["Hierarchical GNN".into(), pct(mh.roc_auc), pct(mh.pr_auc), pct(mh.f1)]);
    println!("\npaper: GraphSAGE 82.89/44.45/45.76 vs Hierarchical 87.34/54.87/53.20.");
}
