//! Figure 8: percentage of cached vertices vs. importance threshold.
//!
//! Paper shape: the cache rate drops drastically until the threshold
//! reaches ~0.2 and flattens after — because `Imp^(k)` is power-law
//! distributed (Theorem 2), only a small head of vertices has high
//! importance. The paper picks τ ≈ 0.2, caching ~20% of vertices.

use aligraph_bench::{header, pct, row, taobao_small_bench};
use aligraph_graph::{DegreeTable, ImportanceTable};

fn main() {
    println!("# Figure 8 — cache rate vs importance threshold (k = 2)\n");
    let graph = taobao_small_bench();
    let degrees = DegreeTable::compute(&graph, 2);
    let imp = ImportanceTable::from_degrees(&degrees);

    header(&["threshold", "cached vertices (k=2)", "cached vertices (k=1)"]);
    let mut t = 0.05f64;
    while t <= 0.451 {
        row(&[format!("{t:.2}"), pct(imp.cache_rate(2, t)), pct(imp.cache_rate(1, t))]);
        t += 0.05;
    }
    println!("\npaper: drops drastically below 0.2, then flat; τ=0.2 caches ~20% of vertices.");
}
