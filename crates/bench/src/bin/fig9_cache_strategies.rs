//! Figure 9: access cost vs. percentage of cached vertices, comparing the
//! importance-based strategy against random caching and LRU.
//!
//! Paper shape: importance-based caching saves ~40–50% time over random and
//! ~50–60% over LRU (which pays replacement churn). We replay an identical
//! 2-hop neighborhood access workload against clusters that differ only in
//! cache policy, and report the modelled access cost per operation.

use aligraph_bench::{f, header, row, taobao_small_bench};
use aligraph_partition::{EdgeCutHash, WorkerId};
use aligraph_sampling::{NeighborhoodSampler, UniformNeighborhood};
use aligraph_storage::{CacheStrategy, Cluster, CostModel};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::sync::Arc;

fn workload_cost(cluster: &Cluster, seed: u64) -> f64 {
    // 2-hop neighborhood expansions from worker 0, batch after batch —
    // the access pattern of the NEIGHBORHOOD sampler.
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = Arc::clone(cluster.graph());
    let n = graph.num_vertices() as u32;
    let view = aligraph_sampling::neighborhood::ClusterView { cluster, from: WorkerId(0) };
    for _ in 0..64 {
        let seeds: Vec<aligraph_graph::VertexId> =
            (0..128).map(|_| aligraph_graph::VertexId(rng.gen_range(0..n))).collect();
        UniformNeighborhood.sample_context(&view, &seeds, None, &[8, 4], &mut rng);
    }
    let snap = cluster.stats().snapshot();
    snap.virtual_ns as f64 / snap.total().max(1) as f64
}

fn main() {
    println!("# Figure 9 — access cost vs fraction of cached vertices\n");
    let graph = Arc::new(taobao_small_bench());
    header(&[
        "cached fraction",
        "importance (ns/access)",
        "random (ns/access)",
        "LRU (ns/access)",
        "importance saves vs random",
        "vs LRU",
    ]);

    for fraction in [0.0f64, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let strategies = [
            CacheStrategy::ImportanceBudget { k: 2, fraction },
            CacheStrategy::Random { fraction, seed: 7 },
            CacheStrategy::Lru { fraction },
        ];
        let mut costs = Vec::new();
        for s in &strategies {
            let (cluster, _) = Cluster::builder(Arc::clone(&graph))
                .partitioner(&EdgeCutHash)
                .shards(8)
                .cache(s.clone())
                .max_hop(2)
                .cost_model(CostModel::default())
                .build();
            costs.push(workload_cost(&cluster, 42));
        }
        let save = |a: f64, b: f64| format!("{:.0}%", (1.0 - a / b) * 100.0);
        row(&[
            format!("{fraction:.1}"),
            f(costs[0], 0),
            f(costs[1], 0),
            f(costs[2], 0),
            save(costs[0], costs[1]),
            save(costs[0], costs[2]),
        ]);
    }
    println!("\npaper: importance-based caching saves ~40-50% vs random and ~50-60% vs LRU.");
}
