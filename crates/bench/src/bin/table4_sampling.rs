//! Table 4: time of the three sampler classes, batch size 512, ~20% cache.
//!
//! Paper shape: TRAVERSE a few ms, NEIGHBORHOOD tens of ms, NEGATIVE a few
//! ms, and times grow only slowly from Taobao-small to Taobao-large.

use aligraph_bench::{f, header, row, taobao_large_bench, taobao_small_bench};
use aligraph_partition::{EdgeCutHash, WorkerId};
use aligraph_sampling::neighborhood::ClusterView;
use aligraph_sampling::{
    NegativeSampler, NeighborhoodSampler, TraverseSampler, UniformNeighborhood, UniformTraverse,
    UnigramNegative,
};
use aligraph_storage::{CacheStrategy, Cluster, CostModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

const BATCH: usize = 512;
const ROUNDS: u32 = 20;

fn main() {
    println!("# Table 4 — sampler time (batch = 512, ~20% importance cache)\n");
    header(&[
        "dataset",
        "workers",
        "cache rate",
        "TRAVERSE (ms)",
        "NEIGHBORHOOD (ms)",
        "NEGATIVE (ms)",
    ]);

    for (name, graph, workers) in [
        ("Taobao-small(sim)", Arc::new(taobao_small_bench()), 8usize),
        ("Taobao-large(sim)", Arc::new(taobao_large_bench()), 16),
    ] {
        let (cluster, _) = Cluster::builder(Arc::clone(&graph))
            .partitioner(&EdgeCutHash)
            .shards(workers)
            .cache(CacheStrategy::ImportanceBudget { k: 2, fraction: 0.2 })
            .max_hop(2)
            .cost_model(CostModel::default())
            .build();
        let mut rng = StdRng::seed_from_u64(4);
        let negative = UnigramNegative::new(&graph, None, 0.75);
        let etype = aligraph_graph::EdgeType(0);

        // TRAVERSE: a batch of edges.
        let t0 = Instant::now();
        for _ in 0..ROUNDS {
            let edges = UniformTraverse.sample_edges(&graph, etype, BATCH, &mut rng);
            std::hint::black_box(edges);
        }
        let traverse_ms = t0.elapsed().as_secs_f64() * 1e3 / ROUNDS as f64;

        // NEIGHBORHOOD: 2-hop context [10, 5] through the cluster.
        let view = ClusterView { cluster: &cluster, from: WorkerId(0) };
        let seeds = UniformTraverse.sample_vertices(&graph, None, BATCH, &mut rng);
        let t0 = Instant::now();
        for _ in 0..ROUNDS {
            let ctx = UniformNeighborhood.sample_context(&view, &seeds, None, &[10, 5], &mut rng);
            std::hint::black_box(ctx.context_size());
        }
        let neighborhood_ms = t0.elapsed().as_secs_f64() * 1e3 / ROUNDS as f64;

        // NEGATIVE: 10 negatives per seed.
        let t0 = Instant::now();
        for _ in 0..ROUNDS {
            for &v in &seeds {
                std::hint::black_box(negative.sample(&graph, &[v], 10, &mut rng));
            }
        }
        let negative_ms = t0.elapsed().as_secs_f64() * 1e3 / ROUNDS as f64;

        row(&[
            name.to_string(),
            workers.to_string(),
            format!("{:.2}%", cluster.cached_fraction() * 100.0),
            f(traverse_ms, 2),
            f(neighborhood_ms, 2),
            f(negative_ms, 2),
        ]);
    }
    println!("\npaper: TRAVERSE 2.6ms, NEIGHBORHOOD 45-53ms, NEGATIVE 6.2-7.5ms; slow growth with graph size.");
}
