//! Empirical validation of Theorems 1 and 2: on a power-law graph, the
//! k-hop in/out neighbor counts and the importance values `Imp^(k)` are
//! power-law distributed too — which is why caching a small head of
//! important vertices suffices (the premise behind Figures 8 and 9).

use aligraph_bench::{f, header, pct, row};
use aligraph_graph::generate::barabasi_albert;
use aligraph_graph::powerlaw::{fit_exponent, head_mass};
use aligraph_graph::{DegreeTable, ImportanceTable};

fn main() {
    println!("# Theorems 1 & 2 — power-law propagation to k-hop degrees and importance\n");
    let graph = barabasi_albert(20_000, 4, 0x7e0u64).expect("valid config");
    let degrees = DegreeTable::compute(&graph, 2);
    let imp = ImportanceTable::from_degrees(&degrees);

    header(&["quantity", "fitted exponent α", "tail size", "top-20% mass share"]);
    let quantities: Vec<(&str, Vec<f64>)> = vec![
        ("D_i^(1)", degrees.d_in[0].iter().map(|&x| x as f64).collect()),
        ("D_o^(1)", degrees.d_out[0].iter().map(|&x| x as f64).collect()),
        ("D_i^(2)", degrees.d_in[1].iter().map(|&x| x as f64).collect()),
        ("D_o^(2)", degrees.d_out[1].iter().map(|&x| x as f64).collect()),
        ("Imp^(1)", imp.imp[0].clone()),
        ("Imp^(2)", imp.imp[1].clone()),
    ];
    for (name, samples) in quantities {
        let fit = fit_exponent(&samples, 2.0, 50);
        let mass = head_mass(&samples, 0.2);
        row(&[
            name.into(),
            fit.map(|ft| f(ft.alpha, 2)).unwrap_or_else(|| "-".into()),
            fit.map(|ft| ft.tail_len.to_string()).unwrap_or_else(|| "-".into()),
            pct(mass),
        ]);
    }
    println!("\nTheorem 1: k-hop degrees inherit the power law. Theorem 2: so does Imp^(k) —");
    println!("the top 20% of vertices hold the bulk of the importance mass, so caching a");
    println!("small head removes most remote traffic.");
}
