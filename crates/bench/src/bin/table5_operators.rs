//! Table 5: AGGREGATE/COMBINE time per mini-batch with and without the
//! intermediate-embedding materialization cache (§3.4).
//!
//! Paper shape: an order-of-magnitude speedup (12.9× on Taobao-small,
//! 13.7× on Taobao-large). Here the memoized Algorithm 1 tape vs. the
//! recompute-everything tape plays that role: sampled neighborhoods of a
//! mini-batch overlap heavily, so sharing `ĥ^(k)_v` eliminates most of the
//! operator work.

use aligraph::{EpisodeTape, GnnEncoder};
use aligraph_bench::{f, header, row, taobao_large_bench, taobao_small_bench};
use aligraph_graph::{Featurizer, VertexId};
use aligraph_sampling::UniformNeighborhood;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Instant;

const BATCH: usize = 256;
const ROUNDS: u32 = 10;

fn run(graph: &aligraph_graph::AttributedHeterogeneousGraph, memoized: bool) -> (f64, u64, u64) {
    let features = Featurizer::new(32).matrix(graph);
    // Three hops: the recomputation the cache removes grows with kmax, and
    // kmax in [2, 3] is the practical GNN range.
    let encoder = GnnEncoder::sage(32, &[64, 64, 32], &[10, 8, 5], 0.01, 1);
    let mut rng = StdRng::seed_from_u64(7);
    let n = graph.num_vertices() as u32;
    let mut total = 0.0;
    let mut hits = 0;
    let mut computes = 0;
    for _ in 0..ROUNDS {
        let seeds: Vec<VertexId> = (0..BATCH).map(|_| VertexId(rng.gen_range(0..n))).collect();
        let mut tape =
            if memoized { EpisodeTape::new() } else { EpisodeTape::without_memoization() };
        let t0 = Instant::now();
        for &v in &seeds {
            let idx =
                encoder.forward(graph, &features, &UniformNeighborhood, v, &mut tape, &mut rng);
            std::hint::black_box(tape.output(idx)[0]);
        }
        total += t0.elapsed().as_secs_f64() * 1e3;
        let (h, m) = tape.stats();
        hits += h;
        computes += m;
    }
    (total / ROUNDS as f64, hits, computes)
}

fn main() {
    println!("# Table 5 — operator time with/without the materialization cache\n");
    header(&[
        "dataset",
        "W/O cache (ms/batch)",
        "with cache (ms/batch)",
        "speedup",
        "cache hit rate",
    ]);
    for (name, graph) in
        [("Taobao-small(sim)", taobao_small_bench()), ("Taobao-large(sim)", taobao_large_bench())]
    {
        let (without_ms, _, _) = run(&graph, false);
        let (with_ms, hits, computes) = run(&graph, true);
        row(&[
            name.to_string(),
            f(without_ms, 2),
            f(with_ms, 2),
            format!("{:.1}x", without_ms / with_ms),
            format!("{:.1}%", 100.0 * hits as f64 / (hits + computes).max(1) as f64),
        ]);
    }
    println!("\npaper: 7.33ms -> 0.57ms (12.9x) on small, 17.21ms -> 1.26ms (13.7x) on large.");
}
