//! Table 11: Evolving GNN vs TNE and GraphSAGE on multi-class link
//! prediction over a dynamic graph, split into *normal evolution* and
//! *burst change* edges.
//!
//! Paper shape: Evolving GNN wins both regimes (+4 micro-F1 / +3.6 macro-F1
//! with burst change); static competitors degrade most on bursts. Protocol:
//! models see snapshots `0..T-1`; the edges added at step `T-1` (labelled
//! normal vs burst by the generator) are classified into their edge type.

use aligraph::models::evolving::{train_evolving, EvolvingConfig};
use aligraph::models::graphsage::{train_graphsage, GraphSageConfig};
use aligraph_baselines::{train_tne, EdgeTypeHead, SkipGramParams};
use aligraph_bench::{dynamic_algo, header, pct, row};
use aligraph_eval::{macro_f1, micro_f1};
use aligraph_graph::{DynamicGraph, EdgeEvent, EvolutionKind, SnapshotDelta};

fn scores(pred: &[usize], truth: &[usize], classes: usize) -> (f64, f64) {
    (micro_f1(pred, truth), macro_f1(pred, truth, classes))
}

fn main() {
    println!("# Table 11 — Evolving GNN vs competitors (dynamic multi-class link prediction)\n");
    let full = dynamic_algo();
    let t = full.num_snapshots();

    // Training prefix: snapshots 0..T-1.
    let prefix =
        DynamicGraph::new(full.snapshots()[..t - 1].to_vec(), full.deltas()[..t - 1].to_vec())
            .expect("prefix is aligned");
    let last_train = prefix.snapshot(prefix.num_snapshots() - 1).expect("non-empty");
    let classes = last_train.num_edge_types() as usize;

    // Test events: the final step's additions, split by evolution kind.
    let final_delta: &SnapshotDelta = full.delta(t - 1).expect("in range");
    let normal: Vec<&EdgeEvent> =
        final_delta.added.iter().filter(|e| e.kind == EvolutionKind::Normal).collect();
    let burst: Vec<&EdgeEvent> =
        final_delta.added.iter().filter(|e| e.kind == EvolutionKind::Burst).collect();
    println!(
        "test edges: {} normal, {} burst; {} edge types\n",
        normal.len(),
        burst.len(),
        classes
    );

    header(&["method", "normal micro-F1", "normal macro-F1", "burst micro-F1", "burst macro-F1"]);

    let walk_params = SkipGramParams { dim: 48, epochs: 2, ..SkipGramParams::quick() };

    // --- TNE. ---
    let tne = train_tne(&prefix, &walk_params, 0.3);
    let tne_head = EdgeTypeHead::fit(last_train, &tne, 4, 0.1, 1);
    report("TNE", &tne, &tne_head, &normal, &burst, classes);

    // --- GraphSAGE (static, final training snapshot only). ---
    let sage = train_graphsage(last_train, &GraphSageConfig::quick());
    let sage_head = EdgeTypeHead::fit(last_train, &sage.embeddings, 4, 0.1, 2);
    report("GraphSAGE", &sage.embeddings, &sage_head, &normal, &burst, classes);

    // --- Evolving GNN (its own recurrent state + head). ---
    let mut ev_cfg = EvolvingConfig::quick();
    ev_cfg.sage.feature_dim = 64;
    ev_cfg.sage.dims = vec![48, 32];
    ev_cfg.sage.lr = 0.01;
    ev_cfg.sage.train.epochs = 3;
    ev_cfg.sage.train.batches_per_epoch = 40;
    ev_cfg.sage.train.batch_size = 32;
    ev_cfg.gamma = 0.6;
    ev_cfg.head_epochs = 8;
    let evolving = train_evolving(&prefix, &ev_cfg);
    let run = |events: &[&EdgeEvent]| -> (f64, f64) {
        let pred: Vec<usize> =
            events.iter().map(|e| evolving.predict_class(e.src, e.dst)).collect();
        let truth: Vec<usize> = events.iter().map(|e| e.etype.index()).collect();
        scores(&pred, &truth, classes)
    };
    let (nmi, nma) = run(&normal);
    let (bmi, bma) = run(&burst);
    row(&["Evolving GNN".into(), pct(nmi), pct(nma), pct(bmi), pct(bma)]);

    println!("\n('DeepWalk' and 'DANE' are N.A. in the paper's table: they cannot");
    println!(" handle dynamic graphs at scale.)");
    println!("paper: Evolving GNN 81.4/77.7 normal, 73.3/70.8 burst — ~+4 over TNE, ~+10 over GraphSAGE.");
}

fn report<M: aligraph::EmbeddingModel>(
    name: &str,
    model: &M,
    head: &EdgeTypeHead,
    normal: &[&EdgeEvent],
    burst: &[&EdgeEvent],
    classes: usize,
) {
    let run = |events: &[&EdgeEvent]| -> (f64, f64) {
        let pred: Vec<usize> = events.iter().map(|e| head.predict(model, e.src, e.dst)).collect();
        let truth: Vec<usize> = events.iter().map(|e| e.etype.index()).collect();
        scores(&pred, &truth, classes)
    };
    let (nmi, nma) = run(normal);
    let (bmi, bma) = run(burst);
    row(&[name.into(), pct(nmi), pct(nma), pct(bmi), pct(bma)]);
}
