//! Differential oracle suite for the cold storage tier (ISSUE 10).
//!
//! The tier's headline claim: resident-budget pressure changes *where* rows
//! are served from — never *what* they contain. Every test here runs the
//! same seeded workload against the all-hot oracle (infinite budget) and
//! against tight budgets (50%, 10% of the all-hot footprint), and demands
//! bit-identical results: k-hop context trees, adjacency and feature
//! gathers, training epoch losses, dense parameters, trained features. The
//! deliberately broken eviction mode ([`EvictionMode::DropDirty`]) must
//! visibly diverge — proof the oracle would catch a real writeback bug.

use aligraph_graph::generate::TaobaoConfig;
use aligraph_graph::{AttributedHeterogeneousGraph, FeatureMatrix, Featurizer, VertexId};
use aligraph_partition::{EdgeCutHash, Partitioner, WorkerId};
use aligraph_runtime::{DistOutcome, DistTrainer, EncoderSpec, RuntimeConfig};
use aligraph_sampling::neighborhood::ClusterView;
use aligraph_sampling::{NeighborhoodSampler, UniformNeighborhood};
use aligraph_storage::tier::TierBacking;
use aligraph_storage::{CacheStrategy, Cluster, CostModel, EvictionMode, TierConfig, TieredStore};
use aligraph_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const DIM: usize = 16;

fn graph() -> Arc<AttributedHeterogeneousGraph> {
    Arc::new(TaobaoConfig::tiny().generate().expect("valid config"))
}

fn tiered_cluster(
    g: &Arc<AttributedHeterogeneousGraph>,
    budget: Option<u64>,
) -> (Cluster, Arc<Registry>) {
    let registry = Arc::new(Registry::new());
    let (cluster, _) = Cluster::builder(Arc::clone(g))
        .partitioner(&EdgeCutHash)
        .shards(4)
        .cache(CacheStrategy::None)
        .cost_model(CostModel::default())
        .registry(&registry)
        .tier_config(TierConfig::with_budget(budget))
        .build();
    (cluster, registry)
}

/// The decoded footprint of "everything hot": build with an infinite budget,
/// touch every row, read the gauge.
fn all_hot_bytes(g: &Arc<AttributedHeterogeneousGraph>) -> u64 {
    let (cluster, _) = tiered_cluster(g, None);
    let tier = cluster.tier().expect("tiered build").clone();
    for v in g.vertices() {
        tier.read_adjacency(v);
    }
    tier.resident_bytes()
}

fn fnv_mix(h: &mut u64, x: u64) {
    *h ^= x;
    *h = h.wrapping_mul(0x0000_0100_0000_01b3);
}

/// Order-sensitive fingerprint of every adjacency row and feature row read
/// back through the tier — the bit-exactness witness.
fn gather_fingerprint(tier: &TieredStore, g: &AttributedHeterogeneousGraph) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in g.vertices() {
        let (nbrs, cdf, _) = tier.read_adjacency(v);
        fnv_mix(&mut h, nbrs.len() as u64);
        for n in nbrs.iter() {
            fnv_mix(&mut h, u64::from(n.vertex.0));
            fnv_mix(&mut h, u64::from(n.weight.to_bits()));
            fnv_mix(&mut h, n.edge.0);
        }
        for c in cdf.iter() {
            fnv_mix(&mut h, u64::from(c.to_bits()));
        }
        if let Some((row, _)) = tier.feature_row(v) {
            for f in row.iter() {
                fnv_mix(&mut h, u64::from(f.to_bits()));
            }
        }
    }
    h
}

/// Differential oracle 1 — gathers and k-hop samples: the same seed under
/// infinite, 50% and 10% resident budgets produces bit-identical context
/// trees and row contents, while the tight budgets actually serve from the
/// cold tier (cold ops > 0) and never burst their byte cap.
#[test]
fn gathers_and_khop_samples_bit_identical_across_budgets() {
    let g = graph();
    let features = Featurizer::new(DIM).matrix(&g);
    let full = all_hot_bytes(&g);

    // Oracle: the infinite-budget tier.
    let (oracle_cluster, _) = tiered_cluster(&g, None);
    let oracle_tier = oracle_cluster.tier().unwrap().clone();
    oracle_tier.attach_features(&features).unwrap();
    let oracle_fp = gather_fingerprint(&oracle_tier, &g);
    let mut oracle_rng = StdRng::seed_from_u64(42);
    let seeds: Vec<VertexId> = g.vertices().take(32).collect();
    let oracle_ctx = UniformNeighborhood.sample_context(
        &ClusterView { cluster: &oracle_cluster, from: WorkerId(0) },
        &seeds,
        None,
        &[4, 3],
        &mut oracle_rng,
    );

    for fraction in [2u64, 10] {
        let budget = (full / fraction).max(1);
        let (cluster, registry) = tiered_cluster(&g, Some(budget));
        let tier = cluster.tier().unwrap().clone();
        tier.attach_features(&features).unwrap();

        // Same-seed k-hop samples through the cluster view (this also
        // drives the frontier prefetch pipeline).
        let mut rng = StdRng::seed_from_u64(42);
        let ctx = UniformNeighborhood.sample_context(
            &ClusterView { cluster: &cluster, from: WorkerId(0) },
            &seeds,
            None,
            &[4, 3],
            &mut rng,
        );
        assert_eq!(ctx, oracle_ctx, "budget 1/{fraction}: context tree diverged");

        // Full-graph gather, bit-compared via fingerprint.
        assert_eq!(
            gather_fingerprint(&tier, &g),
            oracle_fp,
            "budget 1/{fraction}: gather fingerprint diverged from all-hot"
        );

        // The budget held and the cold tier actually served reads.
        assert!(
            tier.peak_resident_bytes() <= budget,
            "budget 1/{fraction}: peak {} > budget {budget}",
            tier.peak_resident_bytes()
        );
        let snap = registry.snapshot();
        assert!(
            snap.counter("tier.reads", &[("src", "cold")])
                + snap.counter("tier.reads", &[("src", "prefetch")])
                > 0,
            "budget 1/{fraction}: nothing was ever served cold — vacuous test"
        );
        if fraction == 10 {
            // At 50% the sampled hubs may all stay hot; at 10% the frontier
            // must spill to the cold class (direct or prefetch-overlapped).
            assert!(
                snap.counter("storage.access", &[("tier", "cold")]) > 0,
                "budget 1/{fraction}: sampling never hit the cold AccessKind"
            );
        }
    }
}

fn spec() -> EncoderSpec {
    EncoderSpec { dim_in: DIM, dims: vec![16, 8], fanouts: vec![3, 2], lr: 0.05, seed: 7 }
}

fn train(cluster: &Cluster, features: &FeatureMatrix) -> DistOutcome {
    let cfg = RuntimeConfig {
        workers: 4,
        epochs: 2,
        batches_per_epoch: 5,
        batch_size: 16,
        negatives: 2,
        staleness: 0,
        seed: 11,
        sparse_lr: 0.05,
        ..RuntimeConfig::default()
    };
    DistTrainer::new(cluster, features, spec(), cfg).unwrap().train().unwrap()
}

/// Differential oracle 2 — training: epoch fingerprints (losses), dense
/// parameters and trained features are bit-identical whether the cluster
/// trains all-hot or under a 10% resident budget, and the tight run really
/// does read through the cold tier.
#[test]
fn training_epoch_fingerprints_identical_across_budgets() {
    let g = graph();
    let features = Featurizer::new(DIM).matrix(&g);
    let full = all_hot_bytes(&g);

    let (oracle_cluster, _) = tiered_cluster(&g, None);
    let oracle = train(&oracle_cluster, &features);

    for fraction in [2u64, 10] {
        let (cluster, _) = tiered_cluster(&g, Some((full / fraction).max(1)));
        let out = train(&cluster, &features);
        let losses: Vec<u64> = out.report.epoch_losses.iter().map(|x| x.to_bits()).collect();
        let oracle_losses: Vec<u64> =
            oracle.report.epoch_losses.iter().map(|x| x.to_bits()).collect();
        assert_eq!(losses, oracle_losses, "budget 1/{fraction}: epoch losses diverged");
        assert_eq!(
            out.encoder.dense_param_vec().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            oracle.encoder.dense_param_vec().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "budget 1/{fraction}: dense parameters diverged"
        );
        assert_eq!(
            out.features.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            oracle.features.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "budget 1/{fraction}: trained features diverged"
        );
        if fraction == 10 {
            assert!(
                out.report.adjacency.cold > 0,
                "budget 1/{fraction}: training never touched the cold tier — vacuous"
            );
        }
        assert_eq!(oracle.report.adjacency.cold, 0, "all-hot oracle must never read cold");
    }
}

/// Applies a deterministic feature-update workload through a tier: read,
/// modify, write back, with adjacency sweeps in between to force demotions.
/// Returns the fingerprint of every row read back at the end.
fn feature_update_workload(tier: &TieredStore, g: &AttributedHeterogeneousGraph) -> u64 {
    for (i, v) in g.vertices().enumerate() {
        if i % 3 == 0 {
            let (row, _) = tier.feature_row(v).expect("features attached");
            let updated: Vec<f32> = row.iter().map(|f| f * 0.5 + i as f32).collect();
            tier.write_row(v, &updated);
        }
        if i % 7 == 0 {
            // Demotion pressure: walk a stretch of adjacency rows.
            for u in g.vertices().skip(i).take(16) {
                tier.read_adjacency(u);
            }
        }
    }
    tier.flush_writeback().unwrap();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in g.vertices() {
        let (row, _) = tier.feature_row(v).expect("features attached");
        for f in row.iter() {
            fnv_mix(&mut h, u64::from(f.to_bits()));
        }
    }
    h
}

fn build_tier(
    g: &Arc<AttributedHeterogeneousGraph>,
    features: &FeatureMatrix,
    budget: Option<u64>,
    eviction: EvictionMode,
) -> Arc<TieredStore> {
    let part = EdgeCutHash.partition(g, 2);
    let owners: Vec<u32> = g.vertices().map(|v| part.owner_of(v).0).collect();
    let cfg = TierConfig { resident_budget: budget, backing: TierBacking::Memory, eviction };
    let tier = TieredStore::build(
        Arc::clone(g),
        &owners,
        2,
        cfg,
        CostModel::default(),
        &Registry::disabled(),
    )
    .unwrap();
    tier.attach_features(features).unwrap();
    tier
}

/// Teeth — deliberately broken eviction must diverge: the same update
/// workload under `Writeback` is bit-identical to the all-hot oracle, and
/// under `DropDirty` (demote discards dirty rows) it is not.
#[test]
fn broken_eviction_without_writeback_diverges() {
    let g = graph();
    let features = Featurizer::new(8).matrix(&g);
    let full = all_hot_bytes(&g);
    let tight = (full / 10).max(1);

    let oracle =
        feature_update_workload(&build_tier(&g, &features, None, EvictionMode::Writeback), &g);
    let writeback = feature_update_workload(
        &build_tier(&g, &features, Some(tight), EvictionMode::Writeback),
        &g,
    );
    assert_eq!(
        writeback, oracle,
        "writeback eviction under a 10% budget must be bit-identical to all-hot"
    );

    let dropped = feature_update_workload(
        &build_tier(&g, &features, Some(tight), EvictionMode::DropDirty),
        &g,
    );
    assert_ne!(
        dropped, oracle,
        "evict-without-writeback must lose updates — otherwise these assertions have no teeth"
    );
}

/// The migration path stays correct on a tiered cluster: a shard split with
/// live migration serves every vertex bit-exactly afterwards, from the new
/// residency.
#[test]
fn tiered_cluster_survives_shard_split() {
    use aligraph_chaos::{FaultPlan, FaultPlane, RecoveryMode, RetryPolicy};
    use aligraph_storage::RebalanceOp;

    let g = graph();
    let full = all_hot_bytes(&g);
    let (cluster, _) = tiered_cluster(&g, Some((full / 4).max(1)));
    let plane = FaultPlane::new(FaultPlan::default());
    cluster
        .rebalance(
            RebalanceOp::Split { shard: 0 },
            &plane,
            &RetryPolicy::default(),
            RecoveryMode::Full,
        )
        .unwrap();
    let tier = cluster.tier().unwrap();
    // Every vertex still resident somewhere, rows still bit-exact.
    let shards = cluster.num_shards();
    for v in g.vertices() {
        assert!(
            (0..shards).any(|s| tier.is_resident(s, v.0)),
            "vertex {v:?} lost residency in the split"
        );
        let (nbrs, _, _) = tier.read_adjacency(v);
        assert_eq!(&nbrs[..], g.out_neighbors(v));
    }
}
