//! Integration tests for the closed-loop production simulation: the whole
//! serve → log → update → incremental-train → hot-swap loop is a pure
//! function of its seeds, and ingest chaos costs only freshness ticks —
//! never model divergence.

use aligraph_chaos::{FaultPlan, RetryPolicy};
use aligraph_loopsim::{run_loop, LoopConfig};
use aligraph_streaming::IngestFaultConfig;
use aligraph_telemetry::Registry;
use std::path::PathBuf;
use std::sync::Arc;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("algr-loop-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(name: &str) -> LoopConfig {
    let mut cfg = LoopConfig::small(42, tmp_dir(name));
    cfg.cycles = 3;
    cfg
}

/// Tentpole headline — determinism: two runs with identical seeds produce
/// bit-identical model fingerprints, freshness trails, tick counts, and
/// telemetry rollups.
#[test]
fn closed_loop_is_a_pure_function_of_the_seed() {
    let a = run_loop(&cfg("det-a"), &Arc::new(Registry::new())).expect("clean loop");
    let b = run_loop(&cfg("det-b"), &Arc::new(Registry::new())).expect("clean loop");

    assert_eq!(a.fingerprint, b.fingerprint, "final model fingerprints must be bit-identical");
    assert_eq!(a.final_version, b.final_version);
    assert_eq!(a.ticks, b.ticks);
    assert_eq!(a.freshness, b.freshness, "freshness trails must be bit-identical");
    assert_eq!(a.report, b.report, "telemetry rollups must be bit-identical");

    assert_eq!(a.final_version, 4, "bootstrap + 3 cycles publish versions 1..=4");
    assert!(!a.freshness.is_empty(), "every cycle contributes freshness samples");
    assert!(a.report.rows_repulled > 0, "delta training re-pulls touched rows");
    assert_eq!(a.report.cycles, 3);
    assert_eq!(a.report.swaps, 4);
}

/// Tentpole headline — fault isolation: a 20%-drop chaos plane on the
/// ingest channel converges to the *identical* final model; the damage is
/// confined to freshness (retry backoff surfaces as extra virtual ticks).
#[test]
fn ingest_chaos_costs_freshness_ticks_never_divergence() {
    let clean = run_loop(&cfg("chaos-base"), &Arc::new(Registry::new())).expect("clean loop");

    let mut faulted_cfg = cfg("chaos-drop");
    faulted_cfg.fault = Some(IngestFaultConfig {
        plan: FaultPlan::with_seed(7, 0.2),
        policy: RetryPolicy::default(),
    });
    let faulted = run_loop(&faulted_cfg, &Arc::new(Registry::new())).expect("faulted loop");

    assert_eq!(
        faulted.fingerprint, clean.fingerprint,
        "chaos on the ingest channel must never change what the loop converges to"
    );
    assert_eq!(faulted.final_version, clean.final_version);
    assert!(
        faulted.ticks >= clean.ticks,
        "retries only ever add virtual time: {} < {}",
        faulted.ticks,
        clean.ticks
    );
    let clean_total: u64 = clean.freshness.iter().sum();
    let faulted_total: u64 = faulted.freshness.iter().sum();
    assert!(
        faulted_total >= clean_total,
        "chaos may only degrade freshness: {faulted_total} < {clean_total}"
    );
    // Same interactions were served either way — the fault plane sits
    // strictly between the hub and the shard stores.
    assert_eq!(faulted.freshness.len(), clean.freshness.len());
    assert_eq!(faulted.report.interactions, clean.report.interactions);

    // And the chaos run is itself deterministic.
    let mut again_cfg = cfg("chaos-again");
    again_cfg.fault = faulted_cfg.fault.clone();
    let again = run_loop(&again_cfg, &Arc::new(Registry::new())).expect("faulted loop");
    assert_eq!(again.fingerprint, faulted.fingerprint);
    assert_eq!(again.freshness, faulted.freshness);
}

/// Hot-swap accounting: versions are strictly monotonic, the live version
/// matches the cycle count, and freshness is bounded below by the
/// theoretical minimum (an interaction can never be fresher than the
/// publish that covered it).
#[test]
fn swap_and_freshness_accounting_hold() {
    let out = run_loop(&cfg("acct"), &Arc::new(Registry::new())).expect("clean loop");
    assert_eq!(out.report.swap_epoch, out.final_version);
    assert_eq!(out.ticks, out.report.ticks);
    for &age in &out.freshness {
        // Minimum: the deploy tick (1) right after an interaction born on
        // the last pre-drain tick. Everything else only adds age.
        assert!(age >= 1, "freshness below the publish barrier: {age}");
        assert!(age <= out.ticks, "freshness beyond the run span: {age}");
    }
}
