//! Integration tests for the distributed training runtime: sequential
//! parity, checkpoint round-trips, corruption handling, fault recovery, and
//! modelled scaling.

use aligraph_suite::core::{train_unsupervised, GnnEncoder, TrainConfig};
use aligraph_suite::graph::{
    AttributedHeterogeneousGraph, FeatureMatrix, Featurizer, TaobaoConfig,
};
use aligraph_suite::partition::EdgeCutHash;
use aligraph_suite::runtime::{
    latest_valid_checkpoint, CheckpointConfig, DistTrainer, EncoderSpec, FaultPlan, RuntimeConfig,
    RuntimeError,
};
use aligraph_suite::sampling::UniformNeighborhood;
use aligraph_suite::storage::{CacheStrategy, Cluster, CostModel};
use std::path::PathBuf;
use std::sync::Arc;

const DIM: usize = 16;

fn setup(workers: usize) -> (Cluster, FeatureMatrix) {
    let graph = Arc::new(TaobaoConfig::tiny().generate().expect("valid config"));
    let features = Featurizer::new(DIM).matrix(&graph);
    let (cluster, _) = Cluster::builder(graph)
        .partitioner(&EdgeCutHash)
        .shards(workers)
        .cache(CacheStrategy::None)
        .max_hop(2)
        .cost_model(CostModel::default())
        .build();
    (cluster, features)
}

fn spec() -> EncoderSpec {
    EncoderSpec { dim_in: DIM, dims: vec![16, 8], fanouts: vec![3, 2], lr: 0.05, seed: 7 }
}

fn base_cfg(workers: usize) -> RuntimeConfig {
    RuntimeConfig {
        workers,
        epochs: 3,
        batches_per_epoch: 8,
        batch_size: 16,
        negatives: 2,
        staleness: 0,
        seed: 11,
        sparse_lr: 0.05,
        ..RuntimeConfig::default()
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("algr-rt-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn fbits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Satellite 1 — convergence parity: one worker with staleness 0 and frozen
/// features must reproduce the sequential trainer's loss trajectory
/// bit-for-bit, and end with bit-identical dense parameters.
#[test]
fn single_worker_matches_sequential_trainer_bitwise() {
    let (cluster, features) = setup(1);
    let graph: &AttributedHeterogeneousGraph = cluster.graph();

    let mut seq_encoder = GnnEncoder::sage(DIM, &[16, 8], &[3, 2], 0.05, 7);
    let seq = train_unsupervised(
        &mut seq_encoder,
        graph,
        &features,
        &UniformNeighborhood,
        &TrainConfig {
            epochs: 3,
            batches_per_epoch: 8,
            batch_size: 16,
            negatives: 2,
            patience: None,
            min_delta: 1e-4,
            seed: 11,
        },
    );

    let cfg = RuntimeConfig { sparse_lr: 0.0, ..base_cfg(1) };
    let trainer = DistTrainer::new(&cluster, &features, spec(), cfg).unwrap();
    let dist = trainer.train().unwrap();

    assert_eq!(
        bits(&dist.report.epoch_losses),
        bits(&seq.epoch_losses),
        "distributed {:?} vs sequential {:?}",
        dist.report.epoch_losses,
        seq.epoch_losses
    );
    assert_eq!(fbits(&dist.encoder.dense_param_vec()), fbits(&seq_encoder.dense_param_vec()));
    // Frozen sparse features stay at their initial values.
    assert_eq!(dist.features.as_slice(), features.as_slice());
}

/// Satellite 3 — checkpoint round-trip at an epoch boundary: train 1 epoch,
/// checkpoint, restore, continue — bit-identical losses, dense parameters,
/// and trained features versus the uninterrupted run.
#[test]
fn epoch_checkpoint_roundtrip_is_bit_exact() {
    let (cluster, features) = setup(2);
    let dir = tmp_dir("epoch");

    let full = DistTrainer::new(&cluster, &features, spec(), base_cfg(2)).unwrap();
    let full = full.train().unwrap();

    let mut cfg_a = base_cfg(2);
    cfg_a.epochs = 1;
    cfg_a.checkpoint = Some(CheckpointConfig { dir: dir.clone(), every_steps: 0 });
    let first = DistTrainer::new(&cluster, &features, spec(), cfg_a).unwrap();
    let first = first.train().unwrap();
    assert_eq!(first.report.checkpoints_written, 1);

    let resumed = DistTrainer::new(&cluster, &features, spec(), base_cfg(2)).unwrap();
    let resumed = resumed.train_from(&dir.join("ckpt-0000000008.bin")).unwrap();

    assert_eq!(bits(&resumed.report.epoch_losses), bits(&full.report.epoch_losses));
    assert_eq!(fbits(&resumed.encoder.dense_param_vec()), fbits(&full.encoder.dense_param_vec()));
    assert_eq!(resumed.features.as_slice(), full.features.as_slice());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite 3 — mid-epoch restore: a checkpoint cut between epoch
/// boundaries resumes with the partial-epoch loss accumulators intact.
#[test]
fn mid_epoch_checkpoint_roundtrip_is_bit_exact() {
    let (cluster, features) = setup(2);
    let dir = tmp_dir("mid");

    let full = DistTrainer::new(&cluster, &features, spec(), base_cfg(2)).unwrap();
    let full = full.train().unwrap();

    let mut cfg = base_cfg(2);
    cfg.checkpoint = Some(CheckpointConfig { dir: dir.clone(), every_steps: 5 });
    let interrupted = DistTrainer::new(&cluster, &features, spec(), cfg).unwrap();
    let interrupted = interrupted.train().unwrap();
    // Steps 5, 10, 15, 20 are mid-epoch cuts; 8, 16, 24 are epoch boundaries.
    assert!(interrupted.report.checkpoints_written >= 6);

    let resumed = DistTrainer::new(&cluster, &features, spec(), base_cfg(2)).unwrap();
    let resumed = resumed.train_from(&dir.join("ckpt-0000000005.bin")).unwrap();

    assert_eq!(bits(&resumed.report.epoch_losses), bits(&full.report.epoch_losses));
    assert_eq!(fbits(&resumed.encoder.dense_param_vec()), fbits(&full.encoder.dense_param_vec()));
    assert_eq!(resumed.features.as_slice(), full.features.as_slice());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite 3 — corrupted or mismatched checkpoints are clean errors, never
/// panics.
#[test]
fn corrupt_and_mismatched_checkpoints_error_cleanly() {
    let (cluster, features) = setup(2);
    let dir = tmp_dir("corrupt");

    let mut cfg = base_cfg(2);
    cfg.epochs = 1;
    cfg.checkpoint = Some(CheckpointConfig { dir: dir.clone(), every_steps: 0 });
    DistTrainer::new(&cluster, &features, spec(), cfg).unwrap().train().unwrap();
    let path = dir.join("ckpt-0000000008.bin");
    let bytes = std::fs::read(&path).unwrap();

    let trainer = DistTrainer::new(&cluster, &features, spec(), base_cfg(2)).unwrap();

    // Truncation.
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    assert!(matches!(trainer.train_from(&path), Err(RuntimeError::Checkpoint(_))));
    // Bit flip.
    let mut bad = bytes.clone();
    bad[bytes.len() / 3] ^= 0xff;
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(trainer.train_from(&path), Err(RuntimeError::Checkpoint(_))));
    // Structurally different run (other seed) must refuse the checkpoint.
    std::fs::write(&path, &bytes).unwrap();
    let other_cfg = RuntimeConfig { seed: 999, ..base_cfg(2) };
    let other = DistTrainer::new(&cluster, &features, spec(), other_cfg).unwrap();
    let err = match other.train_from(&path) {
        Err(e) => e,
        Ok(_) => panic!("fingerprint mismatch must be rejected"),
    };
    assert!(err.to_string().contains("fingerprint"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Tentpole acceptance — fault injection: killing a worker mid-run restores
/// from the latest checkpoint and reaches the same final loss as the
/// uninterrupted run (the ISSUE asks for 5%; the deterministic restore is in
/// fact bit-exact).
#[test]
fn killed_worker_recovers_from_checkpoint() {
    let (cluster, features) = setup(2);
    let dir = tmp_dir("fault");

    let clean = DistTrainer::new(&cluster, &features, spec(), base_cfg(2)).unwrap();
    let clean = clean.train().unwrap();

    let mut cfg = base_cfg(2);
    cfg.checkpoint = Some(CheckpointConfig { dir: dir.clone(), every_steps: 0 });
    // Kill worker 1 two steps into epoch 2 (last checkpoint is step 8).
    cfg.fault = Some(FaultPlan { worker: 1, at_step: 10 });
    let faulted = DistTrainer::new(&cluster, &features, spec(), cfg).unwrap();
    let faulted = faulted.train().unwrap();

    assert_eq!(faulted.report.recoveries, 1);
    let rel = (faulted.report.final_loss() - clean.report.final_loss()).abs()
        / clean.report.final_loss().abs();
    assert!(rel < 0.05, "final loss off by {rel}");
    assert_eq!(bits(&faulted.report.epoch_losses), bits(&clean.report.epoch_losses));
    assert_eq!(faulted.features.as_slice(), clean.features.as_slice());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A fault with no checkpointing configured restarts from scratch and still
/// finishes with the right answer.
#[test]
fn fault_without_checkpoints_restarts_from_scratch() {
    let (cluster, features) = setup(2);
    let clean = DistTrainer::new(&cluster, &features, spec(), base_cfg(2)).unwrap();
    let clean = clean.train().unwrap();

    let mut cfg = base_cfg(2);
    cfg.fault = Some(FaultPlan { worker: 0, at_step: 3 });
    let faulted = DistTrainer::new(&cluster, &features, spec(), cfg).unwrap();
    let faulted = faulted.train().unwrap();
    assert_eq!(faulted.report.recoveries, 1);
    assert_eq!(bits(&faulted.report.epoch_losses), bits(&clean.report.epoch_losses));
}

/// Tentpole acceptance — weak-scaling throughput: 4 workers must show at
/// least 2x the modelled edges/s of 1 worker (each worker trains its own
/// shard; comm is metered through the cost model).
#[test]
fn four_workers_double_modeled_throughput() {
    let (cluster1, features1) = setup(1);
    let mut cfg = base_cfg(1);
    cfg.epochs = 1;
    let one = DistTrainer::new(&cluster1, &features1, spec(), cfg).unwrap().train().unwrap();

    let (cluster4, features4) = setup(4);
    let mut cfg = base_cfg(4);
    cfg.epochs = 1;
    cfg.staleness = 2;
    let four = DistTrainer::new(&cluster4, &features4, spec(), cfg).unwrap().train().unwrap();

    assert_eq!(four.report.edges_total, 4 * one.report.edges_total);
    let speedup = four.report.modeled_edges_per_sec() / one.report.modeled_edges_per_sec();
    assert!(
        speedup >= 2.0,
        "modeled speedup {speedup:.2} < 2.0\n1w: {}\n4w: {}",
        one.report,
        four.report
    );
    // The staleness histogram has entries beyond age 0 and remote traffic
    // was actually metered.
    assert_eq!(four.report.staleness_hist.len(), 3);
    assert!(four.report.staleness_hist.iter().skip(1).sum::<u64>() > 0);
    assert!(four.report.ps.remote_ops > 0);
    assert!(four.report.ps.remote_bytes > 0);
}

/// PR 7 satellite — warm-start beyond the staleness-0 boundary. Earlier the
/// restore seeded every replica with the materialized server state at the
/// cut while `last_drain` pointed before it, so with `staleness > 0` and a
/// live sparse learning rate a resumed run computed on fresher features
/// than the uninterrupted one. Checkpoint cuts now refresh every worker's
/// replica to the same materialized state a restore rebuilds; this sweep
/// pins bit-exact resumes across staleness bounds and both cut kinds
/// (mid-epoch and epoch boundary).
#[test]
fn warm_start_is_bit_exact_across_staleness_bounds() {
    for staleness in [0u64, 1, 2] {
        for resume_step in ["ckpt-0000000005.bin", "ckpt-0000000008.bin"] {
            let (cluster, features) = setup(2);
            let dir = tmp_dir(&format!("warm-{staleness}-{resume_step}"));

            let mut cfg = base_cfg(2);
            cfg.staleness = staleness;
            cfg.checkpoint = Some(CheckpointConfig { dir: dir.clone(), every_steps: 5 });
            let full = DistTrainer::new(&cluster, &features, spec(), cfg.clone()).unwrap();
            let full = full.train().unwrap();

            let resumed = DistTrainer::new(&cluster, &features, spec(), cfg).unwrap();
            let resumed = resumed.train_from(&dir.join(resume_step)).unwrap();

            assert_eq!(
                bits(&resumed.report.epoch_losses),
                bits(&full.report.epoch_losses),
                "losses diverged at staleness {staleness} resuming from {resume_step}",
            );
            assert_eq!(
                fbits(&resumed.encoder.dense_param_vec()),
                fbits(&full.encoder.dense_param_vec()),
                "dense params diverged at staleness {staleness} resuming from {resume_step}",
            );
            assert_eq!(
                resumed.features.as_slice(),
                full.features.as_slice(),
                "features diverged at staleness {staleness} resuming from {resume_step}",
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// PR 7 satellite — a warm-started delta epoch over an empty update set is
/// a no-op: resuming the latest valid checkpoint without extending
/// `epochs` runs zero steps and hands back the checkpointed model with an
/// unchanged fingerprint (bit-identical dense parameters and features).
#[test]
fn empty_delta_warm_start_is_a_noop() {
    for staleness in [0u64, 2] {
        let (cluster, features) = setup(2);
        let dir = tmp_dir(&format!("noop-{staleness}"));

        let mut cfg = base_cfg(2);
        cfg.staleness = staleness;
        cfg.checkpoint = Some(CheckpointConfig { dir: dir.clone(), every_steps: 0 });
        let trained = DistTrainer::new(&cluster, &features, spec(), cfg.clone()).unwrap();
        let trained = trained.train().unwrap();

        let (path, ckpt) = latest_valid_checkpoint(&dir).unwrap().expect("checkpoints written");
        assert_eq!(ckpt.global_step, 24, "latest cut is the final epoch boundary: {path:?}");

        let resumed = DistTrainer::new(&cluster, &features, spec(), cfg).unwrap();
        let resumed = resumed.train_from_checkpoint(ckpt).unwrap();

        assert_eq!(bits(&resumed.report.epoch_losses), bits(&trained.report.epoch_losses));
        assert_eq!(
            fbits(&resumed.encoder.dense_param_vec()),
            fbits(&trained.encoder.dense_param_vec()),
            "zero-step resume must not move the model (staleness {staleness})",
        );
        assert_eq!(resumed.features.as_slice(), trained.features.as_slice());
        // Counters restore from the checkpoint; a zero-step resume adds
        // nothing on top of the trained run's totals.
        assert_eq!(resumed.report.edges_total, trained.report.edges_total);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
