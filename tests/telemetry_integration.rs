//! Telemetry integration: one registry spanning storage, sampling, and
//! runtime, and the determinism contract — telemetry observes a run, it
//! never perturbs one.

use aligraph_graph::generate::TaobaoConfig;
use aligraph_graph::{AttributedHeterogeneousGraph, Featurizer};
use aligraph_partition::EdgeCutHash;
use aligraph_runtime::{DistOutcome, DistTrainer, EncoderSpec, RuntimeConfig};
use aligraph_storage::{CacheStrategy, Cluster, CostModel};
use aligraph_telemetry::{Registry, Report};
use std::sync::Arc;

fn graph() -> Arc<AttributedHeterogeneousGraph> {
    let mut cfg = TaobaoConfig::small_sim().scaled(0.004);
    cfg.seed = 7;
    Arc::new(cfg.generate().unwrap())
}

fn train(registry: &Arc<Registry>) -> DistOutcome {
    let graph = graph();
    let dim = 8;
    let (cluster, _) = Cluster::builder(Arc::clone(&graph))
        .partitioner(&EdgeCutHash)
        .shards(2)
        .cache(CacheStrategy::Lru { fraction: 0.1 })
        .max_hop(2)
        .cost_model(CostModel::default())
        .registry(registry)
        .build();
    let features = Featurizer::new(dim).matrix(&graph);
    let spec =
        EncoderSpec { dim_in: dim, dims: vec![dim, 4], fanouts: vec![4, 2], lr: 0.05, seed: 3 };
    let cfg = RuntimeConfig {
        workers: 2,
        epochs: 2,
        batches_per_epoch: 4,
        batch_size: 8,
        negatives: 2,
        staleness: 1,
        seed: 11,
        sparse_lr: 0.05,
        ..RuntimeConfig::default()
    };
    DistTrainer::new(&cluster, &features, spec, cfg)
        .unwrap()
        .with_registry(Arc::clone(registry))
        .train()
        .unwrap()
}

/// The determinism regression: a run with a live registry must produce the
/// bit-identical loss trajectory, parameters, and features of a run with
/// telemetry disabled. Metrics are recorded but never branched on.
#[test]
fn telemetry_does_not_perturb_training() {
    let silent = train(&Arc::new(Registry::disabled()));
    let observed = train(&Arc::new(Registry::new()));

    let bits = |ls: &[f64]| ls.iter().map(|l| l.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&silent.report.epoch_losses),
        bits(&observed.report.epoch_losses),
        "loss trajectory must be bit-identical with telemetry on vs off"
    );
    assert_eq!(silent.encoder.dense_param_vec(), observed.encoder.dense_param_vec());
    assert_eq!(silent.features.as_slice(), observed.features.as_slice());
    assert_eq!(silent.report.staleness_hist, observed.report.staleness_hist);
    assert_eq!(silent.report.ps, observed.report.ps);
}

/// The unified-registry acceptance check: one train-bench-style run lands
/// storage, sampling, and runtime series in a single snapshot.
#[test]
fn one_snapshot_spans_storage_sampling_and_runtime() {
    let registry = Arc::new(Registry::new());
    let outcome = train(&registry);
    let snap = registry.snapshot();

    assert!(snap.has_prefix("storage.access"), "storage tiers missing");
    assert!(snap.has_prefix("storage.neighbor_cache"), "cache events missing");
    assert!(snap.counter_total("sampling.draws") > 0, "sampler draws missing");
    assert!(snap.counter_total("runtime.ps.ops") > 0, "ps ops missing");
    assert!(snap.histogram("runtime.staleness", &[]).count > 0, "staleness missing");
    assert!(snap.histogram("runtime.allreduce_ns", &[]).count > 0, "allreduce missing");

    // The registry and the report agree on the PS traffic.
    let remote_ops = snap.counter("runtime.ps.ops", &[("tier", "remote")]);
    assert_eq!(remote_ops, outcome.report.ps.remote_ops);

    // Both export surfaces carry the cross-layer series.
    let text = snap.render_text();
    let json = snap.to_json().to_string();
    for name in ["storage.access", "sampling.draws", "runtime.ps.ops"] {
        assert!(text.contains(name), "render_text missing {name}");
        assert!(json.contains(name), "to_json missing {name}");
    }
}
