//! Elastic-membership suite: mid-training topology changes attacked
//! end-to-end (ISSUE 8).
//!
//! The headline property: a shard split (or split-then-merge roundtrip)
//! applied at an epoch boundary — with the moved subgraph streamed over the
//! chaos plane's migration channel — converges **bit-exactly** to the same
//! run on a static topology, at any drop rate below 1. A rebalance moves
//! physical residency and comm accounting, never the math. The broken
//! recovery variant ([`RecoveryMode::NoRetry`]) exists to prove the
//! assertion has teeth: losing migrated subgraphs must visibly diverge.

use aligraph_suite::chaos::RecoveryMode;
use aligraph_suite::graph::{FeatureMatrix, Featurizer, TaobaoConfig};
use aligraph_suite::partition::EdgeCutHash;
use aligraph_suite::runtime::{
    ChaosConfig, DistOutcome, DistTrainer, EncoderSpec, RebalancePlan, RuntimeConfig,
};
use aligraph_suite::storage::{CacheStrategy, Cluster, CostModel, RebalanceOp};
use std::sync::Arc;

const DIM: usize = 16;

fn setup(workers: usize) -> (Cluster, FeatureMatrix) {
    let graph = Arc::new(TaobaoConfig::tiny().generate().expect("valid config"));
    let features = Featurizer::new(DIM).matrix(&graph);
    let (cluster, _) = Cluster::builder(graph)
        .partitioner(&EdgeCutHash)
        .shards(workers)
        .cache(CacheStrategy::None)
        .max_hop(2)
        .cost_model(CostModel::default())
        .build();
    (cluster, features)
}

fn spec() -> EncoderSpec {
    EncoderSpec { dim_in: DIM, dims: vec![16, 8], fanouts: vec![3, 2], lr: 0.05, seed: 7 }
}

fn base_cfg(workers: usize) -> RuntimeConfig {
    RuntimeConfig {
        workers,
        epochs: 3,
        batches_per_epoch: 6,
        batch_size: 16,
        negatives: 2,
        staleness: 0,
        seed: 11,
        sparse_lr: 0.05,
        ..RuntimeConfig::default()
    }
}

fn split_after(epoch: usize) -> RebalancePlan {
    RebalancePlan {
        after_epoch: epoch,
        op: RebalanceOp::Split { shard: 0 },
        mode: RecoveryMode::Full,
    }
}

fn train(cfg: RuntimeConfig, cluster: &Cluster, features: &FeatureMatrix) -> DistOutcome {
    DistTrainer::new(cluster, features, spec(), cfg).unwrap().train().unwrap()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn fbits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// The tentpole headline: a split after epoch 1 — clean plane, 5% drop,
/// and 20% drop on every channel including the migration stream — all
/// converge bit-exactly to the static-topology run (losses, dense
/// parameters, trained features), and the drops really happened.
#[test]
fn mid_training_split_is_bit_exact_under_chaos() {
    let (cluster, features) = setup(2);
    let fixed = train(base_cfg(2), &cluster, &features);
    assert_eq!(fixed.report.rebalances, 0, "static run must not rebalance");

    let mut faulted_runs = 0u64;
    for chaos in [None, Some((3u64, 0.05)), Some((3u64, 0.2)), Some((9u64, 0.2))] {
        let cfg = RuntimeConfig {
            rebalance: vec![split_after(1)],
            chaos: chaos.map(|(seed, rate)| ChaosConfig::with_seed(seed, rate)),
            ..base_cfg(2)
        };
        let elastic = train(cfg, &cluster, &features);
        assert_eq!(elastic.report.rebalances, 1, "the split must have applied");
        let tag = match chaos {
            Some((seed, rate)) => format!("chaos seed {seed} drop {rate}"),
            None => "clean plane".to_string(),
        };
        assert_eq!(
            bits(&elastic.report.epoch_losses),
            bits(&fixed.report.epoch_losses),
            "{tag}: losses diverged from the static topology"
        );
        assert_eq!(
            fbits(&elastic.encoder.dense_param_vec()),
            fbits(&fixed.encoder.dense_param_vec()),
            "{tag}: dense parameters diverged from the static topology"
        );
        assert_eq!(
            elastic.features.as_slice(),
            fixed.features.as_slice(),
            "{tag}: trained feature rows diverged from the static topology"
        );
        if chaos.is_some() {
            assert!(elastic.report.faults_injected > 0, "{tag}: no faults fired");
            faulted_runs += 1;
        }
    }
    assert_eq!(faulted_runs, 3, "every armed plane must have injected");
}

/// Split-then-merge roundtrip: shard 0 splits after epoch 1, and the new
/// shard (id = old shard count) merges back after epoch 2 — both
/// migrations live, both bit-exact against the run that never moved.
#[test]
fn split_then_merge_roundtrip_is_bit_exact() {
    let (cluster, features) = setup(2);
    let fixed = train(base_cfg(2), &cluster, &features);

    let cfg = RuntimeConfig {
        rebalance: vec![
            split_after(1),
            RebalancePlan {
                after_epoch: 2,
                op: RebalanceOp::Merge { from: 2, into: 0 },
                mode: RecoveryMode::Full,
            },
        ],
        chaos: Some(ChaosConfig::with_seed(5, 0.2)),
        ..base_cfg(2)
    };
    let round = train(cfg, &cluster, &features);
    assert_eq!(round.report.rebalances, 2, "split and merge must both apply");
    assert_eq!(bits(&round.report.epoch_losses), bits(&fixed.report.epoch_losses));
    assert_eq!(fbits(&round.encoder.dense_param_vec()), fbits(&fixed.encoder.dense_param_vec()));
}

/// Teeth: with retry deliberately broken on the migration stream, a lost
/// subgraph record still flips its cutover, so the moved vertices serve
/// empty state — some fault seed must visibly diverge from the static run.
/// If no seed in the sweep diverges, the headline assertions above are
/// vacuous and this test fails.
#[test]
fn broken_migration_recovery_diverges_for_some_seed() {
    let (cluster, features) = setup(2);
    let fixed = train(base_cfg(2), &cluster, &features);

    let diverged = (1..=10u64).any(|seed| {
        let cfg = RuntimeConfig {
            rebalance: vec![RebalancePlan {
                after_epoch: 1,
                op: RebalanceOp::Split { shard: 0 },
                mode: RecoveryMode::NoRetry,
            }],
            chaos: Some(ChaosConfig::with_seed(seed, 0.2)),
            ..base_cfg(2)
        };
        match DistTrainer::new(&cluster, &features, spec(), cfg).unwrap().train() {
            // Losing migrated state may also surface as a hard error —
            // that counts as detection too.
            Err(_) => true,
            Ok(out) => {
                bits(&out.report.epoch_losses) != bits(&fixed.report.epoch_losses)
                    || fbits(&out.encoder.dense_param_vec())
                        != fbits(&fixed.encoder.dense_param_vec())
            }
        }
    });
    assert!(
        diverged,
        "NoRetry on the migration stream never diverged: the bit-exact assertions have no teeth"
    );
}

/// A rebalance scheduled past the last epoch is rejected up front, not
/// silently skipped.
#[test]
fn out_of_range_rebalance_is_rejected() {
    let (cluster, features) = setup(2);
    let cfg = RuntimeConfig { rebalance: vec![split_after(99)], ..base_cfg(2) };
    let err = DistTrainer::new(&cluster, &features, spec(), cfg)
        .and_then(|t| t.train())
        .expect_err("after_epoch beyond the run must fail");
    assert!(err.to_string().contains("out of range"), "unexpected error: {err}");
}
