//! Integration tests for the online serving layer: freshness under dynamic
//! updates, bounded-queue backpressure, and batching dedup — the three
//! behaviours the serving design guarantees.

use aligraph_suite::core::GnnEncoder;
use aligraph_suite::graph::dynamic::{EdgeEvent, EvolutionKind, SnapshotDelta};
use aligraph_suite::graph::features::Featurizer;
use aligraph_suite::graph::generate::TaobaoConfig;
use aligraph_suite::graph::{Neighbor, VertexId};
use aligraph_suite::sampling::{NeighborhoodSampler, TopKNeighborhood};
use aligraph_suite::serving::{ServeError, ServingConfig, ServingService};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tiny_graph() -> Arc<aligraph_suite::graph::AttributedHeterogeneousGraph> {
    Arc::new(TaobaoConfig::tiny().generate().expect("valid config"))
}

/// After a delta lands, every served embedding must equal a from-scratch
/// recompute on the post-delta graph — the cache may never serve the
/// pre-delta value. TopK sampling makes the forward deterministic, so
/// "fresh" is a strict equality, not a tolerance.
#[test]
fn no_stale_embeddings_after_delta() {
    let graph = tiny_graph();
    let config =
        ServingConfig { max_batch_delay: Duration::from_micros(200), ..Default::default() };
    let service = ServingService::start(Arc::clone(&graph), TopKNeighborhood, config);
    let cfg = service.config().clone();

    // Pick a vertex with fewer out-edges than the top-level fan-out, so the
    // deterministic TopK draw uses its whole row and the edge swap below is
    // guaranteed to change the sampled neighborhood. Warm its cache entry.
    let top_fanout = *cfg.fanouts.last().unwrap();
    let v = (0..graph.num_vertices() as u32)
        .map(VertexId)
        .find(|&v| {
            let d = graph.out_neighbors(v).len();
            d >= 1 && d < top_fanout
        })
        .expect("some vertex has a small out-row");
    let before = service.embedding(v).unwrap();

    // Remove v's first out-edge and add a fresh one — both touch v's row.
    let first: Neighbor = graph.out_neighbors(v)[0];
    let n = graph.num_vertices() as u32;
    let target =
        (1..n).map(|off| VertexId((v.0 + off) % n)).find(|&t| t != v && t != first.vertex).unwrap();
    let delta = SnapshotDelta {
        added: vec![EdgeEvent {
            src: v,
            dst: target,
            etype: first.etype,
            kind: EvolutionKind::Normal,
        }],
        removed: vec![EdgeEvent {
            src: v,
            dst: first.vertex,
            etype: first.etype,
            kind: EvolutionKind::Normal,
        }],
    };
    let dropped = service.apply_delta(&delta);
    assert!(dropped >= 1, "v's cached embedding must be invalidated");

    // Served value after the delta == offline recompute on the new graph.
    let served = service.embedding(v).unwrap();
    let overlay = service.overlay_snapshot();
    let encoder = GnnEncoder::sage(cfg.feature_dim, &cfg.dims, &cfg.fanouts, 0.01, cfg.seed);
    let features = Featurizer::new(cfg.feature_dim).matrix(&graph);
    let mut rng = StdRng::seed_from_u64(1); // unused under TopK
    let fresh = encoder.embed_batch(&*overlay, &features, &TopKNeighborhood, &[v], &mut rng);
    assert_eq!(served.as_slice(), fresh.row(0), "served embedding must be the fresh recompute");

    // And the neighborhood change actually flowed through (the edge swap
    // changed v's 1-hop row, so the embedding moved).
    assert_ne!(served.as_slice(), before.as_slice(), "delta changed v's row");
}

/// A sampler that sleeps before delegating — pins the worker long enough to
/// fill its admission queue deterministically.
#[derive(Clone)]
struct SlowSampler(Duration);

impl NeighborhoodSampler for SlowSampler {
    fn sample_one<R: Rng>(
        &self,
        target: VertexId,
        nbrs: &[Neighbor],
        count: usize,
        rng: &mut R,
    ) -> Vec<VertexId> {
        std::thread::sleep(self.0);
        TopKNeighborhood.sample_one(target, nbrs, count, rng)
    }
}

/// When the owning worker's bounded queue is full, admission fails *now*
/// with a retry hint — it does not block the caller behind the queue.
#[test]
fn overflowing_the_queue_rejects_with_retry_hint_without_blocking() {
    let graph = tiny_graph();
    let config = ServingConfig {
        workers: 1,
        queue_capacity: 1,
        max_batch: 1,
        cache_capacity: 0, // every request must run the (slow) forward
        ..Default::default()
    };
    let service =
        ServingService::start(Arc::clone(&graph), SlowSampler(Duration::from_millis(150)), config);
    let service = &service;

    std::thread::scope(|scope| {
        // First request: picked up by the worker, now stuck in SlowSampler.
        scope.spawn(move || {
            let _ = service.embedding(VertexId(0));
        });
        std::thread::sleep(Duration::from_millis(40));
        // Second request: sits in the queue (capacity 1).
        scope.spawn(move || {
            let _ = service.embedding(VertexId(1));
        });
        std::thread::sleep(Duration::from_millis(40));

        // Third request: queue full — must reject immediately.
        let start = Instant::now();
        let result = service.embedding(VertexId(2));
        let waited = start.elapsed();
        match result {
            Err(ServeError::Overloaded { queue_capacity, retry_after_ms }) => {
                assert_eq!(queue_capacity, 1);
                assert!(retry_after_ms >= 1, "hint must be actionable");
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert!(
            waited < Duration::from_millis(100),
            "rejection must not block behind the queue (waited {waited:?})"
        );
        let report = service.report(start.elapsed());
        assert!(report.rejected >= 1);
    });
}

/// Concurrent clients hammering a small popular set: batching + the
/// embedding cache must answer the load with strictly fewer encoder
/// forwards (k-hop sampler walks) than requests.
#[test]
fn batched_path_issues_fewer_sampler_walks_than_requests() {
    let graph = tiny_graph();
    let config = ServingConfig {
        workers: 2,
        max_batch: 16,
        max_batch_delay: Duration::from_millis(1),
        ..Default::default()
    };
    let service = ServingService::start(Arc::clone(&graph), TopKNeighborhood, config);
    let service = &service;

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 100;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(c as u64);
                for _ in 0..PER_CLIENT {
                    // Popularity-skewed traffic over 16 hot vertices.
                    let v = VertexId(rng.gen_range(0..16u32));
                    loop {
                        match service.embedding(v) {
                            Ok(_) => break,
                            Err(ServeError::Overloaded { retry_after_ms, .. }) => {
                                std::thread::sleep(Duration::from_millis(retry_after_ms.min(2)));
                            }
                            Err(e) => panic!("unexpected serve error: {e}"),
                        }
                    }
                }
            });
        }
    });

    let report = service.report(Duration::from_secs(1));
    assert_eq!(report.completed, (CLIENTS * PER_CLIENT) as u64);
    assert!(
        report.forwards < report.completed,
        "dedup evidence: {} forwards for {} requests",
        report.forwards,
        report.completed
    );
    // 16 distinct vertices, one forward each is the floor.
    assert!(report.forwards >= 16);
    assert!(report.cache.hits + report.tape_hits > 0, "sharing must have happened");
}
