//! Property-based tests (proptest) on the platform's core invariants.

use aligraph_suite::chaos::{RetryPolicy, Sequencer, MAX_BACKOFF_TICKS};
use aligraph_suite::eval::{best_f1, macro_f1, micro_f1, pr_auc, roc_auc};
use aligraph_suite::graph::generate::{erdos_renyi, TaobaoConfig};
use aligraph_suite::graph::Featurizer;
use aligraph_suite::graph::{AttrValue, AttrVector, EdgeType, GraphBuilder, VertexId, VertexType};
use aligraph_suite::partition::{EdgeCutHash, Partitioner, StreamingLdg, VertexCutGreedy};
use aligraph_suite::sampling::{AliasTable, IncrementalAlias};
use aligraph_suite::storage::LruCache;
use aligraph_suite::streaming::{EpochManager, EpochView, ShardView};
use aligraph_suite::tensor::Matrix;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Builder invariant: degrees sum to the number of directed records and
    /// in-degrees mirror out-degrees.
    #[test]
    fn graph_degree_conservation(edges in prop::collection::vec((0u32..40, 0u32..40, 0u8..3), 1..120)) {
        let mut b = GraphBuilder::directed();
        b.add_vertices(VertexType(0), 40);
        for &(s, d, t) in &edges {
            b.add_edge(VertexId(s), VertexId(d), EdgeType(t), 1.0).unwrap();
        }
        let g = b.build();
        let out_sum: usize = g.vertices().map(|v| g.out_degree(v)).sum();
        let in_sum: usize = g.vertices().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, edges.len());
        prop_assert_eq!(in_sum, edges.len());
        prop_assert_eq!(g.num_edge_records(), edges.len());
        // Typed sub-slices partition the adjacency.
        for v in g.vertices() {
            let total: usize = (0..g.num_edge_types())
                .map(|t| g.out_neighbors_typed(v, EdgeType(t)).len())
                .sum();
            prop_assert_eq!(total, g.out_degree(v));
        }
    }

    /// Attribute interning: identical records always map to the same id;
    /// resolution is exact.
    #[test]
    fn attr_interning_roundtrip(vals in prop::collection::vec(-1000i64..1000, 0..6)) {
        let mut b = GraphBuilder::directed();
        let rec = AttrVector(vals.iter().map(|&v| AttrValue::Int(v)).collect());
        let v1 = b.add_vertex(VertexType(0), rec.clone());
        let v2 = b.add_vertex(VertexType(0), rec.clone());
        let g = b.build();
        prop_assert_eq!(g.vertex_attr_id(v1), g.vertex_attr_id(v2));
        prop_assert_eq!(g.vertex_attrs(v1), &rec);
    }

    /// Alias tables only ever produce in-range indices, and zero-weight
    /// outcomes are never drawn.
    #[test]
    fn alias_table_in_range(weights in prop::collection::vec(0.0f32..10.0, 1..64), seed in 0u64..1000) {
        prop_assume!(weights.iter().any(|&w| w > 0.0));
        let table = AliasTable::new(&weights).unwrap();
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed);
        for _ in 0..200 {
            let i = table.sample(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "drew zero-weight outcome {}", i);
        }
    }

    /// The LRU never exceeds capacity and always returns what was inserted
    /// most recently for a key.
    #[test]
    fn lru_capacity_and_freshness(ops in prop::collection::vec((0u32..20, 0u32..100), 1..200), cap in 1usize..16) {
        let mut lru = LruCache::new(cap);
        let mut latest = std::collections::HashMap::new();
        for &(k, v) in &ops {
            lru.put(k, v);
            latest.insert(k, v);
            prop_assert!(lru.len() <= cap);
        }
        for (k, v) in &latest {
            if let Some(got) = lru.peek(k) {
                prop_assert_eq!(got, v);
            }
        }
    }

    /// Metric bounds: every classification metric stays in [0, 1].
    #[test]
    fn metric_bounds(scored in prop::collection::vec((-10.0f32..10.0, prop::bool::ANY), 1..100)) {
        let auc = roc_auc(&scored);
        let pr = pr_auc(&scored);
        let f1 = best_f1(&scored);
        prop_assert!((0.0..=1.0).contains(&auc), "auc {}", auc);
        prop_assert!((0.0..=1.0).contains(&pr), "pr {}", pr);
        prop_assert!((0.0..=1.0).contains(&f1), "f1 {}", f1);
    }

    /// Multi-class F1: micro equals accuracy; both bounded; perfect
    /// predictions give exactly 1.
    #[test]
    fn multiclass_f1_properties(truth in prop::collection::vec(0usize..4, 1..60)) {
        prop_assert!((micro_f1(&truth, &truth) - 1.0).abs() < 1e-12);
        prop_assert!((macro_f1(&truth, &truth, 4) - 1.0).abs() < 1e-12);
        let wrong: Vec<usize> = truth.iter().map(|&t| (t + 1) % 4).collect();
        prop_assert_eq!(micro_f1(&wrong, &truth), 0.0);
    }

    /// Partitioners are total: every vertex owned, every owner in range.
    #[test]
    fn partitioners_total(n in 2usize..60, m in 1usize..150, p in 1usize..9, seed in 0u64..100) {
        let g = erdos_renyi(n, m, seed).unwrap();
        for partitioner in [&EdgeCutHash as &dyn Partitioner, &VertexCutGreedy::default(), &StreamingLdg::default()] {
            let part = partitioner.partition(&g, p);
            prop_assert_eq!(part.vertex_owner.len(), n);
            prop_assert!(part.vertex_owner.iter().all(|w| w.index() < part.num_workers));
            prop_assert!(part.edge_owner.iter().all(|w| w.index() < part.num_workers));
        }
    }

    /// Matrix algebra invariants: (A B)ᵀ = Bᵀ Aᵀ on random shapes.
    #[test]
    fn matmul_transpose_identity(r in 1usize..6, k in 1usize..6, c in 1usize..6, seed in 0u64..50) {
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed);
        let a = Matrix::uniform(r, k, 1.0, &mut rng);
        let b = Matrix::uniform(k, c, 1.0, &mut rng);
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Link-prediction splits conserve edges and never leak a held-out
    /// positive into the training graph beyond its multiplicity.
    #[test]
    fn split_conserves_edges(frac in 0.05f64..0.5, seed in 0u64..30) {
        let g = TaobaoConfig::tiny().generate().unwrap();
        let split = aligraph_suite::eval::link_prediction_split(&g, frac, seed);
        prop_assert_eq!(
            split.train.num_edge_records() + split.test_pos.len(),
            g.num_edge_records()
        );
        // Negatives are never true edges.
        for neg in split.test_neg.iter().take(20) {
            let is_edge = g
                .out_neighbors_typed(neg.src, neg.etype)
                .iter()
                .any(|n| n.vertex == neg.dst);
            prop_assert!(!is_edge);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chaos recovery invariant: the retry backoff schedule is monotone
    /// non-decreasing and capped at [`MAX_BACKOFF_TICKS`] for arbitrary
    /// bases and attempt counts, and the deadline always admits the first
    /// send.
    #[test]
    fn backoff_schedule_is_monotone_and_capped(
        base in 0u64..1_000_000_000_000,
        max_attempts in 0u32..300,
        probe in 1u32..400,
    ) {
        let p = RetryPolicy { base_ticks: base, max_attempts };
        prop_assert_eq!(p.backoff_ticks(0), 0);
        let mut prev = 0u64;
        for attempt in 1..probe {
            let t = p.backoff_ticks(attempt);
            prop_assert!(t >= prev, "attempt {}: backoff {} < previous {}", attempt, t, prev);
            prop_assert!(t <= MAX_BACKOFF_TICKS, "attempt {}: backoff {} over cap", attempt, t);
            prev = t;
        }
        // Attempt 0 (the first send) is always inside the deadline; the
        // deadline itself is never.
        prop_assert!(!p.exhausted(0));
        prop_assert!(p.exhausted(max_attempts.max(1)));
    }

    /// Chaos recovery invariant: sequence-numbered delivery is idempotent
    /// and in-order under arbitrary duplication and reordering — every
    /// payload comes out exactly once, sorted, and replaying the entire
    /// arrival storm afterwards delivers nothing.
    #[test]
    fn sequencer_is_idempotent_under_dup_and_reorder(
        n in 1usize..32,
        swaps in prop::collection::vec((0usize..64, 0usize..64), 0..64),
        dups in prop::collection::vec(0usize..64, 0..32),
    ) {
        // An arbitrary permutation of seqs 0..n, then arbitrary duplicates
        // spliced in at arbitrary positions (a dup may even arrive before
        // its original — the lost-ack resend beating the first copy).
        let mut arrivals: Vec<u64> = (0..n as u64).collect();
        for &(i, j) in &swaps {
            arrivals.swap(i % n, j % n);
        }
        for &d in &dups {
            let dup = (d % n) as u64;
            let at = d % (arrivals.len() + 1);
            arrivals.insert(at, dup);
        }

        let mut s = Sequencer::new();
        let mut out = Vec::new();
        for &seq in &arrivals {
            out.extend(s.offer(seq, seq));
        }
        prop_assert_eq!(out, (0..n as u64).collect::<Vec<_>>());
        prop_assert_eq!(s.delivered(), n as u64);
        prop_assert_eq!(s.pending(), 0);
        for &seq in &arrivals {
            prop_assert!(s.offer(seq, seq).is_empty(), "replayed seq {} re-delivered", seq);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Streaming invariant (ISSUE 6): an incrementally repaired alias table
    /// is bit-identical to a from-scratch rebuild of its current weights,
    /// for any initial row and any set/push/remove edit script — including
    /// degenerate transitions through empty and all-zero rows.
    #[test]
    fn incremental_alias_repair_matches_full_rebuild(
        init in prop::collection::vec(0.0f32..10.0, 0..24),
        edits in prop::collection::vec((0u8..3, 0usize..64, 0.0f32..10.0), 0..40),
    ) {
        let mut inc = IncrementalAlias::new(init.clone());
        prop_assert!(inc.bit_eq_rebuild(), "fresh table diverged");
        for &(op, i, w) in &edits {
            match op {
                0 => inc.push(w),
                1 if !inc.is_empty() => inc.set(i % inc.len(), w),
                2 if !inc.is_empty() => inc.remove(i % inc.len()),
                _ => {}
            }
            inc.repair();
            prop_assert!(inc.bit_eq_rebuild(), "diverged after ({}, {}, {})", op, i, w);
        }
    }

    /// Streaming invariant (ISSUE 6): published epochs are strictly
    /// increasing, the head never runs backwards, and no pinned session
    /// ever observes the manager below its pin — nor its pinned view
    /// changing underneath it.
    #[test]
    fn epochs_are_monotonic_under_arbitrary_pins(
        script in prop::collection::vec(prop::bool::ANY, 1..60),
    ) {
        let mut b = GraphBuilder::directed();
        let u = b.add_vertex(VertexType(0), AttrVector::empty());
        let w = b.add_vertex(VertexType(0), AttrVector::empty());
        b.add_edge(u, w, EdgeType(0), 1.0).unwrap();
        let g = Arc::new(b.build());
        let feats = Arc::new(Featurizer::new(2).matrix(&g));
        let view = EpochView::initial(g, feats, Arc::new(vec![None, None]), Arc::new(vec![0, 0]), 1);
        let mgr = EpochManager::new(view);
        let mut pins = Vec::new();
        let mut last = 0u64;
        for &publish in &script {
            if publish {
                let head = mgr.pin();
                let next = head.view().with_shards(vec![ShardView::default()], head.epoch() + 1);
                mgr.publish_with(Arc::new(next), |_| {});
            } else {
                pins.push(mgr.pin());
            }
            let now = mgr.current_epoch();
            prop_assert!(now >= last, "head ran backwards: {} < {}", now, last);
            last = now;
            for p in &pins {
                prop_assert!(p.epoch() <= now, "a pin is ahead of the head");
                prop_assert!(p.view().epoch() == p.epoch(), "a pin's view changed under it");
            }
        }
    }
}

// --- Cold-tier codec and segment invariants (ISSUE 10) -----------------

use aligraph_suite::graph::{AttrId, EdgeId, Neighbor};
use aligraph_suite::storage::codec::{
    decode_adjacency, decode_feature_row, encode_adjacency, encode_feature_row,
};
use aligraph_suite::storage::{Segment, SegmentKind};

/// Builds an adjacency row in one of the shapes the cold tier must survive:
/// empty, singleton, chain (sorted sequential ids — delta coding's best
/// case), star (every record the same hub), or a random power-law-ish row
/// with forced extremes (`u32::MAX` vertex, `u64::MAX` edge, NaN-payload
/// weight) in the tail.
fn shaped_row(shape: u8, raw: &[(u32, u8, u32, u64)], base: u32, hub: u32) -> Vec<Neighbor> {
    let mk = |(v, t, w_bits, e): (u32, u8, u32, u64), attr: u32| Neighbor {
        vertex: VertexId(v),
        etype: EdgeType(t),
        weight: f32::from_bits(w_bits),
        attr: AttrId(attr),
        edge: EdgeId(e),
    };
    match shape {
        0 => Vec::new(),
        1 => raw.first().map(|&r| vec![mk(r, 7)]).unwrap_or_default(),
        2 => (0..raw.len() as u32)
            .map(|i| {
                mk(
                    (
                        base.wrapping_add(i),
                        (i % 7) as u8,
                        (i + 1).to_le_bytes()[0] as u32,
                        u64::from(base) + u64::from(i),
                    ),
                    i,
                )
            })
            .collect(),
        3 => (0..raw.len() as u32).map(|i| mk((hub, 0, 0x3f80_0000, u64::from(i)), 0)).collect(),
        _ => {
            let mut row: Vec<Neighbor> =
                raw.iter().enumerate().map(|(i, &r)| mk(r, i as u32)).collect();
            // Force the extremes every codec run must survive.
            row.push(mk((u32::MAX, u8::MAX, f32::NAN.to_bits() | 1, u64::MAX), u32::MAX));
            row
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tentpole invariant: delta-varint adjacency coding is bit-identical
    /// on roundtrip for every row shape, including NaN-payload weights and
    /// max-valued ids.
    #[test]
    fn codec_adjacency_roundtrip_bit_identical(
        shape in 0u8..5,
        raw in prop::collection::vec((0u32..u32::MAX, 0u8..255, 0u32..u32::MAX, 0u64..u64::MAX), 0..300),
        base in 0u32..1_000_000,
        hub in 0u32..u32::MAX,
    ) {
        let row = shaped_row(shape, &raw, base, hub);
        let mut buf = Vec::new();
        encode_adjacency(&row, &mut buf);
        let back = decode_adjacency(&buf).unwrap();
        prop_assert_eq!(back.len(), row.len());
        for (a, b) in back.iter().zip(row.iter()) {
            prop_assert_eq!(a.vertex, b.vertex);
            prop_assert_eq!(a.etype, b.etype);
            prop_assert_eq!(a.weight.to_bits(), b.weight.to_bits());
            prop_assert_eq!(a.attr, b.attr);
            prop_assert_eq!(a.edge, b.edge);
        }
    }

    /// Feature rows (XOR-previous varint coded) roundtrip bit-identically
    /// for arbitrary f32 bit patterns, NaN and `u32::MAX` included.
    #[test]
    fn codec_feature_row_roundtrip_bit_identical(bits in prop::collection::vec(0u32..u32::MAX, 0..256)) {
        let mut row: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        row.push(f32::from_bits(u32::MAX));
        row.push(f32::from_bits(f32::NAN.to_bits() | 1));
        let mut buf = Vec::new();
        encode_feature_row(&row, &mut buf);
        let back = decode_feature_row(&buf).unwrap();
        prop_assert_eq!(back.len(), row.len());
        for (a, b) in back.iter().zip(row.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Fuzz: the decoders never panic on truncated or bit-flipped buffers —
    /// they return a typed error or a (harmlessly wrong) decode, but always
    /// return.
    #[test]
    fn codec_decoders_never_panic(
        shape in 0u8..5,
        raw in prop::collection::vec((0u32..u32::MAX, 0u8..255, 0u32..u32::MAX, 0u64..u64::MAX), 0..64),
        cut in 0usize..100_000,
        flip in (0usize..100_000, 0u8..8),
        garbage in prop::collection::vec(0u8..255, 0..200),
    ) {
        let row = shaped_row(shape, &raw, 17, 99);
        let mut buf = Vec::new();
        encode_adjacency(&row, &mut buf);
        if !buf.is_empty() {
            // Truncation at an arbitrary prefix length.
            let _ = decode_adjacency(&buf[..cut % buf.len()]);
            // A single flipped bit anywhere.
            let mut flipped = buf.clone();
            let at = flip.0 % flipped.len();
            flipped[at] ^= 1 << flip.1;
            let _ = decode_adjacency(&flipped);
            let _ = decode_feature_row(&flipped);
        }
        // Arbitrary garbage through both decoders.
        let _ = decode_adjacency(&garbage);
        let _ = decode_feature_row(&garbage);
    }

    /// Segment build is canonical: any permutation of the same rows seals to
    /// identical bytes, and lookup serves every row back verbatim.
    #[test]
    fn segment_bytes_canonical_under_row_order(
        entries in prop::collection::vec((0u32..10_000, prop::collection::vec(0u8..255, 0..40)), 0..24),
        seed in 0u64..u64::MAX,
    ) {
        // Last write wins per key (Segment::build requires unique vertices).
        let mut dedup: std::collections::BTreeMap<u32, Vec<u8>> = std::collections::BTreeMap::new();
        for (k, v) in &entries {
            dedup.insert(*k, v.clone());
        }
        let ordered: Vec<(u32, Vec<u8>)> = dedup.iter().map(|(k, v)| (*k, v.clone())).collect();
        let mut shuffled = ordered.clone();
        // Deterministic Fisher-Yates from the proptest-provided seed.
        let mut s = seed | 1;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (s >> 33) as usize % (i + 1));
        }
        let a = Segment::build(SegmentKind::Feature, 3, ordered);
        let b = Segment::build(SegmentKind::Feature, 3, shuffled);
        prop_assert_eq!(a.to_bytes(), b.to_bytes());
        for (k, v) in &dedup {
            prop_assert_eq!(a.lookup(*k), Some(v.as_slice()));
        }
    }

    /// The LRU's eviction order is deterministic: identical op sequences
    /// produce identical `iter_lru` walks, and equal-recency entries (fresh
    /// inserts, never touched again) evict in exact insertion order.
    #[test]
    fn lru_eviction_order_deterministic(
        inserts in prop::collection::vec(0u32..64, 1..64),
        touches in prop::collection::vec(0u32..64, 0..32),
    ) {
        let run = || {
            let mut lru = LruCache::new(128);
            for &k in &inserts {
                lru.put(k, ());
            }
            for &k in &touches {
                lru.get(&k);
            }
            lru.iter_lru().map(|(&k, _)| k).collect::<Vec<_>>()
        };
        let first = run();
        prop_assert_eq!(&first, &run());
        // Equal-recency ties: keys inserted exactly once and never touched
        // again must evict in exact insertion order.
        let mut untouched_in_insertion_order = Vec::new();
        for &k in &inserts {
            if !touches.contains(&k) && inserts.iter().filter(|&&x| x == k).count() == 1 {
                untouched_in_insertion_order.push(k);
            }
        }
        let untouched_evictions: Vec<u32> = first
            .iter()
            .copied()
            .filter(|k| untouched_in_insertion_order.contains(k))
            .collect();
        prop_assert_eq!(untouched_evictions, untouched_in_insertion_order);
    }
}
