//! Workspace-level gates for `aligraph-lint` (DESIGN.md §2.13).
//!
//! Two contracts are pinned here rather than inside the lint crate's unit
//! tests, because both are statements about the *whole repository*:
//!
//! 1. The workspace is lint-clean: every rule passes over every first-party
//!    source file, so `--deny-all` in CI can only fail when a change
//!    introduces a new violation (not because of pre-existing debt).
//! 2. The mini-loom targets hold over a seed sweep: the lock-free bucket
//!    executor, the striped telemetry counter, and the sparse parameter
//!    server each survive hundreds of adversarial interleavings against
//!    their sequential shadow models — and the known-bad drain-loop variant
//!    is still caught.

use aligraph_lint::loom::bucket::BucketWorkload;
use aligraph_lint::loom::counter::CounterWorkload;
use aligraph_lint::loom::ps::PsWorkload;
use aligraph_lint::loom::swap::SwapWorkload;
use aligraph_lint::loom::Explorer;
use aligraph_lint::walk::rust_sources;
use aligraph_lint::{check_file, FileCtx, Violation};
use std::path::Path;

/// Lints every first-party source file under the workspace root.
fn lint_workspace() -> Vec<Violation> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = rust_sources(root).expect("walk workspace sources");
    assert!(
        files.len() > 100,
        "expected the walker to find the whole workspace, got {} files",
        files.len()
    );
    let mut violations = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel)).expect("read source file");
        let ctx = FileCtx::new(&rel.to_string_lossy().replace('\\', "/"), &src);
        violations.extend(check_file(&ctx, None));
    }
    violations
}

#[test]
fn workspace_is_lint_clean() {
    let violations = lint_workspace();
    assert!(
        violations.is_empty(),
        "workspace has {} lint violation(s):\n{}",
        violations.len(),
        violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn lint_sweep_covers_the_streaming_crate() {
    // New crates join the walk automatically; this pins that the streaming
    // crate (seeded-path code that must never read wall-clock) is in the
    // sweep from day one rather than silently skipped.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = rust_sources(root).expect("walk workspace sources");
    let streaming: Vec<_> = files.iter().filter(|p| p.starts_with("crates/streaming")).collect();
    assert!(streaming.len() >= 8, "streaming crate missing from the lint sweep: {streaming:?}");
}

#[test]
fn lint_sweep_covers_the_loopsim_crate() {
    // The closed-loop driver is seeded-path code end to end (virtual ticks,
    // never wall clocks); pin that `aligraph-lint --deny-all` sweeps it.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = rust_sources(root).expect("walk workspace sources");
    let loopsim: Vec<_> = files.iter().filter(|p| p.starts_with("crates/loopsim")).collect();
    assert!(loopsim.len() >= 5, "loopsim crate missing from the lint sweep: {loopsim:?}");
}

#[test]
fn bucket_executor_survives_interleavings() {
    let w = BucketWorkload::default();
    Explorer { seed: 7 }.explore(&w, 300).expect("no divergence");
}

#[test]
fn buggy_bucket_executor_is_caught_from_suite() {
    // The stop-before-pop drain loop loses queued updates under the right
    // schedule; the explorer must find that schedule.
    let w = BucketWorkload::buggy();
    let div = Explorer { seed: 7 }.explore(&w, 300).expect_err("divergence expected");
    assert!(div.message.contains("lost"), "unexpected divergence: {}", div.message);
}

#[test]
fn striped_counter_survives_interleavings() {
    let w = CounterWorkload::default();
    Explorer { seed: 11 }.explore(&w, 300).expect("no divergence");
}

#[test]
fn sparse_param_server_matches_shadow() {
    let w = PsWorkload::new(3, 2).expect("workload setup");
    Explorer { seed: 13 }.explore(&w, 150).expect("no divergence");
}

#[test]
fn model_swap_survives_interleavings() {
    let w = SwapWorkload::default();
    Explorer { seed: 17 }.explore(&w, 300).expect("no divergence");
}

#[test]
fn field_by_field_model_publish_is_caught_and_replays_from_suite() {
    // The split twin publishes version, rows and seal as separate steps;
    // some schedule must expose a torn model, and the recorded schedule
    // must reproduce it bit-for-bit.
    let w = SwapWorkload::buggy();
    let div = Explorer { seed: 17 }.explore(&w, 300).expect_err("divergence expected");
    assert!(div.message.contains("torn model"), "unexpected divergence: {}", div.message);
    let replayed = Explorer::replay(&w, &div.schedule).expect_err("replay reproduces");
    assert_eq!(replayed.message, div.message);
}
