//! Workspace-level gates for `aligraph-lint` (DESIGN.md §2.13, §2.18).
//!
//! These contracts are pinned here rather than inside the lint crate's unit
//! tests, because they are statements about the *whole repository*:
//!
//! 1. The workspace is analysis-clean: the token rules **and** the
//!    interprocedural passes (determinism taint, channel protocol,
//!    deprecated calls) report zero active violations, so CI's baseline
//!    diff can only fail when a change introduces new debt.
//! 2. The call graph covers the workspace: every `pub fn` in the storage,
//!    runtime, and streaming crates resolves to a graph node, and the
//!    planted fixture workspaces still yield their exact violations —
//!    including the full source→sink call path for the taint chain.
//! 3. The mini-loom targets hold over a seed sweep: the lock-free bucket
//!    executor, the striped telemetry counter, and the sparse parameter
//!    server each survive hundreds of adversarial interleavings against
//!    their sequential shadow models — and the known-bad drain-loop variant
//!    is still caught.

use aligraph_lint::loom::bucket::BucketWorkload;
use aligraph_lint::loom::counter::CounterWorkload;
use aligraph_lint::loom::ps::PsWorkload;
use aligraph_lint::loom::swap::SwapWorkload;
use aligraph_lint::parse::parse_fns;
use aligraph_lint::loom::Explorer;
use aligraph_lint::walk::rust_sources;
use aligraph_lint::{analyze_workspace, AnalysisReport, FileCtx, Workspace};
use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn analyze(rel: &str) -> AnalysisReport {
    analyze_workspace(&repo_root().join(rel), None).expect("analyze")
}

#[test]
fn workspace_is_analysis_clean() {
    let report = analyze_workspace(repo_root(), None).expect("analyze workspace");
    assert!(
        report.files_scanned > 100,
        "expected the walker to find the whole workspace, got {} files",
        report.files_scanned
    );
    assert!(
        report.functions > 1000,
        "call graph suspiciously small: {} functions",
        report.functions
    );
    let active: Vec<_> = report.active().collect();
    assert!(
        active.is_empty(),
        "workspace has {} active violation(s):\n{}",
        active.len(),
        active.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn every_pub_fn_in_core_crates_resolves_to_a_call_graph_node() {
    // Property over crates/{storage,runtime,streaming}: re-parse each file
    // independently and require every `pub fn` to land in the workspace
    // call graph under the same (qualifier, name) — a parser regression
    // that silently drops items would shrink taint coverage without any
    // rule noticing.
    let root = repo_root();
    let files = rust_sources(root).expect("walk workspace sources");
    let ctxs: Vec<FileCtx> = files
        .iter()
        .map(|rel| {
            let src = std::fs::read_to_string(root.join(rel)).expect("read source file");
            FileCtx::new(&rel.to_string_lossy().replace('\\', "/"), &src)
        })
        .collect();
    // Collect the expected (qual, name) pairs first; `Workspace::build`
    // takes the contexts by value.
    let mut expected: Vec<(String, Option<String>, String, u32)> = Vec::new();
    for ctx in &ctxs {
        let core = ["storage", "runtime", "streaming"].contains(&ctx.class.crate_name.as_str());
        if !core || ctx.class.is_test_tree || ctx.class.is_bin_like {
            continue;
        }
        for f in parse_fns(ctx) {
            if f.is_pub {
                expected.push((ctx.path.clone(), f.qual.clone(), f.name.clone(), f.line));
            }
        }
    }
    let ws = Workspace::build(ctxs);
    for (path, qual, name, line) in &expected {
        let hits = match qual.as_deref() {
            Some(q) => ws.find_qualified(q, name),
            None => ws.find(name),
        };
        assert!(
            !hits.is_empty(),
            "pub fn `{}{}` at {}:{} missing from the call graph",
            qual.as_deref().map(|q| format!("{q}::")).unwrap_or_default(),
            name,
            path,
            line
        );
    }
    assert!(
        expected.len() > 150,
        "property checked only {} pub fns — walk regressed?",
        expected.len()
    );
}

#[test]
fn planted_taint_fixture_reports_the_exact_chain() {
    let report = analyze("crates/lint/fixtures/taint_ws");
    let active: Vec<_> = report.active().collect();
    assert_eq!(active.len(), 1, "{active:?}");
    let d = active[0];
    assert_eq!(d.rule, "determinism-taint");
    assert_eq!(d.path, "crates/clock/src/lib.rs");
    assert_eq!(d.line, 8, "pinned to the `Instant::now` line");
    assert_eq!(d.chain.len(), 3, "plan_updates → jitter_ms → now_ms: {:?}", d.chain);
    assert!(d.chain[0].contains("plan_updates"), "{:?}", d.chain);
    assert!(d.chain[1].contains("jitter_ms"), "{:?}", d.chain);
    assert!(d.chain[2].contains("now_ms"), "{:?}", d.chain);
}

#[test]
fn planted_protocol_fixture_reports_both_contract_halves() {
    let report = analyze("crates/lint/fixtures/proto_ws");
    let active: Vec<_> = report.active().collect();
    assert_eq!(active.len(), 3, "{active:?}");
    assert!(active.iter().all(|d| d.rule == "channel-protocol"));
    assert!(active.iter().any(|d| d.message.contains("no sequence identifier")));
    assert!(active.iter().any(|d| d.message.contains("no retry machinery")));
    assert!(active.iter().any(|d| d.message.contains("raw `.send(…)`")));
}

#[test]
fn planted_deprecated_fixture_is_flagged() {
    let report = analyze("crates/lint/fixtures/deprecated_ws");
    let active: Vec<_> = report.active().collect();
    assert_eq!(active.len(), 1, "{active:?}");
    assert_eq!(active[0].rule, "no-deprecated-calls");
    assert_eq!(active[0].path, "crates/client/src/lib.rs");
    assert!(active[0].message.contains("old_route"), "{}", active[0].message);
}

#[test]
fn json_report_round_trips_the_summary() {
    let report = analyze("crates/lint/fixtures/proto_ws");
    let json = report.to_json();
    assert!(json.contains("\"version\": 1"), "{json}");
    assert!(json.contains("\"active\": 3"), "{json}");
    assert!(json.contains("channel-protocol"), "{json}");
}

#[test]
fn lint_sweep_covers_the_streaming_crate() {
    // New crates join the walk automatically; this pins that the streaming
    // crate (seeded-path code that must never read wall-clock) is in the
    // sweep from day one rather than silently skipped.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = rust_sources(root).expect("walk workspace sources");
    let streaming: Vec<_> = files.iter().filter(|p| p.starts_with("crates/streaming")).collect();
    assert!(streaming.len() >= 8, "streaming crate missing from the lint sweep: {streaming:?}");
}

#[test]
fn lint_sweep_covers_the_loopsim_crate() {
    // The closed-loop driver is seeded-path code end to end (virtual ticks,
    // never wall clocks); pin that `aligraph-lint --deny-all` sweeps it.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = rust_sources(root).expect("walk workspace sources");
    let loopsim: Vec<_> = files.iter().filter(|p| p.starts_with("crates/loopsim")).collect();
    assert!(loopsim.len() >= 5, "loopsim crate missing from the lint sweep: {loopsim:?}");
}

#[test]
fn bucket_executor_survives_interleavings() {
    let w = BucketWorkload::default();
    Explorer { seed: 7 }.explore(&w, 300).expect("no divergence");
}

#[test]
fn buggy_bucket_executor_is_caught_from_suite() {
    // The stop-before-pop drain loop loses queued updates under the right
    // schedule; the explorer must find that schedule.
    let w = BucketWorkload::buggy();
    let div = Explorer { seed: 7 }.explore(&w, 300).expect_err("divergence expected");
    assert!(div.message.contains("lost"), "unexpected divergence: {}", div.message);
}

#[test]
fn striped_counter_survives_interleavings() {
    let w = CounterWorkload::default();
    Explorer { seed: 11 }.explore(&w, 300).expect("no divergence");
}

#[test]
fn sparse_param_server_matches_shadow() {
    let w = PsWorkload::new(3, 2).expect("workload setup");
    Explorer { seed: 13 }.explore(&w, 150).expect("no divergence");
}

#[test]
fn model_swap_survives_interleavings() {
    let w = SwapWorkload::default();
    Explorer { seed: 17 }.explore(&w, 300).expect("no divergence");
}

#[test]
fn field_by_field_model_publish_is_caught_and_replays_from_suite() {
    // The split twin publishes version, rows and seal as separate steps;
    // some schedule must expose a torn model, and the recorded schedule
    // must reproduce it bit-for-bit.
    let w = SwapWorkload::buggy();
    let div = Explorer { seed: 17 }.explore(&w, 300).expect_err("divergence expected");
    assert!(div.message.contains("torn model"), "unexpected divergence: {}", div.message);
    let replayed = Explorer::replay(&w, &div.schedule).expect_err("replay reproduces");
    assert_eq!(replayed.message, div.message);
}
