//! End-to-end platform integration: generator → partition → distributed
//! storage → sampling pipeline → GNN training → evaluation, the whole
//! Figure 3 stack in one test file.

use aligraph_suite::core::models::graphsage::{train_graphsage, GraphSageConfig};
use aligraph_suite::core::trainer::evaluate_split;
use aligraph_suite::eval::link_prediction_split;
use aligraph_suite::graph::generate::TaobaoConfig;
use aligraph_suite::graph::ids::well_known::{BUY, ITEM, USER};
use aligraph_suite::partition::{
    EdgeCutHash, Grid2D, MetisLike, PartitionQuality, Partitioner, StreamingLdg, VertexCutGreedy,
    WorkerId,
};
use aligraph_suite::sampling::{
    SamplingPipeline, UniformNegative, UniformNeighborhood, UniformTraverse,
};
use aligraph_suite::storage::{CacheStrategy, Cluster, CostModel};
use std::sync::Arc;

fn graph() -> aligraph_suite::graph::AttributedHeterogeneousGraph {
    TaobaoConfig::tiny().scaled(2.0).generate().expect("valid config")
}

#[test]
fn every_partitioner_supports_the_full_stack() {
    let graph = Arc::new(graph());
    let partitioners: Vec<Box<dyn Partitioner>> = vec![
        Box::new(EdgeCutHash),
        Box::new(VertexCutGreedy::default()),
        Box::new(Grid2D),
        Box::new(StreamingLdg::default()),
        Box::new(MetisLike::default()),
    ];
    for partitioner in &partitioners {
        let part = partitioner.partition(&graph, 4);
        let q = PartitionQuality::evaluate(&graph, &part);
        assert!(q.edge_cut_ratio <= 1.0, "{}: cut {}", partitioner.name(), q.edge_cut_ratio);
        assert!(
            q.vertex_imbalance < 8.0,
            "{}: imbalance {}",
            partitioner.name(),
            q.vertex_imbalance
        );
        // Every vertex must be owned by a valid worker.
        assert_eq!(part.vertex_owner.len(), graph.num_vertices());
        assert!(part.vertex_owner.iter().all(|w| w.index() < part.num_workers));
    }
}

#[test]
fn cluster_serves_full_sampling_pipeline() {
    let graph = Arc::new(graph());
    let (cluster, report) = Cluster::builder(Arc::clone(&graph))
        .partitioner(&EdgeCutHash)
        .shards(4)
        .cache(CacheStrategy::ImportanceBudget { k: 2, fraction: 0.2 })
        .max_hop(2)
        .cost_model(CostModel::default())
        .build();
    assert!(report.total() > std::time::Duration::ZERO);
    assert!(report.ingest_makespan() <= report.ingest_time);

    // Figure 5 pipeline against the distributed view.
    let pipeline = SamplingPipeline {
        traverse: UniformTraverse,
        neighborhood: UniformNeighborhood,
        negative: UniformNegative { vtype: Some(ITEM) },
        hop_nums: vec![6, 3],
        neg_num: 4,
    };
    let view = aligraph_suite::sampling::neighborhood::ClusterView {
        cluster: &cluster,
        from: WorkerId(0),
    };
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(7);
    let batch = pipeline.sample(&graph, &view, BUY, 32, &mut rng);
    assert_eq!(batch.vertices.len(), 32);
    assert!(batch.context.context_size() > 0);
    // The distributed reads were accounted.
    let snap = cluster.stats().snapshot();
    assert!(snap.total() > 0);
    assert!(snap.cached_remote + snap.remote > 0, "4 workers => remote traffic");
}

#[test]
fn importance_cache_reduces_modeled_cost_end_to_end() {
    let graph = Arc::new(graph());
    let mut costs = Vec::new();
    for strategy in [CacheStrategy::None, CacheStrategy::ImportanceBudget { k: 2, fraction: 0.3 }] {
        let (cluster, _) = Cluster::builder(Arc::clone(&graph))
            .partitioner(&EdgeCutHash)
            .shards(4)
            .cache(strategy)
            .max_hop(2)
            .cost_model(CostModel::default())
            .build();
        for v in graph.vertices() {
            cluster.neighbors_from(WorkerId(0), v, 2).unwrap();
        }
        costs.push(cluster.stats().snapshot().virtual_ns);
    }
    assert!(costs[1] < costs[0], "cached {} vs none {}", costs[1], costs[0]);
}

#[test]
fn trained_gnn_beats_chance_on_link_prediction() {
    let g = graph();
    let split = link_prediction_split(&g, 0.15, 9);
    let trained = train_graphsage(&split.train, &GraphSageConfig::quick());
    let metrics = evaluate_split(&trained.embeddings, &split);
    assert!(metrics.roc_auc > 0.53, "AUC {}", metrics.roc_auc);
    assert!(metrics.roc_auc <= 1.0 && metrics.pr_auc <= 1.0 && metrics.f1 <= 1.0);
}

#[test]
fn heterogeneous_structure_survives_the_stack() {
    let g = graph();
    // Types preserved through splits.
    let split = link_prediction_split(&g, 0.2, 3);
    assert_eq!(split.train.vertices_of_type(USER).len(), g.vertices_of_type(USER).len());
    assert_eq!(split.train.vertices_of_type(ITEM).len(), g.vertices_of_type(ITEM).len());
    // All four behavior types appear among held-out positives.
    assert!(split.test_edge_types().len() >= 3);
}
