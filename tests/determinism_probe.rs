//! Regression tests for run-to-run determinism of the distributed runtime:
//! repeated trainings in one process must be bitwise identical. (This once
//! caught worker threads materializing their initial replica *after* another
//! worker had already pushed — a startup race invisible to single-run
//! tests.)

use aligraph_suite::graph::{Featurizer, TaobaoConfig};
use aligraph_suite::partition::EdgeCutHash;
use aligraph_suite::runtime::{DistTrainer, EncoderSpec, RuntimeConfig};
use aligraph_suite::storage::{CacheStrategy, Cluster, CostModel};
use std::sync::Arc;

fn probe(workers: usize, sparse_lr: f32, label: &str) {
    let graph = Arc::new(TaobaoConfig::tiny().generate().unwrap());
    let features = Featurizer::new(16).matrix(&graph);
    let (cluster, _) = Cluster::builder(graph)
        .partitioner(&EdgeCutHash)
        .shards(workers)
        .cache(CacheStrategy::None)
        .max_hop(2)
        .cost_model(CostModel::default())
        .build();
    let spec =
        EncoderSpec { dim_in: 16, dims: vec![16, 8], fanouts: vec![3, 2], lr: 0.05, seed: 7 };
    let cfg = RuntimeConfig {
        workers,
        epochs: 2,
        batches_per_epoch: 8,
        batch_size: 16,
        negatives: 2,
        staleness: 0,
        seed: 11,
        sparse_lr,
        ..RuntimeConfig::default()
    };
    let a =
        DistTrainer::new(&cluster, &features, spec.clone(), cfg.clone()).unwrap().train().unwrap();
    for i in 0..6 {
        let b = DistTrainer::new(&cluster, &features, spec.clone(), cfg.clone())
            .unwrap()
            .train()
            .unwrap();
        assert_eq!(
            a.report.epoch_losses.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.report.epoch_losses.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "{label}: losses diverged at rerun {i}"
        );
        assert_eq!(
            a.features.as_slice(),
            b.features.as_slice(),
            "{label}: features diverged at rerun {i}"
        );
        let pa: Vec<u32> = a.encoder.dense_param_vec().iter().map(|x| x.to_bits()).collect();
        let pb: Vec<u32> = b.encoder.dense_param_vec().iter().map(|x| x.to_bits()).collect();
        assert_eq!(pa, pb, "{label}: params diverged at rerun {i}");
    }
}

#[test]
fn two_workers_frozen_features_are_deterministic() {
    probe(2, 0.0, "p2 sparse_lr=0");
}

#[test]
fn single_worker_sparse_updates_are_deterministic() {
    probe(1, 0.05, "p1 sparse_lr=0.05");
}

#[test]
fn two_workers_sparse_updates_are_deterministic() {
    probe(2, 0.05, "p2 sparse_lr=0.05");
}
