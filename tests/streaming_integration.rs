//! Streaming dynamic-graph service attacked end-to-end (ISSUE 6).
//!
//! The contracts pinned here:
//!
//! * **Chaos bit-exactness** — the same update log applied through a
//!   faulted ingest channel (drop/delay/duplicate at 5% and 20%) publishes
//!   the identical epoch sequence and final graph state as the fault-free
//!   run; faults only cost modelled lag ticks.
//! * **Session consistency under concurrency** — readers hammering the
//!   service while batches flow never observe a gather at any epoch other
//!   than their session's pinned one.
//! * **Fine-grained invalidation** — an update invalidates only cache
//!   entries whose k-hop frontier intersects the touched set; an untouched
//!   vertex's entry survives and is served bit-identically at the next
//!   epoch.
//! * **The rebuild oracle** — after any of the above, every incrementally
//!   repaired alias table equals a from-scratch rebuild bit-for-bit.

use aligraph_suite::chaos::{FaultPlan, RetryPolicy};
use aligraph_suite::graph::ids::well_known::{CLICK, USER};
use aligraph_suite::graph::{AttrVector, Featurizer, GraphBuilder, TaobaoConfig, VertexId};
use aligraph_suite::streaming::{
    IngestFaultConfig, StreamingConfig, StreamingService, UpdateBatch, UpdateEvent, UpdateWorkload,
};
use std::sync::Arc;

const DIM: usize = 8;

fn taobao_service(seed: u64, fault: Option<IngestFaultConfig>) -> (StreamingService, u32) {
    let mut cfg = TaobaoConfig::small_sim().scaled(0.004);
    cfg.seed = seed;
    let graph = Arc::new(cfg.generate().expect("valid config"));
    let n = graph.num_vertices() as u32;
    let feats = Arc::new(Featurizer::new(DIM).matrix(&graph));
    let svc = StreamingService::start(
        graph,
        feats,
        StreamingConfig { shards: 2, seed, fault, ..Default::default() },
    );
    (svc, n)
}

/// Applies `rounds` seeded workload batches and returns the observable
/// trace: per-batch `(epoch, touched rows, touched feats, affected count)`
/// plus the final gathers of the first vertices — everything that must be
/// invariant under ingest-channel faults. Update lag is deliberately NOT in
/// the trace: it is the one thing faults are allowed to cost.
#[allow(clippy::type_complexity)]
fn run_trace(
    svc: &StreamingService,
    seed: u64,
    n: u32,
    rounds: usize,
) -> (Vec<(u64, Vec<u32>, Vec<u32>, usize)>, Vec<Vec<f32>>, u64) {
    let mut workload = UpdateWorkload::new(seed, n, DIM);
    let mut trace = Vec::new();
    let mut lag = 0u64;
    for _ in 0..rounds {
        let r = svc.ingest(&workload.next_batch(6, 2)).expect("ingest");
        lag += r.lag_ticks;
        trace.push((r.epoch, r.touched_rows, r.touched_feats, r.affected));
    }
    let session = svc.session();
    let gathers: Vec<Vec<f32>> =
        (0..n.min(48)).map(|v| session.gather(VertexId(v)).vector.as_ref().clone()).collect();
    (trace, gathers, lag)
}

#[test]
fn faulted_ingest_is_bit_exact_with_fault_free_run() {
    for seed in [7u64, 41] {
        let (clean, n) = taobao_service(seed, None);
        let (clean_trace, clean_gathers, clean_lag) = run_trace(&clean, seed, n, 25);
        assert_eq!(clean_lag, 0, "fault-free run must cost no modelled lag");
        clean.oracle_check().expect("clean oracle");
        clean.shutdown();

        for drop_rate in [0.05, 0.2] {
            let fault = Some(IngestFaultConfig {
                plan: FaultPlan::with_seed(seed ^ 0xFA, drop_rate),
                policy: RetryPolicy::default(),
            });
            let (chaotic, n2) = taobao_service(seed, fault);
            assert_eq!(n, n2);
            let (trace, gathers, lag) = run_trace(&chaotic, seed, n, 25);
            assert_eq!(
                trace, clean_trace,
                "epoch/touched/affected sequence diverged at drop rate {drop_rate} seed {seed}"
            );
            for (v, (a, b)) in clean_gathers.iter().zip(&gathers).enumerate() {
                assert_eq!(
                    a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "vertex {v} gather diverged at drop rate {drop_rate} seed {seed}"
                );
            }
            if drop_rate >= 0.2 {
                assert!(lag > 0, "a 20% fault rate must cost some modelled lag");
            }
            chaotic.oracle_check().expect("chaotic oracle");
            chaotic.shutdown();
        }
    }
}

#[test]
fn concurrent_sessions_stay_on_their_pinned_epoch() {
    let (svc, n) = taobao_service(11, None);
    let violations = std::thread::scope(|scope| {
        let updater = scope.spawn(|| {
            let mut workload = UpdateWorkload::new(11 ^ 0xd17a, n, DIM);
            for _ in 0..40 {
                svc.ingest(&workload.next_batch(6, 2)).expect("ingest");
            }
        });
        let readers: Vec<_> = (0..3u32)
            .map(|c| {
                let svc = &svc;
                scope.spawn(move || {
                    let mut violations = 0u64;
                    for i in 0..200u32 {
                        let session = svc.session();
                        let pinned = session.epoch();
                        for k in 0..3u32 {
                            let g = session.gather(VertexId((c * 131 + i * 7 + k) % n));
                            if g.epoch != pinned {
                                violations += 1;
                            }
                        }
                    }
                    violations
                })
            })
            .collect();
        let total: u64 = readers.into_iter().map(|h| h.join().expect("reader")).sum();
        updater.join().expect("updater");
        total
    });
    assert_eq!(violations, 0, "gathers observed an epoch other than their session's pin");
    assert_eq!(svc.current_epoch(), 40);
    svc.oracle_check().expect("oracle after concurrent load");
    svc.shutdown();
}

#[test]
fn unrelated_update_leaves_untouched_cache_entry_warm() {
    // Two disconnected chains: 0 -> 1 -> 2 and 3 -> 4 -> 5. An update in
    // the second chain must not cool the first chain's cache entries.
    let mut b = GraphBuilder::directed();
    let vs: Vec<VertexId> = (0..6).map(|_| b.add_vertex(USER, AttrVector::empty())).collect();
    for pair in [(0, 1), (1, 2), (3, 4), (4, 5)] {
        b.add_edge(vs[pair.0], vs[pair.1], CLICK, 1.0).unwrap();
    }
    let graph = Arc::new(b.build());
    let feats = Arc::new(Featurizer::new(DIM).matrix(&graph));
    let svc = StreamingService::start(graph, feats, StreamingConfig::default());

    let session = svc.session();
    let warm = session.gather(VertexId(0));
    let cooled = session.gather(VertexId(3));
    assert_eq!(svc.cache_stats().len, 2);

    let receipt = svc
        .ingest(&UpdateBatch {
            events: vec![UpdateEvent::AddEdge {
                src: VertexId(4),
                dst: VertexId(2),
                etype: CLICK,
                weight: 3.0,
            }],
        })
        .expect("ingest");
    // Touching row 4 invalidates exactly the vertices that sample through
    // it within kmax-1 hops: {4, 3}. Vertex 3 was cached, so one entry
    // drops; vertices 0..2 stay warm.
    assert_eq!(receipt.touched_rows, vec![4]);
    assert_eq!(receipt.invalidated, 1);

    let hits_before = svc.cache_stats().hits;
    let fresh = svc.session();
    let again = fresh.gather(VertexId(0));
    assert_eq!(svc.cache_stats().hits, hits_before + 1, "survivor must be served from cache");
    assert_eq!(again.epoch, 1, "served at the new epoch");
    assert_eq!(
        warm.vector.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        again.vector.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        "surviving entry must be bit-identical to its pre-update value"
    );
    // The cooled vertex recomputes — and sees the new edge's influence.
    let recomputed = fresh.gather(VertexId(3));
    assert_ne!(cooled.vector, recomputed.vector, "vertex 3 samples through the new edge");
    svc.oracle_check().expect("oracle");
    svc.shutdown();
}

#[test]
fn removals_and_feature_rewrites_round_trip_through_the_oracle() {
    let (svc, n) = taobao_service(23, None);
    let mut workload = UpdateWorkload::new(23, n, DIM);
    for round in 0..10 {
        // Rounds after the first retract every previous addition, so the
        // remove path and the re-add path both churn the same alias tables.
        let receipt = svc.ingest(&workload.next_batch(8, 3)).expect("ingest");
        assert_eq!(receipt.epoch, round + 1);
        assert!(receipt.repairs > 0, "round {round} repaired no alias tables");
    }
    svc.oracle_check().expect("incremental state diverged from rebuild");
    svc.shutdown();
}
