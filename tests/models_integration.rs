//! Cross-crate model integration: every in-house model and every baseline
//! family trains on one shared heterogeneous graph and produces usable
//! embeddings through the common [`EmbeddingModel`] interface.

use aligraph_suite::baselines::{
    train_deepwalk, train_line, train_mne, train_mve, train_node2vec, train_pmne, LineOrder,
    PmneVariant, SkipGramParams,
};
use aligraph_suite::core::models::bayesian::{train_bayesian, BayesianConfig};
use aligraph_suite::core::models::evolving::{train_evolving, EvolvingConfig};
use aligraph_suite::core::models::gatne::{train_gatne, GatneConfig};
use aligraph_suite::core::models::gcn::{train_asgcn, train_fastgcn, train_gcn, GcnConfig};
use aligraph_suite::core::models::graphsage::{train_graphsage, GraphSageConfig};
use aligraph_suite::core::models::hep::{train_hep, HepConfig};
use aligraph_suite::core::models::hierarchical::{train_hierarchical, HierarchicalConfig};
use aligraph_suite::core::models::mixture::{train_mixture, MixtureConfig};
use aligraph_suite::core::trainer::evaluate_split;
use aligraph_suite::core::EmbeddingModel;
use aligraph_suite::eval::link_prediction_split;
use aligraph_suite::graph::generate::{DynamicConfig, TaobaoConfig};
use aligraph_suite::graph::{Featurizer, VertexId};
use aligraph_suite::tensor::Matrix;

fn graph() -> aligraph_suite::graph::AttributedHeterogeneousGraph {
    TaobaoConfig::tiny().generate().unwrap()
}

#[test]
fn all_inhouse_models_beat_chance_on_one_graph() {
    let g = graph();
    let split = link_prediction_split(&g, 0.15, 42);

    let sage = train_graphsage(&split.train, &GraphSageConfig::quick());
    let hep = train_hep(&split.train, &HepConfig::hep_quick(16));
    let ahep = train_hep(&split.train, &HepConfig::ahep_quick(16, 4));
    let hier = train_hierarchical(&split.train, &HierarchicalConfig::quick());
    let mixture = train_mixture(&split.train, &MixtureConfig::quick());

    let results = [
        ("GraphSAGE", evaluate_split(&sage.embeddings, &split).roc_auc),
        ("HEP", evaluate_split(&hep, &split).roc_auc),
        ("AHEP", evaluate_split(&ahep, &split).roc_auc),
        ("Hierarchical", evaluate_split(&hier, &split).roc_auc),
        ("Mixture", evaluate_split(&mixture, &split).roc_auc),
    ];
    for (name, auc) in results {
        assert!(auc > 0.5, "{name} AUC {auc}");
    }
}

#[test]
fn gcn_family_trains_on_heterogeneous_graph() {
    let g = graph();
    let cfg = GcnConfig::quick();
    let gcn = train_gcn(&g, &cfg);
    let fast = train_fastgcn(&g, &cfg, 80);
    let adaptive = train_asgcn(&g, &cfg);
    for m in [&gcn, &fast, &adaptive] {
        assert_eq!(m.embeddings.matrix.rows, g.num_vertices());
        assert!(m.embeddings.matrix.as_slice().iter().all(|x| x.is_finite()));
    }
}

#[test]
fn baseline_family_trains_on_one_graph() {
    let g = graph();
    let params = SkipGramParams::quick();
    let models: Vec<(&str, Box<dyn EmbeddingModel>)> = vec![
        ("deepwalk", Box::new(train_deepwalk(&g, &params))),
        ("node2vec", Box::new(train_node2vec(&g, &params, 1.0, 2.0))),
        ("line", Box::new(train_line(&g, &params, LineOrder::First))),
        ("pmne-n", Box::new(train_pmne(&g, &params, PmneVariant::N))),
        ("mve", Box::new(train_mve(&g, &params, 2.0))),
        ("mne", Box::new(train_mne(&g, &params))),
    ];
    for (name, m) in &models {
        let e = m.embedding(VertexId(0));
        assert!(!e.is_empty(), "{name}");
        assert!(e.iter().all(|x| x.is_finite()), "{name} produced non-finite embeddings");
    }
}

#[test]
fn gatne_produces_type_conditional_rankings() {
    let g = graph();
    let m =
        train_gatne(&g, &GatneConfig { epochs: 1, walks_per_vertex: 1, ..GatneConfig::quick() });
    use aligraph_suite::graph::ids::well_known::{BUY, CLICK, USER};
    let u = g.vertices_of_type(USER)[0];
    let v = g.vertices_of_type(aligraph_suite::graph::ids::well_known::ITEM)[0];
    // Same pair scored differently under different behavior types.
    let click = m.score_typed(u, v, CLICK);
    let buy = m.score_typed(u, v, BUY);
    assert!(click.is_finite() && buy.is_finite());
    assert_ne!(click, buy);
}

#[test]
fn evolving_and_bayesian_compose_with_the_rest() {
    // Evolving on a small dynamic graph.
    let dynamic = DynamicConfig {
        vertices: 100,
        initial_edges: 350,
        timestamps: 3,
        normal_per_step: 50,
        removed_per_step: 20,
        burst_size: 25,
        burst_every: 2,
        edge_types: 2,
        seed: 2,
    }
    .generate()
    .unwrap();
    let mut cfg = EvolvingConfig::quick();
    cfg.sage.train.epochs = 2;
    cfg.sage.train.batches_per_epoch = 5;
    let ev = train_evolving(&dynamic, &cfg);
    assert!(ev.states.as_slice().iter().all(|x| x.is_finite()));

    // Bayesian correction over a feature prior on the static graph.
    let g = graph();
    let prior = {
        let f = Featurizer::new(8).matrix(&g);
        Matrix::from_vec(g.num_vertices(), 8, f.as_slice().to_vec())
    };
    let bayes = train_bayesian(prior, &g, &BayesianConfig::quick());
    let z = bayes.embedding(VertexId(0));
    assert_eq!(z.len(), 8);
    assert!(z.iter().all(|x| x.is_finite()));
}
