//! Chaos suite: the deterministic fault plane attacked end-to-end.
//!
//! The headline property (ISSUE 5): for any fault seed, as long as the drop
//! rate is below 1, training under the full recovery machinery converges
//! **bit-exactly** to the fault-free run — drops are retried, duplicates are
//! deduplicated by sequence number, crashes restore from the latest valid
//! checkpoint, and none of it perturbs a single mantissa bit. The broken
//! recovery variants exist to prove these assertions have teeth: switching
//! retry off must visibly diverge.

use aligraph_suite::chaos::{CrashPoint, FaultPlan, FaultPlane, RecoveryMode, RetryPolicy};
use aligraph_suite::graph::dynamic::{EdgeEvent, EvolutionKind, SnapshotDelta};
use aligraph_suite::graph::ids::well_known::CLICK;
use aligraph_suite::graph::{FeatureMatrix, Featurizer, TaobaoConfig, VertexId};
use aligraph_suite::partition::EdgeCutHash;
use aligraph_suite::runtime::{
    ChaosConfig, CheckpointConfig, DistOutcome, DistTrainer, EncoderSpec, RuntimeConfig,
};
use aligraph_suite::sampling::TopKNeighborhood;
use aligraph_suite::serving::{ServeError, ServingConfig, ServingFaultConfig, ServingService};
use aligraph_suite::storage::{BucketExecutor, CacheStrategy, Cluster, CostModel};
use crossbeam::channel::Sender;
use std::sync::Arc;
use std::time::Duration;

const DIM: usize = 16;

fn setup(workers: usize) -> (Cluster, FeatureMatrix) {
    let graph = Arc::new(TaobaoConfig::tiny().generate().expect("valid config"));
    let features = Featurizer::new(DIM).matrix(&graph);
    let (cluster, _) = Cluster::builder(graph)
        .partitioner(&EdgeCutHash)
        .shards(workers)
        .cache(CacheStrategy::None)
        .max_hop(2)
        .cost_model(CostModel::default())
        .build();
    (cluster, features)
}

fn spec() -> EncoderSpec {
    EncoderSpec { dim_in: DIM, dims: vec![16, 8], fanouts: vec![3, 2], lr: 0.05, seed: 7 }
}

fn base_cfg(workers: usize) -> RuntimeConfig {
    RuntimeConfig {
        workers,
        epochs: 2,
        batches_per_epoch: 6,
        batch_size: 16,
        negatives: 2,
        staleness: 0,
        seed: 11,
        sparse_lr: 0.05,
        ..RuntimeConfig::default()
    }
}

fn train(cfg: RuntimeConfig, cluster: &Cluster, features: &FeatureMatrix) -> DistOutcome {
    DistTrainer::new(cluster, features, spec(), cfg).unwrap().train().unwrap()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn fbits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Satellite 1 — the 16-seed sweep: 8 fault seeds × drop rates {0.05, 0.2},
/// every run bit-exact against the fault-free baseline (losses, dense
/// parameters, trained features), with faults actually injected and
/// retries actually performed.
#[test]
fn chaos_sweep_converges_bit_exact_across_seeds_and_drop_rates() {
    let (cluster, features) = setup(2);
    let clean = train(base_cfg(2), &cluster, &features);
    assert_eq!(clean.report.faults_injected, 0, "baseline must be fault-free");

    let (mut faults, mut retries) = (0u64, 0u64);
    for seed in 1..=8u64 {
        for &drop_rate in &[0.05, 0.2] {
            let cfg = RuntimeConfig {
                chaos: Some(ChaosConfig::with_seed(seed, drop_rate)),
                ..base_cfg(2)
            };
            let chaotic = train(cfg, &cluster, &features);
            assert_eq!(
                bits(&chaotic.report.epoch_losses),
                bits(&clean.report.epoch_losses),
                "seed {seed} drop {drop_rate}: losses diverged from fault-free run"
            );
            assert_eq!(
                fbits(&chaotic.encoder.dense_param_vec()),
                fbits(&clean.encoder.dense_param_vec()),
                "seed {seed} drop {drop_rate}: dense parameters diverged"
            );
            assert_eq!(
                chaotic.features.as_slice(),
                clean.features.as_slice(),
                "seed {seed} drop {drop_rate}: trained sparse features diverged"
            );
            faults += chaotic.report.faults_injected;
            retries += chaotic.report.retries;
        }
    }
    assert!(faults > 0, "the sweep must actually inject faults");
    assert!(retries > 0, "recovery must actually retry dropped sends");
}

/// Tests with teeth: disabling retry at a 20% drop rate must produce a run
/// that visibly diverges from the fault-free baseline for at least one seed
/// — otherwise the bit-exact assertions above assert nothing.
#[test]
fn no_retry_variant_is_caught_by_divergence() {
    let (cluster, features) = setup(2);
    let clean = train(base_cfg(2), &cluster, &features);

    let diverged = (1..=4u64).any(|seed| {
        let mut chaos = ChaosConfig::with_seed(seed, 0.2);
        chaos.mode = RecoveryMode::NoRetry;
        let cfg = RuntimeConfig { chaos: Some(chaos), ..base_cfg(2) };
        let broken = train(cfg, &cluster, &features);
        broken.report.faults_injected > 0
            && (fbits(&broken.encoder.dense_param_vec()) != fbits(&clean.encoder.dense_param_vec())
                || bits(&broken.report.epoch_losses) != bits(&clean.report.epoch_losses))
    });
    assert!(diverged, "silently dropping 20% of PS traffic must not be bit-exact");
}

/// Crashes mid-epoch plus checkpoint bit-flips: the worker dies, the
/// corrupted newest checkpoint is rejected, restore falls back to the
/// previous valid one — and the run still lands bit-exact on the baseline.
#[test]
fn crash_with_corrupted_checkpoint_recovers_bit_exact() {
    let (cluster, features) = setup(2);
    let clean = train(base_cfg(2), &cluster, &features);

    let dir = std::env::temp_dir().join(format!("algr-chaos-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut plan = FaultPlan::with_seed(5, 0.1);
    // Die two steps into epoch 2 (6 steps/epoch × 2 workers ⇒ step 8 ends
    // epoch 1); flip a byte in a seeded subset of checkpoints on the way.
    plan.crash_schedule = vec![CrashPoint { worker: 1, at_step: 8 }];
    plan.corrupt_checkpoint = true;
    let cfg = RuntimeConfig {
        checkpoint: Some(CheckpointConfig { dir: dir.clone(), every_steps: 3 }),
        chaos: Some(ChaosConfig { plan, ..ChaosConfig::with_seed(5, 0.1) }),
        ..base_cfg(2)
    };
    let faulted = train(cfg, &cluster, &features);

    assert_eq!(faulted.report.recoveries, 1, "the scheduled crash must fire once");
    assert!(faulted.report.faults_injected > 0);
    assert_eq!(bits(&faulted.report.epoch_losses), bits(&clean.report.epoch_losses));
    assert_eq!(fbits(&faulted.encoder.dense_param_vec()), fbits(&clean.encoder.dense_param_vec()));
    assert_eq!(faulted.features.as_slice(), clean.features.as_slice());
    std::fs::remove_dir_all(&dir).unwrap();
}

enum CountOp {
    Add(u64),
    Read(Sender<u64>),
    Flush(Sender<()>),
}

/// No deadlock, no loss, no duplication: the bucket executor under a 20%
/// drop rate applies every submission exactly once and the barrier drains.
/// Liveness is the test finishing at all — retries are bounded by the
/// policy's attempt cap, never an unbounded spin.
#[test]
fn executor_survives_twenty_percent_drop_without_deadlock() {
    let exec = BucketExecutor::spawn(vec![0u64; 4], |total: &mut u64, op| match op {
        CountOp::Add(x) => *total += x,
        CountOp::Read(reply) => {
            let _ = reply.send(*total);
        }
        CountOp::Flush(reply) => {
            let _ = reply.send(());
        }
    });
    let plane = FaultPlane::new(FaultPlan::with_seed(3, 0.2));
    let policy = RetryPolicy::default();
    let mut seqs = [0u64; 4];
    let mut ticks = 0u64;
    for v in 0..2_000u32 {
        let b = exec.bucket_of(v);
        let seq = seqs[b];
        seqs[b] += 1;
        ticks += exec
            .submit_faulted(v, seq, CountOp::Add(1), &plane, &policy)
            .expect("default retry policy outlasts a 20% drop rate");
    }
    exec.barrier(CountOp::Flush).unwrap();
    let total: u64 = (0..4).map(|b| exec.round_trip_to(b, CountOp::Read).unwrap()).sum();
    assert_eq!(total, 2_000, "every op applies exactly once under faults");
    assert!(ticks > 0, "faults must cost virtual time");
    assert!(plane.snapshot().faults_injected > 0);
    assert!(plane.snapshot().retries > 0);
}

fn click_delta(i: u32) -> SnapshotDelta {
    SnapshotDelta {
        added: vec![EdgeEvent {
            src: VertexId(i % 4),
            dst: VertexId(i % 4 + 1),
            etype: CLICK,
            kind: EvolutionKind::Normal,
        }],
        removed: vec![],
    }
}

/// Serving under fire: with shard fetches failing almost always, the service
/// degrades to version-tagged fallback embeddings *within* the staleness
/// bound (tagged `degraded=true`, metered) and fails closed with the exact
/// staleness arithmetic once the overlay moves beyond the bound. A stale
/// embedding never escapes untagged or out of bound.
#[test]
fn serving_degrades_within_bound_and_fails_closed_beyond() {
    let graph = Arc::new(TaobaoConfig::tiny().generate().expect("valid config"));
    let n = graph.num_vertices() as u32;
    let bound = 3u64;
    let config = ServingConfig {
        cache_capacity: 1, // force (faulted) forwards instead of cache hits
        max_batch_delay: Duration::from_micros(200),
        fault: Some(ServingFaultConfig {
            plan: FaultPlan::with_seed(21, 0.95),
            policy: RetryPolicy { base_ticks: 1, max_attempts: 2 },
            max_stale_versions: bound,
        }),
        ..Default::default()
    };
    let service = ServingService::start(Arc::clone(&graph), TopKNeighborhood, config);
    let plane = service.fault_plane().expect("fault config installs a plane");

    // Warm every vertex fault-free: fallback entries land at version 0.
    plane.disarm();
    for v in 0..n {
        let e = service.embedding_tagged(VertexId(v)).unwrap();
        assert!(!e.degraded, "fault-free serves are never degraded");
    }

    // Two deltas (version 2 — inside the bound), then attack.
    for i in 0..2 {
        service.apply_delta(&click_delta(i));
    }
    plane.arm();
    let mut degraded = 0usize;
    for v in 0..n {
        let e =
            service.embedding_tagged(VertexId(v)).expect("inside the bound every vertex is served");
        if e.degraded {
            degraded += 1;
        }
    }
    assert!(degraded > 0, "a 95% drop rate must degrade some serves");
    let report = service.report(Duration::from_secs(1));
    assert_eq!(report.degraded as usize, degraded, "degraded serves are metered");

    // Two more deltas (version 4): vertices whose fallback still dates from
    // version 0 are now beyond the bound — unavailable, with the staleness
    // spelled out, never a silently-stale embedding.
    for i in 2..4 {
        service.apply_delta(&click_delta(i));
    }
    let mut unavailable = 0usize;
    for v in 0..n {
        match service.embedding_tagged(VertexId(v)) {
            Ok(_) => {}
            Err(ServeError::Unavailable { stale_by, bound: b, .. }) => {
                assert_eq!(b, bound);
                assert!(stale_by > bound, "fail-closed only beyond the bound");
                unavailable += 1;
            }
            Err(other) => panic!("unexpected serve error: {other}"),
        }
    }
    assert!(unavailable > 0, "some fallback entries must have aged out");
}

/// The fault stream itself is deterministic: the same seed yields the same
/// fault count and the same retry count, run after run — the repro
/// one-liner in the README depends on it.
#[test]
fn fault_stream_is_a_pure_function_of_the_seed() {
    let (cluster, features) = setup(2);
    let run = |seed: u64| {
        let cfg = RuntimeConfig { chaos: Some(ChaosConfig::with_seed(seed, 0.2)), ..base_cfg(2) };
        let out = train(cfg, &cluster, &features);
        (out.report.faults_injected, out.report.retries)
    };
    assert_eq!(run(42), run(42), "same seed, same faults, same retries");
    assert_ne!(run(42), run(43), "different seeds explore different fault sequences");
}

/// Cold-tier corruption teeth (ISSUE 10): a chaos-flipped segment file is
/// rejected by its FNV seal on reopen, the read path falls back to
/// re-materializing the shard from the shared graph (the cold-tier mirror
/// of `latest_valid_checkpoint` skipping CRC-corrupt checkpoints), and
/// every row still reads back bit-exactly. Un-flipped shards must NOT be
/// rebuilt — the rejection is surgical.
#[test]
fn corrupted_segment_rejected_by_seal_and_rematerialized() {
    use aligraph_partition::Partitioner;
    use aligraph_storage::tier::TierBacking;
    use aligraph_storage::{TierConfig, TieredStore};
    use aligraph_telemetry::Registry;

    let dir = std::env::temp_dir().join(format!("algr-chaos-segment-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let graph = Arc::new(TaobaoConfig::tiny().generate().expect("valid config"));
    let part = EdgeCutHash.partition(&graph, 3);
    let owners: Vec<u32> = graph.vertices().map(|v| part.owner_of(v).0).collect();
    let cfg = TierConfig {
        resident_budget: Some(8_192),
        backing: TierBacking::Disk(dir.clone()),
        ..TierConfig::default()
    };

    let built = TieredStore::build(
        Arc::clone(&graph),
        &owners,
        3,
        cfg.clone(),
        CostModel::default(),
        &Registry::disabled(),
    )
    .expect("disk-backed build");
    drop(built);

    // Chaos: deterministically flip one byte in every shard-1 segment, the
    // same corruption style the checkpoint chaos plane injects.
    let mut flipped = 0;
    for entry in std::fs::read_dir(&dir).expect("segment dir") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string();
        if name.starts_with("shard-0001") {
            let mut raw = std::fs::read(&path).expect("segment bytes");
            let mid = raw.len() / 2;
            raw[mid] ^= 0x10;
            std::fs::write(&path, &raw).expect("write corrupted segment");
            flipped += 1;
        }
    }
    assert!(flipped > 0, "shard 1 must have at least one segment file");

    let registry = Registry::new();
    let reopened =
        TieredStore::reopen(Arc::clone(&graph), &owners, 3, cfg, CostModel::default(), &registry)
            .expect("reopen falls back instead of failing");

    // The seal caught the flip — exactly once per corrupted shard.
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("tier.seal_rejections", &[]),
        1,
        "exactly the flipped shard must be rejected"
    );

    // Fallback re-materialization: every row on every shard bit-exact.
    for v in graph.vertices() {
        let (nbrs, _, _) = reopened.read_adjacency(v);
        assert_eq!(&nbrs[..], graph.out_neighbors(v), "row {v:?} diverged after fallback");
    }

    // The re-written shard-1 file is sealed and valid again.
    use aligraph_storage::Segment;
    let rewritten = dir.join("shard-0001-adj-gen0000.seg");
    assert!(Segment::read_from(&rewritten).is_ok(), "fallback must re-write a valid segment");
    let _ = std::fs::remove_dir_all(&dir);
}
