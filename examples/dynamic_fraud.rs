//! Dynamic-graph monitoring: spotting burst behavior with the Evolving GNN.
//!
//! Fraud rings and spam campaigns appear as *burst links* — one vertex
//! suddenly gaining many edges, unlike the graph's normal drift. The
//! Evolving GNN dampens bursts during aggregation and carries a recurrent
//! state across snapshots, so its edge-type predictions stay accurate even
//! on the abnormal part of the stream.
//!
//! Run with: `cargo run --release --example dynamic_fraud`

use aligraph_suite::core::models::evolving::{train_evolving, EvolvingConfig};
use aligraph_suite::eval::micro_f1;
use aligraph_suite::graph::generate::DynamicConfig;
use aligraph_suite::graph::{DynamicGraph, EvolutionKind};

fn main() {
    // A 5-snapshot dynamic graph; every other step injects a burst (one
    // vertex suddenly touches hundreds of others).
    let config = DynamicConfig {
        vertices: 800,
        initial_edges: 3_500,
        timestamps: 5,
        normal_per_step: 400,
        removed_per_step: 150,
        burst_size: 200,
        burst_every: 2,
        edge_types: 3,
        seed: 13,
    };
    let dynamic = config.generate().expect("valid config");
    for t in 0..dynamic.num_snapshots() {
        let snap = dynamic.snapshot(t).expect("in range");
        let bursts = dynamic.delta(t).expect("in range").added_of(EvolutionKind::Burst).count();
        println!("t={t}: {} edges ({} burst additions this step)", snap.num_edges(), bursts);
    }

    // Train on the first T-1 snapshots; classify the edges added at step T-1.
    let t = dynamic.num_snapshots();
    let prefix = DynamicGraph::new(
        dynamic.snapshots()[..t - 1].to_vec(),
        dynamic.deltas()[..t - 1].to_vec(),
    )
    .expect("aligned prefix");
    let model = train_evolving(&prefix, &EvolvingConfig::quick());

    let final_delta = dynamic.delta(t - 1).expect("in range");
    for (label, kind) in [("normal", EvolutionKind::Normal), ("burst", EvolutionKind::Burst)] {
        let events: Vec<_> = final_delta.added_of(kind).collect();
        let pred: Vec<usize> = events.iter().map(|e| model.predict_class(e.src, e.dst)).collect();
        let truth: Vec<usize> = events.iter().map(|e| e.etype.index()).collect();
        println!(
            "\n{label} evolution: {} future edges, edge-type micro-F1 = {:.3}",
            events.len(),
            micro_f1(&pred, &truth)
        );
    }
    println!("\n(the burst column is the hard one — static embeddings degrade there; see table11_evolving)");
}
