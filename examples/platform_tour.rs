//! A tour of the platform's system layers: storage, partitioning, caching,
//! sampling, and the lock-free request buckets — with live statistics.
//!
//! Run with: `cargo run --release --example platform_tour`

use aligraph_suite::graph::generate::TaobaoConfig;
use aligraph_suite::graph::{DegreeTable, ImportanceTable, VertexId};
use aligraph_suite::partition::WorkerId;
use aligraph_suite::partition::{
    EdgeCutHash, Grid2D, MetisLike, PartitionQuality, Partitioner, StreamingLdg, VertexCutGreedy,
};
use aligraph_suite::sampling::{DynamicWeights, WeightUpdateMode};
use aligraph_suite::storage::{CacheStrategy, Cluster, CostModel, LockFreeWeightService};
use std::sync::Arc;

fn main() {
    let mut cfg = TaobaoConfig::tiny().scaled(5.0);
    cfg.reverse_ui_prob = 0.2;
    let graph = Arc::new(cfg.generate().expect("valid config"));

    // --- Storage: separate attribute storage (paper §3.2). ---
    println!("## storage");
    println!(
        "adjacency: {} KB   attributes (interned): {} KB   naive co-located attrs: {} KB",
        graph.adjacency_bytes() / 1024,
        graph.attribute_bytes() / 1024,
        graph.naive_attribute_bytes() / 1024,
    );

    // --- The four partitioners (paper §3.2). ---
    println!("\n## partitioners (8 workers)");
    let partitioners: Vec<Box<dyn Partitioner>> = vec![
        Box::new(EdgeCutHash),
        Box::new(VertexCutGreedy::default()),
        Box::new(Grid2D),
        Box::new(StreamingLdg::default()),
        Box::new(MetisLike::default()),
    ];
    for p in &partitioners {
        let part = p.partition(&graph, 8);
        let q = PartitionQuality::evaluate(&graph, &part);
        println!(
            "{:<18} edge-cut {:>5.1}%  replication {:.2}  vertex imbalance {:.2}",
            p.name(),
            q.edge_cut_ratio * 100.0,
            q.replication_factor,
            q.vertex_imbalance,
        );
    }

    // --- Importance-based caching (Algorithm 2, Theorem 2). ---
    println!("\n## importance caching");
    let degrees = DegreeTable::compute(&graph, 2);
    let importance = ImportanceTable::from_degrees(&degrees);
    for tau in [0.1, 0.2, 0.3] {
        println!("τ={tau}: cache rate {:.1}%", importance.cache_rate(2, tau) * 100.0);
    }

    // --- A cluster with accounting. ---
    let (cluster, report) = Cluster::builder(Arc::clone(&graph))
        .partitioner(&EdgeCutHash)
        .shards(4)
        .cache(CacheStrategy::ImportanceBudget { k: 2, fraction: 0.2 })
        .max_hop(2)
        .cost_model(CostModel::default())
        .build();
    println!(
        "\n## cluster: built in {:.2?} (distributed makespan {:.2?})",
        report.total(),
        report.modeled_parallel_total()
    );
    for v in graph.vertices().take(2_000) {
        cluster.neighbors_from(WorkerId(0), v, 2).expect("in-graph vertex");
    }
    let snap = cluster.stats().snapshot();
    println!(
        "2000 reads from worker 0: {} local, {} cache-served, {} remote (hit rate {:.1}%)",
        snap.local,
        snap.cached_remote,
        snap.remote,
        snap.cache_hit_rate() * 100.0,
    );

    // --- Lock-free request-flow buckets (Figure 6). ---
    println!("\n## lock-free buckets");
    let service = Arc::new(LockFreeWeightService::new(graph.num_vertices(), 4, 1.0));
    let weights = DynamicWeights::asynchronous(service.clone()).register_gradient(|g| -0.1 * g);
    for i in 0..1_000u32 {
        weights.backward(VertexId(i % 64), 1.0);
    }
    weights.flush().expect("service running");
    println!(
        "after 1000 async sampler updates: weight(v0) = {:.3} (mode {:?})",
        weights.get(VertexId(0)).expect("service running"),
        WeightUpdateMode::Asynchronous,
    );
}
