//! Product recommendation — the application that motivates the paper
//! (personalized search and recommendation on Taobao).
//!
//! GATNE learns one embedding per (vertex, behavior type), so the same user
//! gets different item rankings for *click*-intent and *buy*-intent. The
//! Mixture GNN recommender and HR@k evaluation complete the loop.
//!
//! Run with: `cargo run --release --example recommendation`

use aligraph_suite::core::models::gatne::{train_gatne, GatneConfig};
use aligraph_suite::core::models::mixture::{train_mixture, MixtureConfig};
use aligraph_suite::eval::hit_rate_at_k;
use aligraph_suite::graph::generate::TaobaoConfig;
use aligraph_suite::graph::ids::well_known::{BUY, CLICK, ITEM, USER};
use aligraph_suite::graph::VertexId;

fn main() {
    let graph = TaobaoConfig::tiny().scaled(3.0).generate().expect("valid config");
    println!(
        "e-commerce graph: {} users, {} items, {} behavior edges",
        graph.vertices_of_type(USER).len(),
        graph.vertices_of_type(ITEM).len(),
        graph.num_edges(),
    );

    // --- GATNE: behavior-specific embeddings. ---
    let gatne = train_gatne(&graph, &GatneConfig::quick());
    let user = graph
        .vertices_of_type(USER)
        .iter()
        .copied()
        .find(|&u| !graph.out_neighbors_typed(u, BUY).is_empty())
        .expect("some user bought something");
    let items = graph.vertices_of_type(ITEM);
    let rank = |etype| -> Vec<VertexId> {
        let mut scored: Vec<(VertexId, f32)> =
            items.iter().map(|&i| (i, gatne.score_typed(user, i, etype))).collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.into_iter().take(5).map(|(i, _)| i).collect()
    };
    println!("\nGATNE top-5 for {user} under click-intent: {:?}", rank(CLICK));
    println!("GATNE top-5 for {user} under buy-intent:   {:?}", rank(BUY));

    // --- Mixture GNN: multi-sense recommendations + HR@k. ---
    let mixture = train_mixture(&graph, &MixtureConfig::quick());
    let mut recs = Vec::new();
    let mut truth = Vec::new();
    for &u in graph.vertices_of_type(USER).iter().take(120) {
        let out = graph.out_neighbors(u);
        if out.is_empty() {
            continue;
        }
        truth.push(out[0].vertex);
        recs.push(mixture.recommend(u, items));
    }
    for k in [10usize, 20, 50] {
        println!("Mixture GNN HR@{k}: {:.4}", hit_rate_at_k(&recs, &truth, k));
    }
    println!(
        "\n(sense posteriors let one user carry several intents: P(s|v) for {user} = {:?})",
        mixture.posterior[user.index()].iter().map(|p| format!("{p:.2}")).collect::<Vec<_>>()
    );
}
