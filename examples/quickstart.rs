//! Quickstart: the full AliGraph pipeline in one page.
//!
//! 1. Generate a heterogeneous e-commerce graph (the Taobao simulator).
//! 2. Build the distributed store: partition → parallel shard ingest →
//!    importance-based neighbor caching.
//! 3. Sample a training batch through the TRAVERSE / NEIGHBORHOOD /
//!    NEGATIVE pipeline (paper Figure 5).
//! 4. Train GraphSAGE end-to-end on the Algorithm 1 framework.
//! 5. Evaluate link prediction (ROC-AUC / PR-AUC / F1).
//!
//! Run with: `cargo run --release --example quickstart`

use aligraph_suite::core::models::graphsage::{train_graphsage, GraphSageConfig};
use aligraph_suite::core::trainer::evaluate_split;
use aligraph_suite::eval::link_prediction_split;
use aligraph_suite::graph::generate::TaobaoConfig;
use aligraph_suite::partition::EdgeCutHash;
use aligraph_suite::sampling::{
    SamplingPipeline, UniformNegative, UniformNeighborhood, UniformTraverse,
};
use aligraph_suite::storage::{CacheStrategy, Cluster, CostModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    // 1. A small attributed heterogeneous graph: users, items, four
    //    behavior edge types, interned attributes.
    let graph =
        Arc::new(TaobaoConfig::tiny().scaled(4.0).generate().expect("valid generator config"));
    println!(
        "graph: {} vertices ({} types), {} edges ({} types), attr index {} records",
        graph.num_vertices(),
        graph.num_vertex_types(),
        graph.num_edges(),
        graph.num_edge_types(),
        graph.vertex_attr_index().len(),
    );

    // 2. Distributed storage: 4 workers, importance cache on the top 20%.
    let (cluster, report) = Cluster::builder(Arc::clone(&graph))
        .partitioner(&EdgeCutHash)
        .shards(4)
        .cache(CacheStrategy::ImportanceBudget { k: 2, fraction: 0.2 })
        .max_hop(2)
        .cost_model(CostModel::default())
        .build();
    println!(
        "cluster: {} workers built in {:.1?} ({:.1}% of vertices cached per shard)",
        cluster.num_workers(),
        report.total(),
        cluster.cached_fraction() * 100.0,
    );

    // 3. One sampling stage, exactly as the paper's Figure 5.
    let pipeline = SamplingPipeline {
        traverse: UniformTraverse,
        neighborhood: UniformNeighborhood,
        negative: UniformNegative { vtype: None },
        hop_nums: vec![10, 5],
        neg_num: 5,
    };
    let mut rng = StdRng::seed_from_u64(7);
    let batch = pipeline.sample(
        &graph,
        graph.as_ref(),
        aligraph_suite::graph::ids::well_known::BUY,
        64,
        &mut rng,
    );
    println!(
        "sampled batch: {} seeds, {} context vertices, {} negatives each",
        batch.vertices.len(),
        batch.context.context_size(),
        batch.negatives[0].len(),
    );

    // 4 + 5. Train GraphSAGE and evaluate link prediction.
    let split = link_prediction_split(&graph, 0.15, 42);
    let trained = train_graphsage(&split.train, &GraphSageConfig::quick());
    println!(
        "training loss: {:.3} -> {:.3}",
        trained.report.epoch_losses[0],
        trained.report.final_loss(),
    );
    let metrics = evaluate_split(&trained.embeddings, &split);
    println!("link prediction: {metrics}");
}
