#!/usr/bin/env python3
"""Compare a bench's --metrics-json output against a committed baseline.

Usage:
    compare_bench.py BASELINE.json CURRENT.json [--tolerance F] [--presence-only]

Matching is by (name, labels). Numeric series must agree within the
relative tolerance band (default 10%); series that time wall clocks —
any name containing `_ns` or `latency` — are inherently machine-dependent
and are checked for *presence only*, never magnitude. `--presence-only`
demotes every series to the presence check (for benches whose counters are
timing-driven, e.g. serve-under-update's updater thread).

Baselines are the committed BENCH_*.json files; regenerate with the
command recorded in each file's `command` field plus `--metrics-json`.
Stdlib only.
"""

import argparse
import json
import pathlib
import sys

# Substrings that mark a series as wall-clock-derived: magnitudes are
# machine noise, only existence is a contract.
WALL_CLOCK_MARKERS = ("_ns", "latency")


def fail(messages):
    for m in messages:
        print(f"compare_bench: FAIL: {m}", file=sys.stderr)
    sys.exit(1)


def key(metric):
    labels = metric.get("labels", {})
    if isinstance(labels, dict):
        labels = sorted(labels.items())
    return (metric["name"], json.dumps(labels, sort_keys=True))


def numeric_fields(metric):
    """The comparable numbers of one series, by kind."""
    kind = metric.get("kind")
    if kind in ("counter", "gauge"):
        return {"value": metric.get("value")}
    if kind == "histogram":
        # Quantiles of small deterministic histograms are stable;
        # everything here is in virtual units unless the *name* says ns.
        return {f: metric.get(f) for f in ("count", "sum", "p50", "p99")}
    return {}


def is_wall_clock(name):
    return any(marker in name for marker in WALL_CLOCK_MARKERS)


def within(base, cur, tolerance):
    if base == cur:
        return True
    if base is None or cur is None:
        return False
    band = abs(base) * tolerance
    # An absolute floor keeps tiny counters (0 vs 1) from tripping the
    # relative band while still catching real drift on larger series.
    return abs(cur - base) <= max(band, 1.0 if tolerance > 0 else 0.0)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline", type=pathlib.Path)
    ap.add_argument("current", type=pathlib.Path)
    ap.add_argument("--tolerance", type=float, default=0.10)
    ap.add_argument("--presence-only", action="store_true")
    args = ap.parse_args()

    base_doc = json.loads(args.baseline.read_text())
    cur_doc = json.loads(args.current.read_text())
    problems = []

    if base_doc.get("command") != cur_doc.get("command"):
        problems.append(
            f"command mismatch: baseline `{base_doc.get('command')}` "
            f"vs current `{cur_doc.get('command')}`"
        )

    base = {key(m): m for m in base_doc.get("metrics", [])}
    cur = {key(m): m for m in cur_doc.get("metrics", [])}

    compared = presence = 0
    for k, bm in sorted(base.items()):
        name = bm["name"]
        cm = cur.get(k)
        if cm is None:
            problems.append(f"series missing from current run: {name} {k[1]}")
            continue
        if bm.get("kind") != cm.get("kind"):
            problems.append(
                f"{name}: kind changed {bm.get('kind')} -> {cm.get('kind')}"
            )
            continue
        if args.presence_only or is_wall_clock(name):
            presence += 1
            continue
        for field, bv in numeric_fields(bm).items():
            cv = numeric_fields(cm).get(field)
            if not within(bv, cv, args.tolerance):
                problems.append(
                    f"{name}.{field} out of band: baseline {bv}, current {cv} "
                    f"(tolerance {args.tolerance:.0%})"
                )
            else:
                compared += 1

    if problems:
        fail(problems)
    print(
        f"compare_bench: OK — {compared} values within {args.tolerance:.0%} band, "
        f"{presence} presence-only series, {len(base)} baseline series matched"
    )


if __name__ == "__main__":
    main()
