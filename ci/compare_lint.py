#!/usr/bin/env python3
"""Gate CI on `aligraph-lint --json` output. Stdlib only.

Usage:
    compare_lint.py REPORT.json [--baseline ci/lint-baseline.json]
                    [--expect-rule RULE]...

Two modes:

* **Baseline diff** (default) — validate the report against
  ci/lint-schema.json, then fail if any *active* (unwaived) diagnostic is
  missing from the committed baseline. Stale baseline entries only warn,
  so the baseline can shrink without blocking and can never silently grow.
* **Self-test** (`--expect-rule`, repeatable) — for the deliberately-buggy
  fixture workspaces: assert the report contains at least one active
  diagnostic per named rule, proving the analyzer still catches the
  planted bugs. Exits nonzero when a rule stopped firing.

Diagnostics are fingerprinted as (rule, path, message) — no line numbers,
so unrelated edits above a finding do not churn the baseline.
"""

import argparse
import json
import pathlib
import sys

HERE = pathlib.Path(__file__).parent
SCHEMA = HERE / "lint-schema.json"


def fail(msg: str) -> None:
    sys.exit(f"compare_lint: FAIL: {msg}")


def type_ok(node, name: str) -> bool:
    if name == "integer":
        return isinstance(node, int) and not isinstance(node, bool)
    return isinstance(
        node,
        {"object": dict, "array": list, "string": str, "boolean": bool, "null": type(None)}[name],
    )


def validate(node, schema, path, errs) -> None:
    """Minimal JSON-Schema subset: type, enum, required, properties, items."""
    declared = schema.get("type")
    if declared is not None:
        names = declared if isinstance(declared, list) else [declared]
        if not any(type_ok(node, n) for n in names):
            errs.append(f"{path}: expected {'/'.join(names)}, got {type(node).__name__}")
            return
    if "enum" in schema and node not in schema["enum"]:
        errs.append(f"{path}: {node!r} not in {schema['enum']}")
    if isinstance(node, dict):
        for key in schema.get("required", []):
            if key not in node:
                errs.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in node:
                validate(node[key], sub, f"{path}.{key}", errs)
    if isinstance(node, list) and "items" in schema:
        for i, item in enumerate(node):
            validate(item, schema["items"], f"{path}[{i}]", errs)


def fingerprint(d: dict) -> tuple:
    return (d["rule"], d["path"], d["message"])


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("report", type=pathlib.Path)
    ap.add_argument("--baseline", type=pathlib.Path, default=HERE / "lint-baseline.json")
    ap.add_argument("--expect-rule", action="append", default=[])
    args = ap.parse_args()

    try:
        report = json.loads(args.report.read_text())
    except json.JSONDecodeError as e:
        fail(f"{args.report}: not valid JSON: {e}")

    errs: list = []
    validate(report, json.loads(SCHEMA.read_text()), "$", errs)
    if errs:
        fail("schema violations:\n  " + "\n  ".join(errs))

    active = [d for d in report["diagnostics"] if not d["waived"]]
    if report["summary"]["active"] != len(active):
        fail(
            f"summary.active={report['summary']['active']} but "
            f"{len(active)} unwaived diagnostics listed"
        )

    if args.expect_rule:
        firing = {d["rule"] for d in active}
        missing = [r for r in args.expect_rule if r not in firing]
        if missing:
            fail(
                f"fixture self-test: expected active rule(s) {missing} but the "
                f"report only fires {sorted(firing) or ['nothing']}"
            )
        print(
            f"compare_lint: OK (self-test): rules {sorted(set(args.expect_rule))} "
            f"still fire, {len(active)} active finding(s)"
        )
        return

    baseline = json.loads(args.baseline.read_text())
    allowed = {fingerprint(d) for d in baseline["diagnostics"]}
    fresh = [d for d in active if fingerprint(d) not in allowed]
    if fresh:
        lines = []
        for d in fresh:
            lines.append(f"{d['path']}:{d['line']}: [{d['rule']}] {d['message']}")
            lines.extend(f"    via {frame}" for frame in d["chain"])
        fail(
            f"{len(fresh)} active diagnostic(s) not in the baseline "
            f"(fix them or add a reasoned `aligraph::allow` waiver):\n  "
            + "\n  ".join(lines)
        )

    seen = {fingerprint(d) for d in active}
    stale = allowed - seen
    for fp in sorted(stale):
        print(f"compare_lint: WARN: stale baseline entry (no longer reported): {fp}")

    print(
        f"compare_lint: OK: {len(active)} active / "
        f"{report['summary']['waived']} waived across "
        f"{report['files_scanned']} files, {report['functions']} functions"
    )


if __name__ == "__main__":
    main()
