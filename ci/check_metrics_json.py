#!/usr/bin/env python3
"""Validate `aligraph <cmd> --metrics-json` output against the checked-in
key-presence schema (ci/metrics-schema.json). Stdlib only.

Usage:
    check_metrics_json.py METRICS.json [--command NAME] [--expect-prefix P]...

--command       assert the snapshot was produced by this subcommand
--expect-prefix assert at least one series name starts with P (repeatable;
                this is how CI pins "a train-bench run reports storage,
                sampling, and runtime metrics in one snapshot")
"""

import argparse
import json
import pathlib
import sys

SCHEMA = pathlib.Path(__file__).with_name("metrics-schema.json")


def fail(msg: str) -> None:
    sys.exit(f"check_metrics_json: FAIL: {msg}")


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("metrics", type=pathlib.Path)
    ap.add_argument("--command")
    ap.add_argument("--expect-prefix", action="append", default=[])
    args = ap.parse_args()

    schema = json.loads(SCHEMA.read_text())
    try:
        doc = json.loads(args.metrics.read_text())
    except json.JSONDecodeError as e:
        fail(f"{args.metrics}: not valid JSON: {e}")

    for key in schema["required"]:
        if key not in doc:
            fail(f"missing top-level key `{key}`")
    if doc["version"] != schema["version"]:
        fail(f"schema version {doc['version']}, expected {schema['version']}")
    if args.command and doc["command"] != args.command:
        fail(f"command `{doc['command']}`, expected `{args.command}`")
    if not isinstance(doc["metrics"], list):
        fail("`metrics` is not an array")

    names = []
    for i, m in enumerate(doc["metrics"]):
        where = f"metrics[{i}]"
        for key in schema["metric_required"]:
            if key not in m:
                fail(f"{where}: missing `{key}`")
        kind_keys = schema["kinds"].get(m["kind"])
        if kind_keys is None:
            fail(f"{where}: unknown kind `{m['kind']}`")
        for key in kind_keys:
            if key not in m:
                fail(f"{where} ({m['name']}, {m['kind']}): missing `{key}`")
        if not isinstance(m["labels"], dict):
            fail(f"{where}: `labels` is not an object")
        layer = m["name"].split(".", 1)[0]
        if layer not in schema["known_prefixes"]:
            fail(
                f"{where}: series `{m['name']}` has unknown layer prefix "
                f"`{layer}` (allowed: {schema['known_prefixes']}; extend the "
                "schema when adding a layer)"
            )
        names.append(m["name"])

    for prefix in args.expect_prefix:
        if not any(n.startswith(prefix) for n in names):
            fail(f"no series named `{prefix}*` (got {sorted(set(names))})")

    print(
        f"check_metrics_json: OK: {args.metrics} — {len(names)} series"
        + (f", prefixes {args.expect_prefix}" if args.expect_prefix else "")
    )


if __name__ == "__main__":
    main()
