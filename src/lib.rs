//! Workspace umbrella crate: re-exports every AliGraph reproduction crate so
//! the root examples and integration tests can use one import root.
//!
//! The actual implementation lives in the `crates/` members; see `DESIGN.md`
//! for the full inventory.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub use aligraph as core;
pub use aligraph_baselines as baselines;
pub use aligraph_chaos as chaos;
pub use aligraph_eval as eval;
pub use aligraph_graph as graph;
pub use aligraph_loopsim as loopsim;
pub use aligraph_ops as ops;
pub use aligraph_partition as partition;
pub use aligraph_runtime as runtime;
pub use aligraph_sampling as sampling;
pub use aligraph_serving as serving;
pub use aligraph_storage as storage;
pub use aligraph_streaming as streaming;
pub use aligraph_tensor as tensor;
