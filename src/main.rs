//! Workspace-root binary: the acceptance-criteria entry point
//! (`cargo run --release -- <command> ...`) — a shim over
//! [`aligraph_cli::run`], identical in behavior to the `aligraph` binary.

#![forbid(unsafe_code)]

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match aligraph_cli::run(&argv) {
        Ok(report) => println!("{report}"),
        Err(aligraph_cli::CliError::Usage(msg)) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
        Err(aligraph_cli::CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
